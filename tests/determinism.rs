//! End-to-end determinism: every layer of the stack must be exactly
//! reproducible from one master seed — the property all experiment
//! confidence intervals rely on.

use omn::caching::query::QueryWorkload;
use omn::caching::{CachingConfig, CachingSimulator, Catalog};
use omn::contacts::synth::presets::TracePreset;
use omn::core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn::net::routing::Prophet;
use omn::net::{workload, NetworkSimulator, SimConfig};
use omn::sim::{RngFactory, SimDuration};

#[test]
fn trace_generation_is_deterministic() {
    for preset in TracePreset::ALL {
        let a = preset.generate(&RngFactory::new(123));
        let b = preset.generate(&RngFactory::new(123));
        assert_eq!(a, b, "{preset}");
        let c = preset.generate(&RngFactory::new(124));
        assert_ne!(a, c, "{preset}: different seeds must differ");
    }
}

#[test]
fn full_freshness_run_is_deterministic() {
    let factory = RngFactory::new(55);
    let trace = TracePreset::InfocomLike.generate_small(&factory);
    let sim = FreshnessSimulator::new(FreshnessConfig {
        query_count: 120,
        ..FreshnessConfig::default()
    });
    for choice in SchemeChoice::ALL {
        let r1 = sim.run(&trace, choice, &factory);
        let r2 = sim.run(&trace, choice, &factory);
        assert_eq!(r1.mean_freshness, r2.mean_freshness, "{choice}");
        assert_eq!(r1.transmissions, r2.transmissions, "{choice}");
        assert_eq!(r1.replicas, r2.replicas, "{choice}");
        assert_eq!(r1.queries_fresh, r2.queries_fresh, "{choice}");
        assert_eq!(
            r1.requirement_satisfaction, r2.requirement_satisfaction,
            "{choice}"
        );
    }
}

#[test]
fn caching_and_routing_runs_are_deterministic() {
    let factory = RngFactory::new(66);
    let trace = TracePreset::InfocomLike.generate_small(&factory);

    let catalog = Catalog::uniform(&trace, 5, SimDuration::from_hours(4.0), &factory);
    let queries = QueryWorkload::zipf(&trace, &catalog, 100, 1.0, &factory);
    let caching = CachingSimulator::new(CachingConfig::default());
    let a = caching.run(&trace, &catalog, &queries);
    let b = caching.run(&trace, &catalog, &queries);
    assert_eq!(a.satisfied, b.satisfied);
    assert_eq!(a.transmissions, b.transmissions);
    assert_eq!(a.cachers_per_item, b.cachers_per_item);

    let demands = workload::uniform_unicast(&trace, 80, &factory).unwrap();
    let net = NetworkSimulator::new(SimConfig::default());
    let r1 = net.run(&trace, &mut Prophet::new(), &demands);
    let r2 = net.run(&trace, &mut Prophet::new(), &demands);
    assert_eq!(r1.delivered, r2.delivered);
    assert_eq!(r1.transmissions, r2.transmissions);
}

#[test]
fn child_factories_isolate_randomness() {
    // Using child factories per item must not change what a sibling item
    // sees — the isolation the multi-item experiments rely on.
    let f = RngFactory::new(9);
    let trace = TracePreset::InfocomLike.generate_small(&f);
    let sim = FreshnessSimulator::new(FreshnessConfig {
        query_count: 50,
        ..FreshnessConfig::default()
    });
    let with_siblings = {
        let _unused = sim.run(&trace, SchemeChoice::Hierarchical, &f.child(0));
        sim.run(&trace, SchemeChoice::Hierarchical, &f.child(1))
    };
    let alone = sim.run(&trace, SchemeChoice::Hierarchical, &f.child(1));
    assert_eq!(with_siblings.mean_freshness, alone.mean_freshness);
    assert_eq!(with_siblings.transmissions, alone.transmissions);
}
