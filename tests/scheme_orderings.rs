//! Qualitative orderings the paper's evaluation rests on, verified across
//! seeds on both trace presets. These are the "shape" claims EXPERIMENTS.md
//! records.

use omn::contacts::synth::presets::TracePreset;
use omn::core::freshness::FreshnessRequirement;
use omn::core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn::sim::{RngFactory, SimDuration};

fn config_for(preset: TracePreset) -> FreshnessConfig {
    let period = match preset {
        TracePreset::RealityLike => SimDuration::from_hours(72.0),
        TracePreset::InfocomLike => SimDuration::from_hours(6.0),
    };
    FreshnessConfig {
        refresh_period: period,
        requirement: FreshnessRequirement::new(0.9, period),
        query_count: 200,
        ..FreshnessConfig::default()
    }
}

/// Mean over seeds of a per-run metric.
fn mean_over_seeds(
    preset: TracePreset,
    choice: SchemeChoice,
    metric: impl Fn(&omn::core::sim::FreshnessReport) -> f64,
) -> f64 {
    let seeds = [5u64, 17, 29];
    let sim = FreshnessSimulator::new(config_for(preset));
    seeds
        .iter()
        .map(|&s| {
            let factory = RngFactory::new(s);
            let trace = preset.generate(&factory);
            metric(&sim.run(&trace, choice, &factory))
        })
        .sum::<f64>()
        / seeds.len() as f64
}

#[test]
fn freshness_ordering_holds_on_both_traces() {
    for preset in TracePreset::ALL {
        let fresh = |c| mean_over_seeds(preset, c, |r| r.mean_freshness);
        let epidemic = fresh(SchemeChoice::Epidemic);
        let hier = fresh(SchemeChoice::Hierarchical);
        let no_repl = fresh(SchemeChoice::HierarchicalNoReplication);
        let star = fresh(SchemeChoice::SourceOnly);
        let random = fresh(SchemeChoice::RandomTree);
        let none = fresh(SchemeChoice::NoRefresh);

        assert!(
            epidemic >= hier,
            "{preset}: epidemic {epidemic} < hier {hier}"
        );
        assert!(hier > no_repl, "{preset}: hier {hier} <= no-repl {no_repl}");
        assert!(
            no_repl > random,
            "{preset}: no-repl {no_repl} <= random {random}"
        );
        assert!(hier > star, "{preset}: hier {hier} <= star {star}");
        assert!(star > none, "{preset}: star {star} <= none {none}");
    }
}

#[test]
fn overhead_ordering_holds() {
    for preset in TracePreset::ALL {
        let tx = |c| mean_over_seeds(preset, c, |r| r.transmissions as f64);
        let epidemic = tx(SchemeChoice::Epidemic);
        let hier = tx(SchemeChoice::Hierarchical);
        let no_repl = tx(SchemeChoice::HierarchicalNoReplication);
        let none = tx(SchemeChoice::NoRefresh);

        assert!(
            epidemic > 2.0 * hier,
            "{preset}: epidemic tx {epidemic} not ≫ hier {hier}"
        );
        assert!(hier > no_repl, "{preset}: replication adds transmissions");
        assert_eq!(none, 0.0);
    }
}

#[test]
fn requirement_satisfaction_ordering_holds() {
    let preset = TracePreset::InfocomLike;
    let sat = |c| mean_over_seeds(preset, c, |r| r.requirement_satisfaction);
    assert!(sat(SchemeChoice::Hierarchical) > sat(SchemeChoice::SourceOnly));
    assert!(sat(SchemeChoice::SourceOnly) > sat(SchemeChoice::NoRefresh));
}

#[test]
fn refresh_delays_reflect_scheme_quality() {
    let preset = TracePreset::InfocomLike;
    let seeds = [5u64, 17, 29];
    let sim = FreshnessSimulator::new(config_for(preset));
    let mut hier_mean = 0.0;
    let mut random_mean = 0.0;
    for &s in &seeds {
        let factory = RngFactory::new(s);
        let trace = preset.generate(&factory);
        let hier = sim.run(&trace, SchemeChoice::Hierarchical, &factory);
        let random = sim.run(&trace, SchemeChoice::RandomTree, &factory);
        hier_mean += hier.refresh_delays.mean().unwrap_or(f64::INFINITY);
        random_mean += random.refresh_delays.mean().unwrap_or(f64::INFINITY);
    }
    assert!(
        hier_mean < random_mean,
        "contact-aware tree should refresh faster: {hier_mean} vs {random_mean}"
    );
}
