//! Cross-crate integration: the cooperative caching layer decides *where*
//! items are cached; the freshness layer keeps those copies valid. This is
//! the full pipeline behind experiment E9.

use omn::caching::query::QueryWorkload;
use omn::caching::{CachingConfig, CachingSimulator, Catalog};
use omn::contacts::synth::presets::TracePreset;
use omn::core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn::sim::{RngFactory, SimDuration};

#[test]
fn caching_sets_feed_the_freshness_layer() {
    let factory = RngFactory::new(2024);
    let trace = TracePreset::InfocomLike.generate_small(&factory);

    // Caching layer: place 4 items and serve queries.
    let catalog = Catalog::uniform(&trace, 4, SimDuration::from_hours(6.0), &factory);
    let queries = QueryWorkload::zipf(&trace, &catalog, 150, 1.0, &factory);
    let caching = CachingSimulator::new(CachingConfig::default());
    let access = caching.run(&trace, &catalog, &queries);
    assert!(access.success_ratio() > 0.2, "{}", access.success_ratio());

    // Freshness layer per item, over the caching sets the caching layer
    // actually produced.
    let sim = FreshnessSimulator::new(FreshnessConfig {
        refresh_period: SimDuration::from_hours(6.0),
        query_count: 50,
        ..FreshnessConfig::default()
    });
    let mut ran = 0;
    for item in catalog.items() {
        let mut members: Vec<_> = access.cachers_per_item[item.id().index()]
            .iter()
            .copied()
            .filter(|&n| n != item.source())
            .collect();
        members.sort();
        members.dedup();
        if members.is_empty() {
            continue;
        }
        let mut scheme = sim.make_scheme(SchemeChoice::Hierarchical);
        let report = sim.run_with_roles(
            &trace,
            item.source(),
            &members,
            scheme.as_mut(),
            &factory.child(u64::from(item.id().0)),
        );
        assert_eq!(report.members, members);
        assert!(report.version_count >= 2);
        ran += 1;
    }
    assert!(ran > 0, "no item produced a non-trivial caching set");
}

#[test]
fn freshness_maintains_validity_of_access() {
    // With refreshing, the fresh-access ratio must clearly exceed the
    // no-refresh lower bound on the same trace and roles.
    let factory = RngFactory::new(7);
    let trace = TracePreset::InfocomLike.generate(&factory);
    let sim = FreshnessSimulator::new(FreshnessConfig {
        query_count: 400,
        ..FreshnessConfig::default()
    });
    let hier = sim.run(&trace, SchemeChoice::Hierarchical, &factory);
    let none = sim.run(&trace, SchemeChoice::NoRefresh, &factory);
    assert!(
        hier.fresh_access_ratio() > none.fresh_access_ratio() + 0.1,
        "hier {} vs none {}",
        hier.fresh_access_ratio(),
        none.fresh_access_ratio()
    );
    // Service ratio itself is scheme-independent (same trace, same roles,
    // same queries).
    assert_eq!(hier.queries_served, none.queries_served);
}

#[test]
fn routing_layer_agrees_with_contact_graph_reachability() {
    // If epidemic routing can deliver between two nodes, the contact graph
    // must show them connected — ties the net and contacts crates together.
    use omn::contacts::ContactGraph;
    use omn::net::routing::Epidemic;
    use omn::net::{workload, NetworkSimulator, SimConfig};

    let factory = RngFactory::new(3);
    let trace = TracePreset::RealityLike.generate_small(&factory);
    let demands = workload::uniform_unicast(&trace, 60, &factory).unwrap();
    let report =
        NetworkSimulator::new(SimConfig::default()).run(&trace, &mut Epidemic::new(), &demands);

    let graph = ContactGraph::from_trace(&trace);
    // Epidemic delivery implies temporal reachability, which implies static
    // connectivity for at least the delivered pairs; sanity-check that the
    // graph is non-trivial whenever something was delivered.
    if report.delivered > 0 {
        let reachable = graph
            .shortest_expected_delays(omn::contacts::NodeId(0))
            .iter()
            .flatten()
            .count();
        assert!(reachable > 1);
    }
}
