//! Integration tests for the extension features: temporal oracle bounds,
//! working-day mobility, and failure injection, exercised through the
//! public facade.

use omn::contacts::synth::working_day::{generate_working_day, WorkingDayConfig};
use omn::contacts::temporal;
use omn::contacts::NodeId;
use omn::core::freshness::FreshnessRequirement;
use omn::core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn::sim::{RngFactory, SimDuration, SimTime};

#[test]
fn oracle_bound_lower_bounds_every_scheme() {
    // The time-respecting earliest-arrival bound must be at or below the
    // refresh delays any scheme achieves — including epidemic, which
    // approaches it.
    let factory = RngFactory::new(88);
    let trace = omn::contacts::synth::presets::TracePreset::InfocomLike.generate_small(&factory);
    let period = SimDuration::from_hours(4.0);
    let config = FreshnessConfig {
        caching_nodes: 5,
        refresh_period: period,
        requirement: FreshnessRequirement::new(0.8, period),
        query_count: 0,
        ..FreshnessConfig::default()
    };
    let sim = FreshnessSimulator::new(config);
    let (source, members) = sim.select_roles(&trace);

    // Oracle mean over versions and members.
    let versions = (trace.span().as_secs() / period.as_secs()) as usize;
    let mut oracle = Vec::new();
    for v in 1..versions {
        let birth = SimTime::from_secs(v as f64 * period.as_secs());
        oracle.extend(temporal::oracle_delays(&trace, source, birth, &members));
    }
    assert!(!oracle.is_empty());
    let oracle_mean = oracle.iter().sum::<f64>() / oracle.len() as f64;

    for choice in [SchemeChoice::Epidemic, SchemeChoice::Hierarchical] {
        let report = sim.run(&trace, choice, &factory);
        if let Some(measured_mean) = report.refresh_delays.mean() {
            assert!(
                measured_mean + 1.0 >= oracle_mean,
                "{choice}: measured {measured_mean:.0}s below oracle {oracle_mean:.0}s"
            );
        }
    }
}

#[test]
fn working_day_trace_supports_the_full_freshness_stack() {
    let factory = RngFactory::new(7);
    let trace = generate_working_day(
        &WorkingDayConfig::new(30, 6)
            .offices(5)
            .evening_probability(0.4),
        &factory,
    );
    let period = SimDuration::from_hours(24.0);
    let config = FreshnessConfig {
        caching_nodes: 6,
        refresh_period: period,
        requirement: FreshnessRequirement::new(0.8, period),
        query_count: 100,
        ..FreshnessConfig::default()
    };
    let sim = FreshnessSimulator::new(config);
    let hier = sim.run(&trace, SchemeChoice::Hierarchical, &factory);
    let none = sim.run(&trace, SchemeChoice::NoRefresh, &factory);
    // Daily office co-location makes refreshing effective. (The gap is
    // structurally capped: versions born at midnight cannot propagate
    // until offices open ~8 h later.)
    assert!(
        hier.mean_freshness > none.mean_freshness + 0.1,
        "hier {} vs none {}",
        hier.mean_freshness,
        none.mean_freshness
    );
}

#[test]
fn departures_reduce_freshness_monotonically_in_expectation() {
    let factory = RngFactory::new(31);
    let trace = omn::contacts::synth::presets::TracePreset::InfocomLike.generate_small(&factory);
    let half = SimTime::from_secs(trace.span().as_secs() / 2.0);
    let sim = FreshnessSimulator::new(FreshnessConfig {
        caching_nodes: 5,
        query_count: 0,
        ..FreshnessConfig::default()
    });
    let (source, members) = sim.select_roles(&trace);

    let freshness_with_departures = |count: usize| {
        let departed: Vec<NodeId> = trace.nodes().filter(|&n| n != source).take(count).collect();
        let failed = trace.with_departures(&departed, half);
        let mut scheme = sim.make_scheme(SchemeChoice::Epidemic);
        sim.run_with_roles(&failed, source, &members, scheme.as_mut(), &factory)
            .mean_freshness
    };

    let none = freshness_with_departures(0);
    let heavy = freshness_with_departures(12);
    assert!(
        heavy <= none + 1e-9,
        "losing half the network cannot help: {heavy} vs {none}"
    );
}
