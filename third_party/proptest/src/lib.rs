//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal property-testing runner covering exactly the surface its test
//! suites use: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! the `prop_assert!` family, range / tuple / `any` / `collection::vec` /
//! `sample::select` strategies, and the `prop_map` / `prop_filter_map`
//! combinators.
//!
//! Differences from upstream, by design:
//! * **No shrinking** — a failing case panics with the generated inputs
//!   left to the assertion message.
//! * **Deterministic** — cases are generated from a fixed per-test seed
//!   (derived from the test name), so runs are reproducible and CI-stable.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is honored by the stub.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Per-test deterministic source of randomness for strategies.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner seeded from the test name (FNV-1a hash), so
        /// every test draws an independent, reproducible stream.
        pub fn new(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// The underlying generator, for strategy implementations.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRunner;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, regenerating
        /// otherwise. `whence` documents why values may be rejected.
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F, U> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;

        fn new_value(&self, runner: &mut TestRunner) -> U {
            // Bounded retries so an always-rejecting filter fails loudly
            // instead of spinning forever.
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.new_value(runner)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected 10000 draws in a row: {}",
                self.whence
            )
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// The `any::<T>()` strategy: the full "natural" domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a natural full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.rng().gen::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.rng().gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = runner.rng().gen::<f64>() * 1e9;
            if runner.rng().gen::<bool>() {
                mag
            } else {
                -mag
            }
        }
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact count or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                runner.rng().gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use rand::seq::SliceRandom;

    /// Strategy drawing one of the given values uniformly.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires a non-empty set");
        Select { values }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.values.choose(runner.rng()).expect("non-empty").clone()
        }
    }
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
            for __case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut runner);)+
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

/// Assertion inside a property body; the stub maps it to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_streams() {
        let mut a = crate::test_runner::TestRunner::new("t");
        let mut b = crate::test_runner::TestRunner::new("t");
        let s = 0u64..1000;
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds; vec lengths honor the size range.
        #[test]
        fn ranges_and_vecs(
            x in 3u32..17,
            v in prop::collection::vec(0.0f64..1.0, 2..9),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
            prop_assert_eq!(flag as u8 <= 1, true);
        }

        #[test]
        fn combinators_apply(
            y in (0u32..10, 0u32..10).prop_filter_map("distinct", |(a, b)| {
                (a != b).then_some((a, b))
            }),
            z in (0u64..5).prop_map(|n| n * 2),
        ) {
            prop_assert_ne!(y.0, y.1);
            prop_assert!(z % 2 == 0 && z < 10);
        }

        #[test]
        fn select_draws_members(choice in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!([1, 2, 3].contains(&choice));
        }
    }
}
