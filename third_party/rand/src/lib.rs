//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::from_seed`], the [`Rng`] extension methods (`gen`,
//! `gen_bool`, `gen_range`, `sample`, `sample_iter`), the
//! [`distributions::Standard`] distribution, and
//! [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna), seeded
//! from the same 32-byte seeds the workspace's `RngFactory` produces. The
//! exact output stream differs from upstream `rand`'s ChaCha12-based
//! `StdRng`; everything in this repository that depends on determinism pins
//! its own golden values against *this* implementation, which is fully
//! deterministic and portable.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from `distr`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Consumes the generator into an iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod distributions {
    use super::{Rng, RngCore};
    use std::marker::PhantomData;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

        /// Turns the distribution plus a generator into an iterator.
        fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
        where
            R: RngCore,
            Self: Sized,
        {
            DistIter {
                distr: self,
                rng,
                _marker: PhantomData,
            }
        }
    }

    /// Iterator of samples; see [`Distribution::sample_iter`].
    pub struct DistIter<D, R, T> {
        distr: D,
        rng: R,
        _marker: PhantomData<T>,
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    /// The "natural" uniform distribution: full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits -> [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        use super::super::Rng;
        use super::{Distribution, Standard};
        use std::ops::Range;

        /// Types samplable from a uniform range; mirrors upstream's trait
        /// so a `Range<{float}>` literal still resolves through the single
        /// blanket [`SampleRange`] impl (and then defaults to `f64`).
        pub trait SampleUniform: Copy + PartialOrd {
            /// Draws uniformly from `[lo, hi)`.
            fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        macro_rules! int_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                        let span = (hi as u128).wrapping_sub(lo as u128);
                        // Modulo with a 64-bit draw: bias is < 2^-32 for the
                        // span sizes used in this workspace (all far below
                        // 2^32), which is negligible for simulation purposes.
                        let draw = (rng.next_u64() as u128) % span;
                        (lo as i128 + draw as i128) as $t
                    }
                }
            )*};
        }

        int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: Rng + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                        let u: $t = Distribution::<$t>::sample(&Standard, rng);
                        lo + u * (hi - lo)
                    }
                }
            )*};
        }

        float_uniform!(f32, f64);

        /// A range that can be sampled from directly; the bound behind
        /// [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                T::sample_in(self.start, self.end, rng)
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers: in-place shuffle and uniform choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher-Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// Re-export so `use rand::prelude::*` keeps working if anything adds it.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

// `Range` is referenced in the uniform module via `std::ops::Range`; keep the
// top-level import used so the crate stays warning-free.
#[allow(unused)]
fn _range_marker(_: Range<u8>) {}

#[cfg(test)]
mod tests {
    use super::distributions::Standard;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::from_seed([8; 32]);
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..4.5);
            assert!((-2.0..4.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn sample_iter_streams() {
        let rng = StdRng::seed_from_u64(13);
        let xs: Vec<u64> = rng.sample_iter(Standard).take(4).collect();
        assert_eq!(xs.len(), 4);
    }
}
