//! Offline drop-in subset of the `serde` API.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` as forward-
//! looking markers on its data types — nothing actually serializes yet
//! (trace IO is a hand-rolled text format). This stub therefore provides
//! the two traits as markers plus the derive macros, which is exactly the
//! surface the workspace consumes. When a real serialization backend is
//! needed, swap the path dependency back to upstream serde; the derive
//! sites need no changes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of serde's `Serialize` trait.
pub trait Serialize {}

/// Marker form of serde's `Deserialize` trait.
pub trait Deserialize<'de>: Sized {}
