//! Offline drop-in subset of the `rand_distr` 0.4 API.
//!
//! Provides exactly the distributions this workspace samples: [`Exp`]
//! (inversion method) and [`Gamma`] (Marsaglia-Tsang squeeze with a
//! Box-Muller normal, plus the Ahrens-Dieter boost for shape < 1). The
//! sampled streams differ numerically from upstream `rand_distr`, but all
//! determinism guarantees in this repository are pinned against this
//! implementation.

#![forbid(unsafe_code)]

pub use rand::distributions::Distribution;
use rand::Rng;

/// Error type for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp requires a finite positive rate"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion: u in [0, 1) so 1 - u in (0, 1] and the log is finite.
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Gamma distribution with the given `shape` and `scale` (mean
/// `shape * scale`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates the distribution; both parameters must be finite and
    /// positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0 {
            Ok(Gamma { shape, scale })
        } else {
            Err(ParamError("Gamma requires finite positive shape and scale"))
        }
    }

    /// One standard-normal draw via Box-Muller (the second value of the
    /// pair is discarded to keep the sampler stateless).
    fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }

    /// Marsaglia-Tsang (2000) for shape >= 1.
    fn sample_shape_ge_one<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Self::standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen();
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v;
            }
            if u > f64::MIN_POSITIVE && u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape >= 1.0 {
            Self::sample_shape_ge_one(self.shape, rng) * self.scale
        } else {
            // Ahrens-Dieter boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
            let g = Self::sample_shape_ge_one(self.shape + 1.0, rng);
            let u: f64 = rng.gen();
            // u == 0 would yield 0, which is a valid (measure-zero) draw.
            g * u.powf(1.0 / self.shape) * self.scale
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn exp_mean_close() {
        let d = Exp::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "exp mean {mean}");
    }

    #[test]
    fn gamma_mean_close() {
        for (shape, scale) in [(0.5, 2.0), (1.5, 0.7), (4.0, 1.3)] {
            let d = Gamma::new(shape, scale).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            let n = 200_000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            let expect = shape * scale;
            assert!(
                (mean - expect).abs() / expect < 0.05,
                "gamma({shape},{scale}) mean {mean} vs {expect}"
            );
            assert!((0..1000).all(|_| d.sample(&mut rng) >= 0.0));
        }
    }
}
