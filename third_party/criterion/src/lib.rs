//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal harness with the same programming model: `criterion_group!`
//! (field form with `name` / `config` / `targets`), `criterion_main!`,
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and [`black_box`].
//!
//! Timing model: each benchmark runs `sample_size` samples of one
//! iteration each and reports min / mean / max wall-clock time per
//! iteration — enough to smoke-test every bench path and eyeball relative
//! cost, without upstream's statistical machinery. `--test` (as passed by
//! `cargo bench -- --test`) runs each target once and reports pass/fail
//! only.
//!
//! Like upstream, a measured run persists each benchmark's estimates to
//! `<target>/criterion/<id...>/new/estimates.json` (a minimal document
//! carrying `"mean": {"point_estimate": ns}` plus min/max), so trend
//! tooling (`omn-bench`'s `bench_trend`) can compare runs over time.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

/// Opaque value barrier; the stub uses a volatile-free best effort
/// (`std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    iters: u64,
    /// Nanoseconds per iteration collected by the last `iter*` call.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            samples: Vec::new(),
        }
    }

    /// Times `routine`, one sample per configured iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

/// The harness entry point, mirroring upstream's builder surface.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs (or, under `--test`, smoke-runs) one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let iters = if self.test_mode {
            1
        } else {
            self.sample_size as u64
        };
        let mut b = Bencher::new(iters);
        f(&mut b);
        if self.test_mode {
            println!("test-mode {id}: ok");
        } else if b.samples.is_empty() {
            println!("{id}: no samples recorded");
        } else {
            let n = b.samples.len() as f64;
            let mean = b.samples.iter().sum::<f64>() / n;
            let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            println!(
                "{id}: mean {} (min {}, max {}) over {} samples",
                fmt_ns(mean),
                fmt_ns(min),
                fmt_ns(max),
                b.samples.len()
            );
            persist_estimates(id, mean, min, max, b.samples.len());
        }
        self
    }

    /// Upstream compatibility hook; the stub has no CLI of its own beyond
    /// `--test` detection, which already happened in `default()`.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Writes `<target>/criterion/<id...>/new/estimates.json` in the upstream
/// layout (benchmark ids containing `/` become nested directories). Silent
/// best-effort: benches must not fail because the filesystem is read-only.
fn persist_estimates(id: &str, mean: f64, min: f64, max: f64, samples: usize) {
    let Some(root) = criterion_dir() else {
        return;
    };
    let mut dir = root;
    for part in id.split('/').filter(|p| !p.is_empty()) {
        dir.push(part);
    }
    dir.push("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = format!(
        "{{\"mean\":{{\"point_estimate\":{mean}}},\
           \"min\":{{\"point_estimate\":{min}}},\
           \"max\":{{\"point_estimate\":{max}}},\
           \"sample_count\":{samples}}}\n"
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

/// Locates `<target>/criterion` by walking up from the running bench
/// executable (which lives under `<target>/<profile>/deps/`) to the
/// nearest ancestor directory named `target` — the same resolution
/// upstream uses when `CARGO_TARGET_DIR` is unset.
fn criterion_dir() -> Option<PathBuf> {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return Some(PathBuf::from(dir).join("criterion"));
    }
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .find(|a| a.file_name().is_some_and(|n| n == "target"))
        .map(|t| t.join("criterion"))
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group; supports both the positional and the
/// `name` / `config` / `targets` field forms.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut runs = 0;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion {
            sample_size: 4,
            test_mode: false,
        };
        let mut setups = 0;
        c.bench_function("t", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
