//! Derive macros for the vendored serde stub: emit empty marker-trait
//! impls for the deriving type. `#[serde(...)]` helper attributes (e.g.
//! `#[serde(transparent)]`) are accepted and ignored, matching how the
//! workspace uses them today (no serialization backend is wired up).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the `struct` / `enum` a derive is attached to.
///
/// Walks past attributes, doc comments, and visibility; the token after the
/// `struct` / `enum` keyword is the type name. Generic types are not
/// supported by the stub (nothing in the workspace derives serde on one).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "serde stub derive does not support generic types"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{word}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde stub derive: no `struct` or `enum` found in input")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
