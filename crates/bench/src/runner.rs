//! Parallel multi-seed execution.
//!
//! Every multi-replication experiment runs the same closure once per seed
//! and folds the per-seed results in seed order. [`per_seed`] runs those
//! closures on one thread per seed and joins the handles *in seed order*,
//! so the merged results — and therefore every printed table — are
//! byte-identical to a serial run: simulators draw only from per-seed
//! [`RngFactory`](omn_sim::RngFactory) streams, threads share nothing, and
//! floating-point folds happen on the caller's thread in a fixed order.
//!
//! Command-line control (honored by `run_all` and every `exp_*` binary):
//!
//! * `--seeds 11,23,37` (or `--seeds=11,23,37`) — replace the default
//!   [`SEEDS`] set.
//! * `--nodes 100,1000` (or `--nodes=100,1000`) — replace the node-count
//!   sweep of experiments that scale with network size (E15).
//! * `--trace path` (or `--trace=path`) — run the real-trace experiment
//!   (E16) on one dataset file instead of the built-in registry.
//! * `--trace-format name` (or `--trace-format=name`) — the dump format of
//!   `--trace` (`reality`, `haggle`, or `omn-v1`); sniffed from the file
//!   when omitted.
//! * `--serial` — run seeds sequentially on the calling thread (useful for
//!   profiling and for demonstrating serial/parallel equivalence).
//! * `--threads n` (or `--threads=n`) — generator threads for the
//!   window-barrier parallel contact pipeline (E15); 0 (default) keeps
//!   the classic serial source. Output is bit-identical either way.
//! * `--window-mins m` (or `--window-mins=m`) — barrier window of the
//!   parallel pipeline in simulated minutes (default: span/64).
//! * `--no-wall` — hide wall-clock columns so two runs can be
//!   byte-for-byte diffed (the CI determinism job).
//! * `--headline` — run the single large headline point instead of the
//!   sweep (E15: 10⁶ nodes, one seed).

use std::thread;

use crate::SEEDS;

/// Runs `f` once per seed — in parallel, one thread per seed — and returns
/// the results in seed order.
///
/// Runs serially on the calling thread when only one seed is given or when
/// `--serial` is on the command line; the results are identical either way
/// (each closure invocation is independent, and joins happen in seed
/// order).
///
/// # Panics
///
/// Panics if `f` panics for any seed.
pub fn per_seed<T: Send>(seeds: &[u64], f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    if seeds.len() <= 1 || serial_requested() {
        return seeds.iter().map(|&s| f(s)).collect();
    }
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| scope.spawn(move || f(seed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed worker panicked"))
            .collect()
    })
}

/// The seed set for this process: `--seeds a,b,c` from the command line,
/// or the default [`SEEDS`].
#[must_use]
pub fn active_seeds() -> Vec<u64> {
    seeds_from(std::env::args().skip(1))
}

/// The node-count sweep for this process: `--nodes a,b,c` from the command
/// line, or the experiment's `default` sweep.
#[must_use]
pub fn active_nodes(default: &[usize]) -> Vec<usize> {
    nodes_from(std::env::args().skip(1), default)
}

/// Whether `--serial` is on the command line.
#[must_use]
pub fn serial_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--serial")
}

/// The merge-thread count for experiments with a parallel contact
/// pipeline (E15): `--threads n`. 0 — the default — runs the classic
/// serial source; `n ≥ 1` runs the window-barrier parallel source on `n`
/// generator threads (bit-identical output either way).
#[must_use]
pub fn active_threads() -> usize {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    threads_from(argv.into_iter())
}

/// The barrier-window override for the parallel contact pipeline:
/// `--window-mins m` (simulated minutes). `None` uses the source's
/// default window; the choice batches differently but never changes the
/// merged stream.
#[must_use]
pub fn active_window_mins() -> Option<f64> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    window_from(argv.into_iter())
}

/// Whether `--no-wall` is on the command line: hide wall-clock columns so
/// two runs of the same sweep can be byte-for-byte diffed (the CI
/// determinism job).
#[must_use]
pub fn wall_hidden() -> bool {
    std::env::args().skip(1).any(|a| a == "--no-wall")
}

/// Whether `--headline` is on the command line: run the single large
/// headline point instead of the sweep.
#[must_use]
pub fn headline_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--headline")
}

fn threads_from<I: Iterator<Item = String> + Clone>(args: I) -> usize {
    parse_str_flag(args, "--threads").map_or(0, |s| {
        s.parse()
            .unwrap_or_else(|_| panic!("--threads takes a thread count"))
    })
}

fn window_from<I: Iterator<Item = String> + Clone>(args: I) -> Option<f64> {
    parse_str_flag(args, "--window-mins").map(|s| {
        let mins: f64 = s
            .parse()
            .unwrap_or_else(|_| panic!("--window-mins takes a minute count"));
        assert!(
            mins.is_finite() && mins > 0.0,
            "--window-mins takes a positive minute count"
        );
        mins
    })
}

/// A `--trace` override: run the real-trace experiment on one dataset file
/// instead of the built-in registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOverride {
    /// Path of the dataset file.
    pub path: String,
    /// Dump-format name from `--trace-format`, if given (otherwise the
    /// experiment sniffs the format from the file).
    pub format: Option<String>,
}

/// The `--trace` / `--trace-format` override for this process, if any.
#[must_use]
pub fn active_trace() -> Option<TraceOverride> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    trace_from(argv.iter().cloned())
}

fn trace_from<I: Iterator<Item = String> + Clone>(args: I) -> Option<TraceOverride> {
    let path = parse_str_flag(args.clone(), "--trace")?;
    Some(TraceOverride {
        path,
        format: parse_str_flag(args, "--trace-format"),
    })
}

fn seeds_from<I: Iterator<Item = String>>(args: I) -> Vec<u64> {
    match parse_list_flag(args, "--seeds") {
        Some(seeds) => seeds,
        None => SEEDS.to_vec(),
    }
}

fn nodes_from<I: Iterator<Item = String>>(args: I, default: &[usize]) -> Vec<usize> {
    match parse_list_flag(args, "--nodes") {
        Some(nodes) => nodes.into_iter().map(|n: u64| n as usize).collect(),
        None => default.to_vec(),
    }
}

/// Parses `--flag a,b,c` / `--flag=a,b,c` into a non-empty integer list.
/// Returns `None` when the flag is absent or its list is empty (callers
/// fall back to their default sweep).
///
/// # Panics
///
/// A trailing flag with no value, or a malformed integer in the list, is a
/// usage error, not a silent no-op.
fn parse_list_flag<T, I>(mut args: I, flag: &str) -> Option<Vec<T>>
where
    T: std::str::FromStr,
    I: Iterator<Item = String>,
{
    let prefix = format!("{flag}=");
    while let Some(arg) = args.next() {
        let list = if let Some(rest) = arg.strip_prefix(&prefix) {
            Some(rest.to_owned())
        } else if arg == flag {
            Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} requires a value")),
            )
        } else {
            None
        };
        if let Some(list) = list {
            let parsed: Vec<T> = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse().unwrap_or_else(|_| {
                        panic!("{flag} takes a comma-separated list of integers")
                    })
                })
                .collect();
            if !parsed.is_empty() {
                return Some(parsed);
            }
        }
    }
    None
}

/// Parses `--flag value` / `--flag=value` into a string. Returns `None`
/// when the flag is absent or its value is empty.
///
/// # Panics
///
/// A trailing flag with no value (or one followed by another `--flag`) is
/// a usage error, not a silent no-op.
fn parse_str_flag<I: Iterator<Item = String>>(mut args: I, flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    while let Some(arg) = args.next() {
        let value = if let Some(rest) = arg.strip_prefix(&prefix) {
            Some(rest.to_owned())
        } else if arg == flag {
            let next = args
                .next()
                .unwrap_or_else(|| panic!("{flag} requires a value"));
            if next.starts_with("--") {
                panic!("{flag} requires a value");
            }
            Some(next)
        } else {
            None
        };
        if let Some(value) = value {
            let value = value.trim();
            if !value.is_empty() {
                return Some(value.to_owned());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args<'a>(list: &'a [&'a str]) -> impl Iterator<Item = String> + Clone + 'a {
        list.iter().map(|s| (*s).to_owned())
    }

    #[test]
    fn default_seeds_without_flag() {
        assert_eq!(seeds_from(args(&[])), SEEDS.to_vec());
        assert_eq!(seeds_from(args(&["--serial"])), SEEDS.to_vec());
    }

    #[test]
    fn parses_seed_list_forms() {
        assert_eq!(seeds_from(args(&["--seeds", "1,2,3"])), vec![1, 2, 3]);
        assert_eq!(seeds_from(args(&["--seeds=7"])), vec![7]);
        assert_eq!(seeds_from(args(&["--seeds=4, 5"])), vec![4, 5]);
    }

    #[test]
    fn empty_seed_list_falls_back_to_default() {
        assert_eq!(seeds_from(args(&["--seeds="])), SEEDS.to_vec());
    }

    #[test]
    #[should_panic(expected = "--seeds requires a value")]
    fn trailing_seeds_flag_is_an_error() {
        seeds_from(args(&["--seeds"]));
    }

    #[test]
    #[should_panic(expected = "comma-separated list of integers")]
    fn malformed_seed_list_is_an_error() {
        seeds_from(args(&["--seeds", "1,x,3"]));
    }

    #[test]
    fn parses_node_list_forms() {
        let default = [100usize, 1000];
        assert_eq!(
            nodes_from(args(&["--nodes", "10,20"]), &default),
            vec![10, 20]
        );
        assert_eq!(nodes_from(args(&["--nodes=316"]), &default), vec![316]);
        assert_eq!(nodes_from(args(&[]), &default), default.to_vec());
        assert_eq!(nodes_from(args(&["--nodes="]), &default), default.to_vec());
        // `--seeds` and `--nodes` coexist without stealing each other's
        // values.
        assert_eq!(
            nodes_from(args(&["--seeds", "1,2", "--nodes", "50"]), &default),
            vec![50]
        );
        assert_eq!(
            seeds_from(args(&["--seeds", "1,2", "--nodes", "50"])),
            vec![1, 2]
        );
    }

    #[test]
    #[should_panic(expected = "--nodes requires a value")]
    fn trailing_nodes_flag_is_an_error() {
        nodes_from(args(&["--nodes"]), &[100]);
    }

    #[test]
    #[should_panic(expected = "--nodes takes a comma-separated list of integers")]
    fn malformed_node_list_is_an_error() {
        nodes_from(args(&["--nodes", "100,big,300"]), &[100]);
    }

    #[test]
    fn parses_trace_override_forms() {
        assert_eq!(trace_from(args(&[])), None);
        assert_eq!(
            trace_from(args(&["--trace", "datasets/reality.csv"])),
            Some(TraceOverride {
                path: "datasets/reality.csv".to_owned(),
                format: None,
            })
        );
        assert_eq!(
            trace_from(args(&["--trace=a.dat", "--trace-format", "haggle"])),
            Some(TraceOverride {
                path: "a.dat".to_owned(),
                format: Some("haggle".to_owned()),
            })
        );
        // `--trace-format` alone is not an override.
        assert_eq!(trace_from(args(&["--trace-format", "haggle"])), None);
        // The shared parsers don't steal each other's values.
        assert_eq!(
            trace_from(args(&["--seeds", "1,2", "--trace", "t.csv"])),
            Some(TraceOverride {
                path: "t.csv".to_owned(),
                format: None,
            })
        );
        assert_eq!(
            seeds_from(args(&["--seeds", "1,2", "--trace", "t.csv"])),
            vec![1, 2]
        );
    }

    #[test]
    #[should_panic(expected = "--trace requires a value")]
    fn trailing_trace_flag_is_an_error() {
        trace_from(args(&["--trace"]));
    }

    #[test]
    #[should_panic(expected = "--trace requires a value")]
    fn trace_flag_followed_by_flag_is_an_error() {
        trace_from(args(&["--trace", "--trace-format", "haggle"]));
    }

    #[test]
    fn parses_threads_and_window_forms() {
        assert_eq!(threads_from(args(&[])), 0);
        assert_eq!(threads_from(args(&["--threads", "4"])), 4);
        assert_eq!(threads_from(args(&["--threads=2"])), 2);
        assert_eq!(window_from(args(&[])), None);
        assert_eq!(window_from(args(&["--window-mins", "73"])), Some(73.0));
        assert_eq!(window_from(args(&["--window-mins=7.5"])), Some(7.5));
        // The shared parsers don't steal each other's values.
        assert_eq!(
            threads_from(args(&["--window-mins", "73", "--threads", "2"])),
            2
        );
    }

    #[test]
    #[should_panic(expected = "--threads takes a thread count")]
    fn malformed_threads_flag_is_an_error() {
        threads_from(args(&["--threads", "many"]));
    }

    #[test]
    #[should_panic(expected = "--window-mins takes a positive minute count")]
    fn nonpositive_window_flag_is_an_error() {
        window_from(args(&["--window-mins", "0"]));
    }

    #[test]
    fn per_seed_preserves_seed_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let results = per_seed(&seeds, |s| s * s);
        assert_eq!(results, seeds.iter().map(|s| s * s).collect::<Vec<_>>());
    }

    #[test]
    fn per_seed_matches_serial_map() {
        // The parallel path must merge to exactly what a serial map
        // produces, including f64 bit patterns.
        let seeds = SEEDS.to_vec();
        let serial: Vec<f64> = seeds.iter().map(|&s| (s as f64).sqrt().sin()).collect();
        let parallel = per_seed(&seeds, |s| (s as f64).sqrt().sin());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
