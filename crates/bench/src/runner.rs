//! Parallel multi-seed execution and command-line overrides.
//!
//! Every multi-replication experiment runs the same closure once per seed
//! and folds the per-seed results in seed order. [`per_seed`] runs those
//! closures on one thread per seed and joins the handles *in seed order*,
//! so the merged results — and therefore every printed table — are
//! byte-identical to a serial run: simulators draw only from per-seed
//! [`RngFactory`](omn_sim::RngFactory) streams, threads share nothing, and
//! floating-point folds happen on the caller's thread in a fixed order.
//!
//! Command-line control is consolidated in [`CliOverrides`], parsed **once
//! per process** (binaries call [`cli_init`], which rejects unknown flags
//! and malformed values with a one-line error plus usage on exit code 2;
//! library consumers such as tests and benches fall back to a lenient
//! parse that ignores harness flags). The flags (honored by `run_all` and
//! every `exp_*` binary):
//!
//! * `--spec path` — compile and execute a scenario spec file instead of
//!   the committed one embedded in the binary.
//! * `--legacy` — run the hand-written experiment code path instead of
//!   the scenario compiler (the CI spec-equivalence job byte-diffs the
//!   two).
//! * `--seeds 11,23,37` (or `--seeds=11,23,37`) — replace the default
//!   [`SEEDS`] set.
//! * `--nodes 100,1000` (or `--nodes=100,1000`) — replace the node-count
//!   sweep of experiments that scale with network size (E15, E18).
//! * `--trace path` (or `--trace=path`) — run the real-trace experiment
//!   (E16) on one dataset file instead of the built-in registry.
//! * `--trace-format name` (or `--trace-format=name`) — the dump format of
//!   `--trace` (`reality`, `haggle`, or `omn-v1`); sniffed from the file
//!   when omitted.
//! * `--serial` — run seeds sequentially on the calling thread (useful for
//!   profiling and for demonstrating serial/parallel equivalence).
//! * `--threads n` (or `--threads=n`) — generator threads for the
//!   window-barrier parallel contact pipeline (E15); 0 (default) keeps
//!   the classic serial source. Output is bit-identical either way.
//! * `--window-mins m` (or `--window-mins=m`) — barrier window of the
//!   parallel pipeline in simulated minutes (default: span/64).
//! * `--no-wall` — hide wall-clock columns so two runs can be
//!   byte-for-byte diffed (the CI determinism and spec-equivalence jobs).
//! * `--headline` — run the single large headline point instead of the
//!   sweep (E15: 10⁶ nodes, one seed).

use std::sync::OnceLock;
use std::thread;

use crate::SEEDS;

/// Runs `f` once per seed — in parallel, one thread per seed — and returns
/// the results in seed order.
///
/// Runs serially on the calling thread when only one seed is given or when
/// `--serial` is on the command line; the results are identical either way
/// (each closure invocation is independent, and joins happen in seed
/// order).
///
/// # Panics
///
/// Panics if `f` panics for any seed.
pub fn per_seed<T: Send>(seeds: &[u64], f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    if seeds.len() <= 1 || serial_requested() {
        return seeds.iter().map(|&s| f(s)).collect();
    }
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| scope.spawn(move || f(seed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed worker panicked"))
            .collect()
    })
}

/// A `--trace` override: run the real-trace experiment on one dataset file
/// instead of the built-in registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOverride {
    /// Path of the dataset file.
    pub path: String,
    /// Dump-format name from `--trace-format`, if given (otherwise the
    /// experiment sniffs the format from the file).
    pub format: Option<String>,
}

/// Every command-line override a process honors, parsed **once**.
///
/// The fields overlay scenario specs with the precedence `CLI > spec >
/// driver default`: a `None`/`false` field means "the flag was absent,
/// use the spec's (or the experiment's) value".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CliOverrides {
    /// `--spec path`: compile and execute this scenario file instead of
    /// the spec embedded in the binary.
    pub spec: Option<String>,
    /// `--legacy`: run the hand-written experiment code path instead of
    /// the scenario compiler.
    pub legacy: bool,
    /// `--seeds a,b,c`: replacement seed set.
    pub seeds: Option<Vec<u64>>,
    /// `--nodes a,b,c`: replacement node-count sweep.
    pub nodes: Option<Vec<usize>>,
    /// `--serial`: run seed replications sequentially.
    pub serial: bool,
    /// `--threads n`: generator threads for the parallel contact pipeline.
    pub threads: Option<usize>,
    /// `--window-mins m`: barrier window of the parallel pipeline.
    pub window_mins: Option<f64>,
    /// `--no-wall`: hide wall-clock columns.
    pub no_wall: bool,
    /// `--headline`: run the single large headline point.
    pub headline: bool,
    /// `--trace path` (+ optional `--trace-format`): one dataset file.
    pub trace: Option<TraceOverride>,
}

/// One-line usage string printed with every flag error.
#[must_use]
pub fn usage() -> &'static str {
    "usage: [--spec FILE] [--legacy] [--seeds A,B,C] [--nodes A,B,C] \
     [--serial] [--threads N] [--window-mins M] [--no-wall] [--headline] \
     [--trace FILE [--trace-format reality|haggle|omn-v1]]"
}

impl CliOverrides {
    /// Parses a full argument list (without the program name).
    ///
    /// `strict` rejects unknown flags, positional arguments, and
    /// malformed values with a one-line message; lenient mode skips
    /// anything unrecognized (test and bench harnesses inject their own
    /// flags into `std::env::args`) but still applies every flag it does
    /// recognize.
    ///
    /// # Errors
    ///
    /// Returns the one-line diagnostic (no usage suffix) on the first
    /// unknown flag or malformed value in strict mode.
    pub fn parse<I: IntoIterator<Item = String>>(args: I, strict: bool) -> Result<Self, String> {
        let mut over = CliOverrides::default();
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            // Split `--flag=value` once; `--flag value` pulls the next token.
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
                None => (arg.clone(), None),
            };
            let mut value = |flag: &str| -> Result<String, String> {
                if let Some(v) = inline.clone() {
                    return Ok(v);
                }
                match args.next() {
                    Some(next) if !next.starts_with("--") => Ok(next),
                    _ => Err(format!("{flag} requires a value")),
                }
            };
            let result: Result<(), String> = match flag.as_str() {
                "--spec" => value("--spec").map(|v| over.spec = Some(v)),
                "--legacy" => {
                    over.legacy = true;
                    Ok(())
                }
                "--seeds" => value("--seeds").and_then(|v| {
                    parse_list(&v, "--seeds").map(|list| {
                        if !list.is_empty() {
                            over.seeds = Some(list);
                        }
                    })
                }),
                "--nodes" => value("--nodes").and_then(|v| {
                    parse_list::<u64>(&v, "--nodes").map(|list| {
                        if !list.is_empty() {
                            over.nodes = Some(list.into_iter().map(|n| n as usize).collect());
                        }
                    })
                }),
                "--serial" => {
                    over.serial = true;
                    Ok(())
                }
                "--threads" => value("--threads").and_then(|v| {
                    v.trim()
                        .parse()
                        .map(|n| over.threads = Some(n))
                        .map_err(|_| format!("--threads takes a thread count, got `{v}`"))
                }),
                "--window-mins" => {
                    value("--window-mins").and_then(|v| match v.trim().parse::<f64>() {
                        Ok(m) if m.is_finite() && m > 0.0 => {
                            over.window_mins = Some(m);
                            Ok(())
                        }
                        _ => Err(format!(
                            "--window-mins takes a positive minute count, got `{v}`"
                        )),
                    })
                }
                "--no-wall" => {
                    over.no_wall = true;
                    Ok(())
                }
                "--headline" => {
                    over.headline = true;
                    Ok(())
                }
                "--trace" => value("--trace").map(|v| {
                    let format = over.trace.take().and_then(|t| t.format);
                    over.trace = Some(TraceOverride { path: v, format });
                }),
                "--trace-format" => value("--trace-format").map(|v| match over.trace.take() {
                    Some(mut t) => {
                        t.format = Some(v);
                        over.trace = Some(t);
                    }
                    None => {
                        over.trace = Some(TraceOverride {
                            path: String::new(),
                            format: Some(v),
                        });
                    }
                }),
                _ if strict => Err(if flag.starts_with("--") {
                    format!("unknown flag `{flag}`")
                } else {
                    format!("unexpected argument `{flag}`")
                }),
                _ => Ok(()),
            };
            if let Err(e) = result {
                if strict {
                    return Err(e);
                }
            }
        }
        // `--trace-format` alone is not an override.
        if over.trace.as_ref().is_some_and(|t| t.path.is_empty()) {
            over.trace = None;
        }
        Ok(over)
    }

    /// The resolved seed set: `--seeds` or the default [`SEEDS`].
    #[must_use]
    pub fn active_seeds(&self) -> Vec<u64> {
        self.seeds.clone().unwrap_or_else(|| SEEDS.to_vec())
    }
}

/// Parses a non-empty comma-separated list (empty input yields an empty
/// list, which callers treat as "flag absent").
fn parse_list<T: std::str::FromStr>(input: &str, flag: &str) -> Result<Vec<T>, String> {
    input
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| format!("{flag} takes a comma-separated list of integers, got `{s}`"))
        })
        .collect()
}

static GLOBAL: OnceLock<CliOverrides> = OnceLock::new();

/// Parses the process arguments strictly, stores the result as the
/// process-wide override set, and returns it. Every binary calls this
/// first; an unknown flag or malformed value prints a one-line error with
/// usage and exits with code 2.
pub fn cli_init() -> &'static CliOverrides {
    cli_init_from(std::env::args().skip(1).collect())
}

/// [`cli_init`] over an explicit argument list (used by `omn-scn`, which
/// strips its subcommand and positional paths first).
pub fn cli_init_from(args: Vec<String>) -> &'static CliOverrides {
    match CliOverrides::parse(args, true) {
        Ok(over) => GLOBAL.get_or_init(|| over),
        Err(msg) => {
            eprintln!("error: {msg}\n{}", usage());
            std::process::exit(2);
        }
    }
}

/// The process-wide override set. Binaries populate it via [`cli_init`];
/// in any other host (tests, benches) the first call parses the process
/// arguments leniently, so harness flags are ignored instead of fatal.
#[must_use]
pub fn overrides() -> &'static CliOverrides {
    GLOBAL.get_or_init(|| {
        CliOverrides::parse(std::env::args().skip(1), false).expect("lenient parse never fails")
    })
}

/// The seed set for this process: `--seeds a,b,c` from the command line,
/// or the default [`SEEDS`].
#[must_use]
pub fn active_seeds() -> Vec<u64> {
    overrides().active_seeds()
}

/// The node-count sweep for this process: `--nodes a,b,c` from the command
/// line, or the experiment's `default` sweep.
#[must_use]
pub fn active_nodes(default: &[usize]) -> Vec<usize> {
    overrides()
        .nodes
        .clone()
        .unwrap_or_else(|| default.to_vec())
}

/// Whether `--serial` is on the command line.
#[must_use]
pub fn serial_requested() -> bool {
    overrides().serial
}

/// The merge-thread count for experiments with a parallel contact
/// pipeline (E15): `--threads n`. 0 — the default — runs the classic
/// serial source; `n ≥ 1` runs the window-barrier parallel source on `n`
/// generator threads (bit-identical output either way).
#[must_use]
pub fn active_threads() -> usize {
    overrides().threads.unwrap_or(0)
}

/// The barrier-window override for the parallel contact pipeline:
/// `--window-mins m` (simulated minutes). `None` uses the source's
/// default window; the choice batches differently but never changes the
/// merged stream.
#[must_use]
pub fn active_window_mins() -> Option<f64> {
    overrides().window_mins
}

/// Whether `--no-wall` is on the command line: hide wall-clock columns so
/// two runs of the same sweep can be byte-for-byte diffed (the CI
/// determinism job).
#[must_use]
pub fn wall_hidden() -> bool {
    overrides().no_wall
}

/// Whether `--headline` is on the command line: run the single large
/// headline point instead of the sweep.
#[must_use]
pub fn headline_requested() -> bool {
    overrides().headline
}

/// The `--trace` / `--trace-format` override for this process, if any.
#[must_use]
pub fn active_trace() -> Option<TraceOverride> {
    overrides().trace.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(list: &[&str]) -> Result<CliOverrides, String> {
        CliOverrides::parse(list.iter().map(|s| (*s).to_owned()), true)
    }

    fn ok(list: &[&str]) -> CliOverrides {
        strict(list).expect("valid flags")
    }

    #[test]
    fn default_seeds_without_flag() {
        assert_eq!(ok(&[]).active_seeds(), SEEDS.to_vec());
        assert_eq!(ok(&["--serial"]).active_seeds(), SEEDS.to_vec());
    }

    #[test]
    fn parses_seed_list_forms() {
        assert_eq!(ok(&["--seeds", "1,2,3"]).seeds, Some(vec![1, 2, 3]));
        assert_eq!(ok(&["--seeds=7"]).seeds, Some(vec![7]));
        assert_eq!(ok(&["--seeds=4, 5"]).seeds, Some(vec![4, 5]));
    }

    #[test]
    fn empty_seed_list_falls_back_to_default() {
        assert_eq!(ok(&["--seeds="]).active_seeds(), SEEDS.to_vec());
    }

    #[test]
    fn trailing_seeds_flag_is_an_error() {
        let err = strict(&["--seeds"]).unwrap_err();
        assert!(err.contains("--seeds requires a value"), "{err}");
    }

    #[test]
    fn malformed_seed_list_is_an_error() {
        let err = strict(&["--seeds", "1,x,3"]).unwrap_err();
        assert!(err.contains("comma-separated list of integers"), "{err}");
    }

    #[test]
    fn parses_node_list_forms() {
        assert_eq!(ok(&["--nodes", "10,20"]).nodes, Some(vec![10, 20]));
        assert_eq!(ok(&["--nodes=316"]).nodes, Some(vec![316]));
        assert_eq!(ok(&[]).nodes, None);
        assert_eq!(ok(&["--nodes="]).nodes, None);
        // `--seeds` and `--nodes` coexist without stealing each other's
        // values.
        let both = ok(&["--seeds", "1,2", "--nodes", "50"]);
        assert_eq!(both.nodes, Some(vec![50]));
        assert_eq!(both.seeds, Some(vec![1, 2]));
    }

    #[test]
    fn malformed_node_list_is_an_error() {
        let err = strict(&["--nodes", "100,big,300"]).unwrap_err();
        assert!(
            err.contains("--nodes takes a comma-separated list of integers"),
            "{err}"
        );
    }

    #[test]
    fn parses_trace_override_forms() {
        assert_eq!(ok(&[]).trace, None);
        assert_eq!(
            ok(&["--trace", "datasets/reality.csv"]).trace,
            Some(TraceOverride {
                path: "datasets/reality.csv".to_owned(),
                format: None,
            })
        );
        assert_eq!(
            ok(&["--trace=a.dat", "--trace-format", "haggle"]).trace,
            Some(TraceOverride {
                path: "a.dat".to_owned(),
                format: Some("haggle".to_owned()),
            })
        );
        // Flag order must not matter.
        assert_eq!(
            ok(&["--trace-format", "haggle", "--trace", "a.dat"]).trace,
            Some(TraceOverride {
                path: "a.dat".to_owned(),
                format: Some("haggle".to_owned()),
            })
        );
        // `--trace-format` alone is not an override.
        assert_eq!(ok(&["--trace-format", "haggle"]).trace, None);
    }

    #[test]
    fn trailing_trace_flag_is_an_error() {
        let err = strict(&["--trace"]).unwrap_err();
        assert!(err.contains("--trace requires a value"), "{err}");
        let err = strict(&["--trace", "--trace-format", "haggle"]).unwrap_err();
        assert!(err.contains("--trace requires a value"), "{err}");
    }

    #[test]
    fn parses_threads_and_window_forms() {
        assert_eq!(ok(&[]).threads, None);
        assert_eq!(ok(&["--threads", "4"]).threads, Some(4));
        assert_eq!(ok(&["--threads=2"]).threads, Some(2));
        assert_eq!(ok(&[]).window_mins, None);
        assert_eq!(ok(&["--window-mins", "73"]).window_mins, Some(73.0));
        assert_eq!(ok(&["--window-mins=7.5"]).window_mins, Some(7.5));
        let both = ok(&["--window-mins", "73", "--threads", "2"]);
        assert_eq!(both.threads, Some(2));
        assert_eq!(both.window_mins, Some(73.0));
    }

    #[test]
    fn malformed_threads_flag_is_a_clean_error() {
        // Historically `--threads abc` panicked inside the parser; it is
        // now a one-line usage error.
        let err = strict(&["--threads", "abc"]).unwrap_err();
        assert!(err.contains("--threads takes a thread count"), "{err}");
    }

    #[test]
    fn nonpositive_window_flag_is_an_error() {
        let err = strict(&["--window-mins", "0"]).unwrap_err();
        assert!(
            err.contains("--window-mins takes a positive minute count"),
            "{err}"
        );
    }

    #[test]
    fn unknown_flag_is_an_error_in_strict_mode_only() {
        let err = strict(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown flag `--frobnicate`"), "{err}");
        let err = strict(&["positional"]).unwrap_err();
        assert!(err.contains("unexpected argument `positional`"), "{err}");
        // Lenient mode (test harnesses inject their own flags) skips them
        // but still honors everything recognized.
        let over = CliOverrides::parse(
            ["--test-threads", "4", "--seeds", "1,2"].map(String::from),
            false,
        )
        .expect("lenient never fails");
        assert_eq!(over.seeds, Some(vec![1, 2]));
    }

    #[test]
    fn spec_and_legacy_flags_parse() {
        let over = ok(&["--spec", "specs/e03.scn", "--legacy"]);
        assert_eq!(over.spec.as_deref(), Some("specs/e03.scn"));
        assert!(over.legacy);
    }

    #[test]
    fn per_seed_preserves_seed_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let results = per_seed(&seeds, |s| s * s);
        assert_eq!(results, seeds.iter().map(|s| s * s).collect::<Vec<_>>());
    }

    #[test]
    fn per_seed_matches_serial_map() {
        // The parallel path must merge to exactly what a serial map
        // produces, including f64 bit patterns.
        let seeds = SEEDS.to_vec();
        let serial: Vec<f64> = seeds.iter().map(|&s| (s as f64).sqrt().sin()).collect();
        let parallel = per_seed(&seeds, |s| (s as f64).sqrt().sin());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
