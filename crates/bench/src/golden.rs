//! Golden-file plumbing shared by the golden test suites.
//!
//! Each scenario spec names the golden file its headline numbers are
//! pinned by (`[output] golden = …`); [`golden_name`] resolves that name
//! from the committed spec, so the tests and the spec can never disagree
//! about where a campaign's numbers live. Values are written with full
//! bit patterns ([`line`]), compared by [`check_golden`], and
//! (re-)recorded with `OMN_BLESS_GOLDEN=1`; `OMN_REQUIRE_GOLDEN=1` (CI)
//! turns a missing golden file into a hard failure.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::scenario::{embedded, parse};

/// Appends one pinned scalar: label, human-readable value, exact bit
/// pattern.
///
/// # Panics
///
/// Never — writing to a `String` is infallible.
pub fn line(out: &mut String, label: &str, v: f64) {
    writeln!(out, "{label} {v:.12} bits={:016x}", v.to_bits()).unwrap();
}

/// The on-disk path of a named golden file (under
/// `crates/bench/tests/golden/`).
#[must_use]
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The golden file name the committed spec `id` (e.g. `"e14"`) declares
/// via `[output] golden = …`, with the `.txt` extension appended.
///
/// # Panics
///
/// Panics when `id` names no embedded spec, the spec fails to parse, or
/// it declares no golden — all harness bugs: every golden test pins a
/// committed spec that names its golden file.
#[must_use]
pub fn golden_name(id: &str) -> String {
    let text = embedded(id).unwrap_or_else(|| panic!("no embedded spec `{id}`"));
    let spec = parse(text).unwrap_or_else(|err| panic!("specs/{id}.scn: {err}"));
    let golden = spec
        .output
        .golden
        .unwrap_or_else(|| panic!("specs/{id}.scn declares no `[output] golden`"));
    format!("{golden}.txt")
}

/// Compares `rendered` against the committed golden file, or records it
/// when `OMN_BLESS_GOLDEN` is set.
///
/// # Panics
///
/// Panics on a mismatch, or — under `OMN_REQUIRE_GOLDEN` — when the
/// golden file has not been recorded.
pub fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("OMN_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    match std::fs::read_to_string(&path) {
        Ok(expected) => assert_eq!(
            expected, rendered,
            "golden mismatch for {name}; if the change is intentional, \
             re-record with OMN_BLESS_GOLDEN=1"
        ),
        Err(_) if std::env::var_os("OMN_REQUIRE_GOLDEN").is_some() => panic!(
            "golden file {name} is missing and OMN_REQUIRE_GOLDEN is set; \
             record it with OMN_BLESS_GOLDEN=1 and commit it"
        ),
        Err(_) => {
            eprintln!("note: golden file {name} not recorded yet (OMN_BLESS_GOLDEN=1 to pin)")
        }
    }
}
