//! E17 — chaos campaign: the degradation envelope under adversarial and
//! crash-recovery faults (extension beyond the reconstructed evaluation).
//!
//! One sweep over the conference trace climbs a ladder of chaos
//! intensities from fault-free to extreme, at every rung combining all
//! three adversarial fault kinds of the fault layer
//! ([`omn_contacts::faults::FaultPlan`]):
//!
//! * **stale-version corruption** — transfers deliver a replayed stale
//!   version the receiver's monotonicity check must reject,
//! * **crash with state loss** — nodes vanish and rejoin amnesiac, forcing
//!   re-attachment from scratch, and
//! * **correlated regional outages** — whole id-blocks of nodes go down
//!   together.
//!
//! The ladder itself is a scenario-compiler concept: each rung is a
//! [`FaultRung`] straight out of a spec's `[faults]` section (the default
//! ladder is [`default_ladder`], committed as `specs/e17.scn`).
//!
//! Every run executes with the full invariant-oracle suite in campaign
//! mode and the failure-aware hierarchy (exponential-backoff retry with
//! timeout escalation, failure detector with re-parenting). The campaign
//! asserts the degradation envelope: mean freshness declines monotonically
//! as chaos intensifies, and not a single protocol invariant — version
//! monotonicity, tree structure, budget accounting, timer liveness — is
//! violated at any rung.

use omn_contacts::faults::{DowntimeConfig, FaultConfig, RegionalOutageConfig};
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::NodeId;
use omn_core::scheme::{ResilienceConfig, RetryPolicy};
use omn_core::sim::{FreshnessReport, FreshnessSimulator, SchemeChoice};
use omn_sim::{OracleMode, OracleReport, RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::scenario::{CampaignPlan, FaultRung, RetrySpec};
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

/// The default chaos ladder, fault-free to extreme. The zero rung
/// configures no fault at all (the plan is inert), so it doubles as the
/// campaign's baseline. `specs/e17.scn` commits the same ladder in spec
/// form.
#[must_use]
pub fn default_ladder() -> Vec<FaultRung> {
    let rung = |name: &str, corruption: f64, crash_fraction: f64, outages: u32| FaultRung {
        name: name.to_owned(),
        corruption,
        crash_fraction,
        outages,
    };
    vec![
        rung("zero", 0.0, 0.0, 0),
        rung("mild", 0.10, 0.15, 1),
        rung("moderate", 0.25, 0.35, 3),
        rung("severe", 0.45, 0.60, 6),
        rung("extreme", 0.70, 0.85, 10),
    ]
}

/// Parameters of E17: the fault ladder and the retry policy climbing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the campaign runs on.
    pub preset: TracePreset,
    /// The chaos ladder, in climbing order (the envelope assertion reads
    /// the rungs as monotonically intensifying).
    pub ladder: Vec<FaultRung>,
    /// Retry policy of the failure-aware hierarchy.
    pub retry: RetrySpec,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            ladder: default_ladder(),
            retry: RetrySpec::Exponential {
                attempts: 3,
                base_hours: 1.0,
            },
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes (an empty
    /// `[faults]` section falls back to the default ladder).
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        let ladder = if plan.faults().is_empty() {
            default_ladder()
        } else {
            plan.faults().to_vec()
        };
        Params {
            preset: plan.preset_one(),
            ladder,
            retry: plan.retry().unwrap_or(RetrySpec::Exponential {
                attempts: 3,
                base_hours: 1.0,
            }),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// The fault configuration of one rung. Zero-intensity kinds stay `None`
/// so the zero rung builds a fully inert plan.
fn fault_config(rung: &FaultRung, source: NodeId) -> FaultConfig {
    FaultConfig {
        corruption: rung.corruption,
        crashes: (rung.crash_fraction > 0.0).then_some(DowntimeConfig {
            node_fraction: rung.crash_fraction,
            // The data source never crashes: graceful degradation when
            // members fail is the point, a dead source stalls everything.
            mean_uptime: SimDuration::from_hours(18.0),
            mean_downtime: SimDuration::from_hours(6.0),
            exempt: Some(source),
        }),
        regional: (rung.outages > 0).then_some(RegionalOutageConfig {
            regions: 4,
            outages: rung.outages,
            mean_duration: SimDuration::from_hours(6.0),
        }),
        ..FaultConfig::default()
    }
}

/// One chaos run with an explicit retry policy.
#[must_use]
pub fn chaos_run_with(
    preset: TracePreset,
    seed: u64,
    rung: &FaultRung,
    retry: RetryPolicy,
) -> FreshnessReport {
    let trace = trace_for(preset, seed);
    let factory = RngFactory::new(seed);
    let mut base = config_for(preset);
    base.rebuild_every = Some(SimDuration::from_hours(12.0));
    base.reparent = true;
    // Campaign mode explicitly (not from the environment): the whole point
    // of E17 is asserting on the accumulated oracle report, which `off`
    // would silence. Oracles are pure observers, so the mode never
    // perturbs the simulated outcome.
    base.oracle_mode = OracleMode::Campaign;
    let (source, _) = FreshnessSimulator::new(base).select_roles(&trace);
    base.faults = Some(fault_config(rung, source));
    base.resilience = Some(ResilienceConfig {
        retry,
        ..ResilienceConfig::default()
    });
    FreshnessSimulator::new(base).run(&trace, SchemeChoice::Hierarchical, &factory)
}

/// One chaos run of the E17 configuration: conference trace, failure-aware
/// hierarchy (exponential-backoff retry with escalation, failure detector,
/// periodic rebuild), all invariant oracles in campaign mode, and the
/// given rung's fault mix.
#[must_use]
pub fn chaos_run(preset: TracePreset, seed: u64, rung: &FaultRung) -> FreshnessReport {
    chaos_run_with(
        preset,
        seed,
        rung,
        RetryPolicy::exponential(3, SimDuration::from_hours(1.0)),
    )
}

/// Runs E17 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E17 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E17 on the conference trace: the chaos-intensity ladder, with the
/// degradation-envelope assertions (monotone freshness decline over the
/// seed means, zero invariant violations anywhere).
///
/// # Panics
///
/// Panics if any run records an invariant violation, or if the seed-mean
/// freshness ever *rises* from one rung to the next.
pub fn run_with(params: &Params) {
    banner("E17", "chaos campaign: degradation envelope (extension)");
    let preset = params.preset;
    println!(
        "trace: {preset}; corruption + crash-with-state-loss + regional outages,\n\
         failure-aware hierarchy (exponential backoff, escalation, re-parenting),\n\
         invariant oracles in campaign mode\n"
    );
    let mut table = Table::new([
        "intensity",
        "freshness",
        "corrupted tx",
        "rejected replays",
        "crash rejoins",
        "reattaches",
        "escalations",
        "violations",
    ]);

    let seeds = &params.seeds;
    let retry = params.retry.to_policy();
    let mut envelope: Vec<f64> = Vec::new();
    let mut merged = OracleReport::new();
    let mut runs = 0usize;
    for rung in &params.ladder {
        let mut freshness = Vec::new();
        let mut corrupted = Vec::new();
        let mut rejected = Vec::new();
        let mut rejoins = Vec::new();
        let mut reattaches = Vec::new();
        let mut escalations = Vec::new();
        let per = per_seed(seeds, |seed| {
            let r = chaos_run_with(preset, seed, rung, retry);
            (
                r.mean_freshness,
                r.extras.get("corrupted-transfers") as f64,
                r.extras.get("corrupted-rejections") as f64,
                r.extras.get("crash-rejoins") as f64,
                r.extras.get("crash-reattaches") as f64,
                r.extras.get("retry-escalations") as f64,
                r.oracle,
            )
        });
        for (f, ct, cr, rj, ra, esc, oracle) in per {
            freshness.push(f);
            corrupted.push(ct);
            rejected.push(cr);
            rejoins.push(rj);
            reattaches.push(ra);
            escalations.push(esc);
            merged.merge(&oracle);
            runs += 1;
        }
        envelope.push(freshness.iter().sum::<f64>() / freshness.len() as f64);
        table.row([
            rung.name.clone(),
            fmt_ci(&freshness, 3),
            fmt_ci_count(&corrupted),
            fmt_ci_count(&rejected),
            fmt_ci_count(&rejoins),
            fmt_ci_count(&reattaches),
            fmt_ci_count(&escalations),
            merged.total().to_string(),
        ]);
    }
    table.print();

    assert!(
        merged.is_clean(),
        "invariant violations under chaos: {merged:?}"
    );
    for (w, pair) in envelope.windows(2).enumerate() {
        assert!(
            pair[1] <= pair[0] + 1e-9,
            "freshness rose from {} to {} between rungs {} and {}",
            pair[0],
            pair[1],
            params.ladder[w].name,
            params.ladder[w + 1].name
        );
    }
    println!(
        "\n(degradation envelope held: mean freshness declined monotonically \
         {:.3} -> {:.3} across the ladder, with zero invariant violations \
         over {runs} oracle-audited runs — every stale replay was rejected, \
         every amnesiac rejoiner re-attached, and the tree stayed a bounded-\
         fanout forest throughout)",
        envelope.first().copied().unwrap_or(0.0),
        envelope.last().copied().unwrap_or(0.0),
    );
}
