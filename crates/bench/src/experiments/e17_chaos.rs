//! E17 — chaos campaign: the degradation envelope under adversarial and
//! crash-recovery faults (extension beyond the reconstructed evaluation).
//!
//! One sweep over the conference trace climbs a ladder of chaos
//! intensities from fault-free to extreme, at every rung combining all
//! three adversarial fault kinds of the fault layer
//! ([`omn_contacts::faults::FaultPlan`]):
//!
//! * **stale-version corruption** — transfers deliver a replayed stale
//!   version the receiver's monotonicity check must reject,
//! * **crash with state loss** — nodes vanish and rejoin amnesiac, forcing
//!   re-attachment from scratch, and
//! * **correlated regional outages** — whole id-blocks of nodes go down
//!   together.
//!
//! Every run executes with the full invariant-oracle suite in campaign
//! mode and the failure-aware hierarchy (exponential-backoff retry with
//! timeout escalation, failure detector with re-parenting). The campaign
//! asserts the degradation envelope: mean freshness declines monotonically
//! as chaos intensifies, and not a single protocol invariant — version
//! monotonicity, tree structure, budget accounting, timer liveness — is
//! violated at any rung.

use omn_contacts::faults::{DowntimeConfig, FaultConfig, RegionalOutageConfig};
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::NodeId;
use omn_core::scheme::{ResilienceConfig, RetryPolicy};
use omn_core::sim::{FreshnessReport, FreshnessSimulator, SchemeChoice};
use omn_sim::{OracleMode, OracleReport, RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

/// One rung of the chaos ladder: how intense each fault kind is.
#[derive(Debug, Clone, Copy)]
pub struct ChaosLevel {
    /// Human-readable rung name.
    pub name: &'static str,
    /// Probability that a successful transfer is a stale-version replay.
    pub corruption: f64,
    /// Fraction of nodes subject to crash-with-state-loss windows.
    pub crash_fraction: f64,
    /// Number of correlated regional outage events over the span.
    pub outages: u32,
}

/// The chaos ladder, fault-free to extreme. The zero rung configures no
/// fault at all (the plan is inert), so it doubles as the campaign's
/// baseline.
pub const LEVELS: [ChaosLevel; 5] = [
    ChaosLevel {
        name: "zero",
        corruption: 0.0,
        crash_fraction: 0.0,
        outages: 0,
    },
    ChaosLevel {
        name: "mild",
        corruption: 0.10,
        crash_fraction: 0.15,
        outages: 1,
    },
    ChaosLevel {
        name: "moderate",
        corruption: 0.25,
        crash_fraction: 0.35,
        outages: 3,
    },
    ChaosLevel {
        name: "severe",
        corruption: 0.45,
        crash_fraction: 0.60,
        outages: 6,
    },
    ChaosLevel {
        name: "extreme",
        corruption: 0.70,
        crash_fraction: 0.85,
        outages: 10,
    },
];

/// The fault configuration of one rung. Zero-intensity kinds stay `None`
/// so the zero rung builds a fully inert plan.
fn fault_config(level: ChaosLevel, source: NodeId) -> FaultConfig {
    FaultConfig {
        corruption: level.corruption,
        crashes: (level.crash_fraction > 0.0).then_some(DowntimeConfig {
            node_fraction: level.crash_fraction,
            // The data source never crashes: graceful degradation when
            // members fail is the point, a dead source stalls everything.
            mean_uptime: SimDuration::from_hours(18.0),
            mean_downtime: SimDuration::from_hours(6.0),
            exempt: Some(source),
        }),
        regional: (level.outages > 0).then_some(RegionalOutageConfig {
            regions: 4,
            outages: level.outages,
            mean_duration: SimDuration::from_hours(6.0),
        }),
        ..FaultConfig::default()
    }
}

/// One chaos run of the E17 configuration: conference trace, failure-aware
/// hierarchy (exponential-backoff retry with escalation, failure detector,
/// periodic rebuild), all invariant oracles in campaign mode, and the
/// given rung's fault mix.
#[must_use]
pub fn chaos_run(preset: TracePreset, seed: u64, level: ChaosLevel) -> FreshnessReport {
    let trace = trace_for(preset, seed);
    let factory = RngFactory::new(seed);
    let mut base = config_for(preset);
    base.rebuild_every = Some(SimDuration::from_hours(12.0));
    base.reparent = true;
    // Campaign mode explicitly (not from the environment): the whole point
    // of E17 is asserting on the accumulated oracle report, which `off`
    // would silence. Oracles are pure observers, so the mode never
    // perturbs the simulated outcome.
    base.oracle_mode = OracleMode::Campaign;
    let (source, _) = FreshnessSimulator::new(base).select_roles(&trace);
    base.faults = Some(fault_config(level, source));
    base.resilience = Some(ResilienceConfig {
        retry: RetryPolicy::exponential(3, SimDuration::from_hours(1.0)),
        ..ResilienceConfig::default()
    });
    FreshnessSimulator::new(base).run(&trace, SchemeChoice::Hierarchical, &factory)
}

/// Runs E17 on the conference trace: the chaos-intensity ladder, with the
/// degradation-envelope assertions (monotone freshness decline over the
/// seed means, zero invariant violations anywhere).
///
/// # Panics
///
/// Panics if any run records an invariant violation, or if the seed-mean
/// freshness ever *rises* from one rung to the next.
pub fn run() {
    banner("E17", "chaos campaign: degradation envelope (extension)");
    let preset = TracePreset::InfocomLike;
    println!(
        "trace: {preset}; corruption + crash-with-state-loss + regional outages,\n\
         failure-aware hierarchy (exponential backoff, escalation, re-parenting),\n\
         invariant oracles in campaign mode\n"
    );
    let mut table = Table::new([
        "intensity",
        "freshness",
        "corrupted tx",
        "rejected replays",
        "crash rejoins",
        "reattaches",
        "escalations",
        "violations",
    ]);

    let seeds = active_seeds();
    let mut envelope: Vec<f64> = Vec::new();
    let mut merged = OracleReport::new();
    let mut runs = 0usize;
    for &level in &LEVELS {
        let mut freshness = Vec::new();
        let mut corrupted = Vec::new();
        let mut rejected = Vec::new();
        let mut rejoins = Vec::new();
        let mut reattaches = Vec::new();
        let mut escalations = Vec::new();
        let per = per_seed(&seeds, |seed| {
            let r = chaos_run(preset, seed, level);
            (
                r.mean_freshness,
                r.extras.get("corrupted-transfers") as f64,
                r.extras.get("corrupted-rejections") as f64,
                r.extras.get("crash-rejoins") as f64,
                r.extras.get("crash-reattaches") as f64,
                r.extras.get("retry-escalations") as f64,
                r.oracle,
            )
        });
        for (f, ct, cr, rj, ra, esc, oracle) in per {
            freshness.push(f);
            corrupted.push(ct);
            rejected.push(cr);
            rejoins.push(rj);
            reattaches.push(ra);
            escalations.push(esc);
            merged.merge(&oracle);
            runs += 1;
        }
        envelope.push(freshness.iter().sum::<f64>() / freshness.len() as f64);
        table.row([
            level.name.to_owned(),
            fmt_ci(&freshness, 3),
            fmt_ci_count(&corrupted),
            fmt_ci_count(&rejected),
            fmt_ci_count(&rejoins),
            fmt_ci_count(&reattaches),
            fmt_ci_count(&escalations),
            merged.total().to_string(),
        ]);
    }
    table.print();

    assert!(
        merged.is_clean(),
        "invariant violations under chaos: {merged:?}"
    );
    for (w, pair) in envelope.windows(2).enumerate() {
        assert!(
            pair[1] <= pair[0] + 1e-9,
            "freshness rose from {} to {} between rungs {} and {}",
            pair[0],
            pair[1],
            LEVELS[w].name,
            LEVELS[w + 1].name
        );
    }
    println!(
        "\n(degradation envelope held: mean freshness declined monotonically \
         {:.3} -> {:.3} across the ladder, with zero invariant violations \
         over {runs} oracle-audited runs — every stale replay was rejected, \
         every amnesiac rejoiner re-attached, and the tree stayed a bounded-\
         fanout forest throughout)",
        envelope.first().copied().unwrap_or(0.0),
        envelope.last().copied().unwrap_or(0.0),
    );
}
