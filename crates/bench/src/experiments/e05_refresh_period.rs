//! E5 — Freshness vs refresh period: faster-changing data is harder to
//! keep fresh; the gap between schemes widens as the period shrinks.

use omn_contacts::synth::presets::TracePreset;
use omn_core::freshness::FreshnessRequirement;
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

const PERIODS_H: [f64; 5] = [2.0, 4.0, 8.0, 16.0, 32.0];
const SCHEMES: [SchemeChoice; 4] = [
    SchemeChoice::Hierarchical,
    SchemeChoice::SourceOnly,
    SchemeChoice::Epidemic,
    SchemeChoice::NoRefresh,
];

/// Runs E5 on the conference trace: mean freshness and fresh-access ratio
/// across refresh periods for each scheme.
pub fn run() {
    banner("E5", "freshness vs refresh period");
    let preset = TracePreset::InfocomLike;
    println!("trace: {preset}\n");

    let seeds = active_seeds();
    let mut table = Table::new(["period (h)", "scheme", "mean freshness", "fresh-access"]);
    for &period_h in &PERIODS_H {
        for &choice in &SCHEMES {
            let (fresh, access): (Vec<f64>, Vec<f64>) = per_seed(&seeds, |seed| {
                let base = config_for(preset);
                let period = SimDuration::from_hours(period_h);
                let config = FreshnessConfig {
                    refresh_period: period,
                    requirement: FreshnessRequirement::new(
                        base.requirement.probability,
                        period / 2.0,
                    ),
                    ..base
                };
                let trace = trace_for(preset, seed);
                let report =
                    FreshnessSimulator::new(config).run(&trace, choice, &RngFactory::new(seed));
                (report.mean_freshness, report.fresh_access_ratio())
            })
            .into_iter()
            .unzip();
            table.row([
                format!("{period_h:.0}"),
                choice.name().to_owned(),
                fmt_ci(&fresh, 3),
                fmt_ci(&access, 3),
            ]);
        }
    }
    table.print();
    println!(
        "\n(expected shape: all schemes improve with longer periods; the \
         hierarchical scheme holds high freshness down to periods where \
         source-only has already collapsed; no-refresh ≈ period/span)"
    );
}
