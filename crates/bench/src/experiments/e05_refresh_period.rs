//! E5 — Freshness vs refresh period: faster-changing data is harder to
//! keep fresh; the gap between schemes widens as the period shrinks.

use omn_contacts::synth::presets::TracePreset;
use omn_core::freshness::FreshnessRequirement;
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

const PERIODS_H: [f64; 5] = [2.0, 4.0, 8.0, 16.0, 32.0];
const SCHEMES: [SchemeChoice; 4] = [
    SchemeChoice::Hierarchical,
    SchemeChoice::SourceOnly,
    SchemeChoice::Epidemic,
    SchemeChoice::NoRefresh,
];

/// Parameters of E5: the refresh-period sweep per scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the sweep runs on.
    pub preset: TracePreset,
    /// Refresh periods swept, hours (deadline = period / 2).
    pub periods_h: Vec<f64>,
    /// Schemes compared at each period.
    pub schemes: Vec<SchemeChoice>,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            periods_h: PERIODS_H.to_vec(),
            schemes: SCHEMES.to_vec(),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            preset: plan.preset_one(),
            periods_h: plan.axis_or("period-h", &PERIODS_H),
            schemes: plan.schemes_or(&SCHEMES),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Runs E5 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E5 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E5: mean freshness and fresh-access ratio across refresh periods
/// for each scheme.
pub fn run_with(params: &Params) {
    banner("E5", "freshness vs refresh period");
    let preset = params.preset;
    println!("trace: {preset}\n");

    let seeds = &params.seeds;
    let mut table = Table::new(["period (h)", "scheme", "mean freshness", "fresh-access"]);
    for &period_h in &params.periods_h {
        for &choice in &params.schemes {
            let (fresh, access): (Vec<f64>, Vec<f64>) = per_seed(seeds, |seed| {
                let base = config_for(preset);
                let period = SimDuration::from_hours(period_h);
                let config = FreshnessConfig {
                    refresh_period: period,
                    requirement: FreshnessRequirement::new(
                        base.requirement.probability,
                        period / 2.0,
                    ),
                    ..base
                };
                let trace = trace_for(preset, seed);
                let report =
                    FreshnessSimulator::new(config).run(&trace, choice, &RngFactory::new(seed));
                (report.mean_freshness, report.fresh_access_ratio())
            })
            .into_iter()
            .unzip();
            table.row([
                format!("{period_h:.0}"),
                choice.name().to_owned(),
                fmt_ci(&fresh, 3),
                fmt_ci(&access, 3),
            ]);
        }
    }
    table.print();
    println!(
        "\n(expected shape: all schemes improve with longer periods; the \
         hierarchical scheme holds high freshness down to periods where \
         source-only has already collapsed; no-refresh ≈ period/span)"
    );
}
