//! E4 — Freshness vs the freshness requirement `q`: replication is sized
//! analytically to the requirement, so the *planned* per-hop success
//! probability tracks `q` and the replica count grows with it; measured
//! satisfaction rises accordingly until the trace's diurnal night gaps
//! bound what any deadline-limited scheme can achieve.

use omn_contacts::synth::presets::TracePreset;
use omn_contacts::ContactGraph;
use omn_core::freshness::FreshnessRequirement;
use omn_core::hierarchy::{HierarchyStrategy, RefreshHierarchy};
use omn_core::replication::ReplicationPlanner;
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

const REQUIREMENTS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];
const MAX_RELAYS: usize = 16;

/// Parameters of E4: the requirement sweep and the relay cap.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the sweep runs on.
    pub preset: TracePreset,
    /// Freshness requirements `q` swept.
    pub qs: Vec<f64>,
    /// Per-edge relay cap of the replication planner.
    pub max_relays: usize,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            qs: REQUIREMENTS.to_vec(),
            max_relays: MAX_RELAYS,
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            preset: plan.preset_one(),
            qs: plan.axis_or("q", &REQUIREMENTS),
            max_relays: plan.scalar_usize_or("max-relays", MAX_RELAYS),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Runs E4 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E4 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E4 on the configured trace.
pub fn run_with(params: &Params) {
    banner("E4", "freshness vs requirement q (replication sizing)");
    let preset = params.preset;
    let max_relays = params.max_relays;
    println!("trace: {preset}, max relays per edge: {max_relays}\n");

    let mut table = Table::new([
        "q",
        "relays/edge",
        "planned P(hop)",
        "satisfaction",
        "mean freshness",
        "replicas/run",
    ]);

    let seeds = &params.seeds;
    for &q in &params.qs {
        let per = per_seed(seeds, |seed| {
            let base = config_for(preset);
            let requirement = FreshnessRequirement::new(q, base.requirement.deadline);
            let config = FreshnessConfig {
                requirement,
                max_relays,
                ..base
            };
            let trace = trace_for(preset, seed);
            let sim = FreshnessSimulator::new(config);

            // Planning view: what the analytical sizing produces for q.
            let (source, members) = sim.select_roles(&trace);
            let graph = ContactGraph::from_trace(&trace);
            let mut rng = RngFactory::new(seed).stream("e4-plan");
            let hierarchy = RefreshHierarchy::build(
                source,
                &members,
                &graph,
                HierarchyStrategy::GreedySed {
                    fanout: config.fanout,
                },
                &mut rng,
            );
            let plans =
                ReplicationPlanner::new(requirement, max_relays).plan_hierarchy(&hierarchy, &graph);
            let edges = plans.len().max(1) as f64;
            let relays = plans.values().map(|p| p.relays.len() as f64).sum::<f64>() / edges;
            let hop_p = plans.values().map(|p| p.achieved_probability).sum::<f64>() / edges;

            // Measured view.
            let report = sim.run(&trace, SchemeChoice::Hierarchical, &RngFactory::new(seed));
            (
                relays,
                hop_p,
                report.requirement_satisfaction,
                report.mean_freshness,
                report.replicas as f64,
            )
        });

        let mut relays_per_edge = Vec::new();
        let mut planned = Vec::new();
        let mut sat = Vec::new();
        let mut fresh = Vec::new();
        let mut replicas = Vec::new();
        for (relays, hop_p, s, f, r) in per {
            relays_per_edge.push(relays);
            planned.push(hop_p);
            sat.push(s);
            fresh.push(f);
            replicas.push(r);
        }
        table.row([
            format!("{q:.1}"),
            fmt_ci(&relays_per_edge, 1),
            fmt_ci(&planned, 3),
            fmt_ci(&sat, 3),
            fmt_ci(&fresh, 3),
            crate::fmt_ci_count(&replicas),
        ]);
    }
    table.print();
    println!(
        "\n(expected shape: planned per-hop probability and relays/edge \
         scale with q — the analytical sizing responds to the requirement; \
         measured satisfaction rises with q but saturates below 1.0 because \
         versions born into the diurnal night cannot meet a short deadline \
         under any replication)"
    );
}
