//! E1 — Trace characteristics (the paper's Table I analogue).

use omn_contacts::synth::presets::TracePreset;
use omn_contacts::TraceStats;
use omn_sim::stats::mean_ci95;

use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, per_seed, Table};

/// Parameters of E1: which presets to characterize, over which seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace presets, one table row each.
    pub presets: Vec<TracePreset>,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            presets: TracePreset::ALL.to_vec(),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            presets: plan.presets(),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Runs E1 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E1 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E1: prints one row per trace preset with node count, span,
/// contacts, density, inter-contact and contact-duration statistics
/// (averaged over seeds).
pub fn run_with(params: &Params) {
    banner("E1", "trace characteristics (Table I analogue)");
    let mut table = Table::new([
        "trace",
        "nodes",
        "span (days)",
        "contacts",
        "contacts/node/day",
        "mean ICT (h)",
        "mean dur (s)",
        "mean degree",
    ]);

    let seeds = &params.seeds;
    for &preset in &params.presets {
        let mut contacts = Vec::new();
        let mut per_day = Vec::new();
        let mut ict = Vec::new();
        let mut dur = Vec::new();
        let mut degree = Vec::new();
        let mut nodes = 0;
        let mut span_days = 0.0;
        let per = per_seed(seeds, |seed| {
            let trace = crate::experiments::trace_for(preset, seed);
            TraceStats::compute(&trace)
        });
        for stats in per {
            nodes = stats.node_count;
            span_days = stats.span.as_days();
            contacts.push(stats.total_contacts as f64);
            per_day.push(stats.contacts_per_node_per_day);
            if let Some(s) = stats.inter_contact {
                ict.push(s.mean / 3600.0);
            }
            if let Some(s) = stats.contact_duration {
                dur.push(s.mean);
            }
            degree.push(stats.mean_degree());
        }
        let (c, _) = mean_ci95(&contacts);
        table.row([
            preset.name().to_owned(),
            nodes.to_string(),
            format!("{span_days:.1}"),
            format!("{c:.0}"),
            crate::fmt_ci(&per_day, 1),
            crate::fmt_ci(&ict, 1),
            crate::fmt_ci(&dur, 0),
            crate::fmt_ci(&degree, 1),
        ]);
    }
    table.print();
    println!(
        "\n(calibration targets: reality-like ~5 contacts/node/day, campus \
         communities; infocom-like conference density, order-of-magnitude \
         denser)"
    );
}
