//! E2 — Analytical model validation: predicted refresh-delay CDFs and
//! per-node freshness against trace-driven simulation.

use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_contacts::ContactGraph;
use omn_core::analysis;
use omn_core::scheme::{HierarchicalConfig, HierarchicalScheme};
use omn_core::sim::{FreshnessConfig, FreshnessSimulator};
use omn_sim::stats::EmpiricalCdf;
use omn_sim::{RngFactory, SimDuration};

use crate::scenario::{CampaignPlan, PairwiseWorld, WorldSpec};
use crate::{banner, Table};

/// Parameters of E2: the pairwise-exponential world and the validation
/// sweep shape. No seed set — the analytical comparison uses one fixed
/// world keyed by `world.world_seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// The synthetic pairwise-exponential contact world.
    pub world: PairwiseWorld,
    /// Caching-node count of the validated configuration.
    pub caching_nodes: usize,
    /// Refresh period, hours.
    pub refresh_hours: f64,
    /// The CDF is tabulated at 1..=`cdf_max_k` hours.
    pub cdf_max_k: usize,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            world: PairwiseWorld {
                nodes: 40,
                span_days: 8.0,
                mean_interval_secs: 7200.0,
                rate_shape: 1.5,
                world_seed: 17,
            },
            caching_nodes: 8,
            refresh_hours: 12.0,
            cdf_max_k: 12,
        }
    }

    /// The campaign a compiled scenario plan describes (the planner
    /// guarantees a pairwise world for `delay-validation`).
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        let world = match &plan.spec.world {
            WorldSpec::Pairwise(w) => w.clone(),
            _ => Params::legacy().world,
        };
        Params {
            world,
            caching_nodes: plan.scalar_usize_or("caching-nodes", 8),
            refresh_hours: plan.scalar_or("refresh-hours", 12.0),
            cdf_max_k: plan.scalar_usize_or("cdf-max-k", 12),
        }
    }
}

/// Runs E2 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E2 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E2: prints the simulated vs analytical refresh-delay CDF series
/// and a per-node freshness comparison table.
pub fn run_with(params: &Params) {
    banner("E2", "analysis vs simulation (validation figure)");

    // Pairwise-exponential trace: the analytical assumption holds by
    // construction, so residual gaps isolate protocol idealizations.
    let w = &params.world;
    let factory = RngFactory::new(w.world_seed);
    let trace = generate_pairwise(
        &PairwiseConfig::new(w.nodes, SimDuration::from_days(w.span_days))
            .mean_rate(1.0 / w.mean_interval_secs)
            .rate_shape(w.rate_shape),
        &factory,
    );
    let config = FreshnessConfig {
        caching_nodes: params.caching_nodes,
        refresh_period: SimDuration::from_hours(params.refresh_hours),
        query_count: 0,
        ..FreshnessConfig::default()
    };
    let sim = FreshnessSimulator::new(config);
    let (source, members) = sim.select_roles(&trace);
    let graph = ContactGraph::from_trace(&trace);
    let mut scheme = HierarchicalScheme::new(HierarchicalConfig {
        replication: Some(config.requirement),
        ..HierarchicalConfig::default()
    });
    let report = sim.run_with_roles(&trace, source, &members, &mut scheme, &factory);
    let hierarchy = scheme.hierarchy().expect("built");
    let summary = analysis::analyze(
        hierarchy,
        scheme.plans(),
        &graph,
        config.refresh_period.as_secs(),
        config.requirement,
    );

    // CDF series: network-mean analytic CDF vs empirical simulated CDF.
    println!("\nrefresh-delay CDF (hours), simulated vs analytical:");
    let mut cdf_table = Table::new(["t (h)", "F_sim(t)", "F_analysis(t)"]);
    let sim_cdf = EmpiricalCdf::from_samples(report.refresh_delays.samples().to_vec());
    for k in 1..=params.cdf_max_k {
        let t_h = k as f64; // 1..cdf_max_k hours
        let t = t_h * 3600.0;
        let analytic =
            summary.nodes.iter().map(|p| p.delay.cdf(t)).sum::<f64>() / summary.nodes.len() as f64;
        cdf_table.row([
            format!("{t_h:.0}"),
            format!("{:.3}", sim_cdf.eval(t)),
            format!("{analytic:.3}"),
        ]);
    }
    cdf_table.print();

    println!("\nper-node freshness, simulated (network mean) vs analytical:");
    let mut node_table = Table::new(["node", "depth", "relays on path", "freshness (analysis)"]);
    for p in &summary.nodes {
        let depth = hierarchy.depth_of(p.node);
        let relays: usize = hierarchy
            .path_from_root(p.node)
            .windows(2)
            .map(|w| {
                scheme
                    .plans()
                    .get(&(w[0], w[1]))
                    .map_or(0, |pl| pl.relays.len())
            })
            .sum();
        node_table.row([
            p.node.to_string(),
            depth.to_string(),
            relays.to_string(),
            format!("{:.3}", p.freshness),
        ]);
    }
    node_table.print();
    println!(
        "\nnetwork mean freshness: simulated {:.3}, analytical {:.3}",
        report.mean_freshness, summary.mean_freshness
    );
    println!(
        "requirement satisfaction: simulated {:.3}, analytical {:.3}",
        report.requirement_satisfaction, summary.mean_within_deadline
    );
}
