//! E3 — Cache freshness ratio over time, per scheme and trace.

use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::{FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, per_seed, window_mean, Table};

const POINTS: usize = 12;

/// Parameters of E3: presets × schemes time-series, seed-averaged over
/// `points` consecutive windows.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace presets, one series block each.
    pub presets: Vec<TracePreset>,
    /// Schemes, one series column each.
    pub schemes: Vec<SchemeChoice>,
    /// Number of time windows the span is split into.
    pub points: usize,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            presets: TracePreset::ALL.to_vec(),
            schemes: SchemeChoice::ALL.to_vec(),
            points: POINTS,
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            presets: plan.presets(),
            schemes: plan.schemes_or(&SchemeChoice::ALL),
            points: plan.scalar_usize_or("points", POINTS),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Runs E3 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E3 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E3: prints, for each trace, the freshness-ratio time series (one
/// column per scheme), seed-averaged over consecutive time windows
/// (window averages rather than instants, so the series does not alias
/// with version-birth times).
pub fn run_with(params: &Params) {
    banner("E3", "cache freshness ratio over time");
    let seeds = &params.seeds;
    let schemes = &params.schemes;
    let points = params.points;
    for &preset in &params.presets {
        println!("\ntrace: {preset}");
        let config = config_for(preset);
        let sim = FreshnessSimulator::new(config);

        // One independent (span, per-scheme window means) result per seed.
        let per = per_seed(seeds, |seed| {
            let trace = trace_for(preset, seed);
            let span_secs = trace.span().as_secs();
            let mut windows = vec![vec![0.0f64; points]; schemes.len()];
            for (si, &choice) in schemes.iter().enumerate() {
                let report = sim.run(&trace, choice, &RngFactory::new(seed));
                for (pi, slot) in windows[si].iter_mut().enumerate() {
                    let a = span_secs * pi as f64 / points as f64;
                    let b = span_secs * (pi + 1) as f64 / points as f64;
                    *slot = window_mean(&report.freshness_timeline, a, b);
                }
            }
            (span_secs, windows)
        });

        // series[scheme][window], folded in seed order for determinism.
        let mut series = vec![vec![0.0f64; points]; schemes.len()];
        let mut span_secs = 0.0;
        for (span, windows) in per {
            span_secs = span;
            for (si, scheme_windows) in windows.iter().enumerate() {
                for (pi, w) in scheme_windows.iter().enumerate() {
                    series[si][pi] += w / seeds.len() as f64;
                }
            }
        }

        let mut headers = vec!["window (h)".to_owned()];
        headers.extend(schemes.iter().map(|c| c.name().to_owned()));
        let mut table = Table::new(headers);
        for pi in 0..points {
            let a = span_secs * pi as f64 / points as f64 / 3600.0;
            let b = span_secs * (pi + 1) as f64 / points as f64 / 3600.0;
            let mut row = vec![format!("{a:.0}-{b:.0}")];
            row.extend(series.iter().map(|s| format!("{:.3}", s[pi])));
            table.row(row);
        }
        table.print();
    }
    println!(
        "\n(expected shape: epidemic ≳ hierarchical > hier-no-repl > \
         random-tree ≈ source-only ≫ no-refresh, which decays to ~0)"
    );
}
