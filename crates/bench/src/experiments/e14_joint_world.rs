//! E14 — the joint caching + freshness world under contact-capacity
//! contention: both layers run in one engine over one shared contact
//! stream, and every contact carries a fixed transfer budget that refresh
//! transmissions and placement/query/response hops compete for.
//!
//! The sweep raises the query load under a tight per-contact budget and
//! reports, per contention priority, what each layer gets out of the
//! shared capacity: query success and delay (the caching layer), mean
//! cache freshness and fresh-access ratio (the freshness layer), and how
//! much traffic the budget deferred. The expected trade-off: more query
//! load starves refresh traffic (under query-first priority freshness
//! degrades monotonically), while refresh-first sacrifices access delay
//! instead.

use omn_caching::query::QueryWorkload;
use omn_caching::{CachingConfig, Catalog};
use omn_contacts::synth::presets::TracePreset;
use omn_core::joint::{ContentionPriority, JointConfig, JointReport, JointSimulator};
use omn_core::sim::{FreshnessConfig, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

/// Query loads of the sweep. The zipf workload draws sequentially, so each
/// load's queries are a prefix of the next: raising the load only *adds*
/// traffic, which makes the contention trend interpretable.
pub const LOADS: [usize; 3] = [0, 300, 1200];

/// The tight per-contact transfer budget of the contention sweep.
pub const BUDGET: u32 = 2;

const PRIORITIES: [ContentionPriority; 3] = [
    ContentionPriority::RefreshFirst,
    ContentionPriority::QueryFirst,
    ContentionPriority::FairInterleave,
];

fn priority_name(p: ContentionPriority) -> &'static str {
    match p {
        ContentionPriority::RefreshFirst => "refresh-first",
        ContentionPriority::QueryFirst => "query-first",
        ContentionPriority::FairInterleave => "fair-interleave",
    }
}

/// One joint run of the E14 configuration: conference trace, 6-item
/// catalog, hierarchical refreshing with stale-replica demotion, and the
/// given query load, per-contact budget and contention priority.
#[must_use]
pub fn joint_run(
    preset: TracePreset,
    seed: u64,
    load: usize,
    budget: Option<u32>,
    priority: ContentionPriority,
) -> JointReport {
    let factory = RngFactory::new(seed);
    let trace = trace_for(preset, seed);
    let base = config_for(preset);
    let catalog = Catalog::uniform(&trace, 6, base.refresh_period, &factory);
    let queries = QueryWorkload::zipf(&trace, &catalog, load, 1.0, &factory);
    JointSimulator::new(JointConfig {
        caching: CachingConfig {
            query_deadline: SimDuration::from_hours(12.0),
            ..CachingConfig::default()
        },
        freshness: Some(FreshnessConfig {
            query_count: 100,
            ..base
        }),
        scheme: SchemeChoice::Hierarchical,
        contact_budget: budget,
        priority,
        demote_stale: true,
        faults: None,
    })
    .run(&trace, &catalog, &queries, &factory)
}

/// Runs E14 on the conference trace: an unlimited-budget reference row,
/// then the query-load sweep under the tight budget for each contention
/// priority, averaged over seeds.
pub fn run() {
    banner("E14", "joint world: contact-capacity contention");
    let preset = TracePreset::InfocomLike;
    println!(
        "trace: {preset}, per-contact budget {BUDGET},\nquery loads {LOADS:?} (each load is a prefix of the next)\n"
    );
    let seeds = active_seeds();

    struct Row {
        freshness: Vec<f64>,
        fresh_access: Vec<f64>,
        success: Vec<f64>,
        delay_h: Vec<f64>,
        deferred: Vec<f64>,
        peak: Vec<f64>,
    }
    let collect = |budget: Option<u32>, priority, load| -> Row {
        let mut row = Row {
            freshness: Vec::new(),
            fresh_access: Vec::new(),
            success: Vec::new(),
            delay_h: Vec::new(),
            deferred: Vec::new(),
            peak: Vec::new(),
        };
        for r in per_seed(&seeds, |seed| {
            joint_run(preset, seed, load, budget, priority)
        }) {
            row.freshness.push(r.mean_freshness().unwrap_or(0.0));
            row.fresh_access.push(r.fresh_access_ratio());
            row.success.push(r.access.success_ratio());
            row.delay_h
                .push(r.access.mean_delay().unwrap_or(0.0) / 3600.0);
            row.deferred
                .push(r.access.extras.get("budget-deferred-transmissions") as f64);
            row.peak.push(f64::from(r.max_contact_used));
        }
        row
    };
    let render = |table: &mut Table, label: String, row: &Row| {
        table.row([
            label,
            fmt_ci(&row.freshness, 3),
            fmt_ci(&row.fresh_access, 3),
            fmt_ci(&row.success, 3),
            fmt_ci(&row.delay_h, 2),
            fmt_ci_count(&row.deferred),
            fmt_ci_count(&row.peak),
        ]);
    };
    let headers = [
        "configuration",
        "freshness",
        "fresh-access",
        "success",
        "delay (h)",
        "deferred tx",
        "peak/contact",
    ];

    let mut reference = Table::new(headers);
    render(
        &mut reference,
        format!("unlimited, load {}", LOADS[LOADS.len() - 1]),
        &collect(
            None,
            ContentionPriority::RefreshFirst,
            LOADS[LOADS.len() - 1],
        ),
    );
    reference.print();
    println!();

    for priority in PRIORITIES {
        println!("priority: {}", priority_name(priority));
        let mut table = Table::new(headers);
        for load in LOADS {
            let row = collect(Some(BUDGET), priority, load);
            render(&mut table, format!("budget {BUDGET}, load {load}"), &row);
        }
        table.print();
        println!();
    }
    println!(
        "(expected shape: the unlimited row dominates everything; under the \
         tight budget, raising the query load starves refresh traffic — \
         freshness falls monotonically under query-first priority — while \
         refresh-first keeps freshness at the cost of access delay)"
    );
}
