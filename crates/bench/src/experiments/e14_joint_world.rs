//! E14 — the joint caching + freshness world under contact-capacity
//! contention: both layers run in one engine over one shared contact
//! stream, and every contact carries a fixed transfer budget that refresh
//! transmissions and placement/query/response hops compete for.
//!
//! The sweep raises the query load under a tight per-contact budget and
//! reports, per contention priority, what each layer gets out of the
//! shared capacity: query success and delay (the caching layer), mean
//! cache freshness and fresh-access ratio (the freshness layer), and how
//! much traffic the budget deferred. The expected trade-off: more query
//! load starves refresh traffic (under query-first priority freshness
//! degrades monotonically), while refresh-first sacrifices access delay
//! instead.

use omn_caching::query::QueryWorkload;
use omn_caching::{CachingConfig, Catalog};
use omn_contacts::synth::presets::TracePreset;
use omn_core::joint::{ContentionPriority, JointConfig, JointReport, JointSimulator};
use omn_core::sim::{FreshnessConfig, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

/// Query loads of the sweep. The zipf workload draws sequentially, so each
/// load's queries are a prefix of the next: raising the load only *adds*
/// traffic, which makes the contention trend interpretable.
pub const LOADS: [usize; 3] = [0, 300, 1200];

/// The tight per-contact transfer budget of the contention sweep.
pub const BUDGET: u32 = 2;

const PRIORITIES: [ContentionPriority; 3] = [
    ContentionPriority::RefreshFirst,
    ContentionPriority::QueryFirst,
    ContentionPriority::FairInterleave,
];

/// Parameters of E14: the contention sweep shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the joint world runs on.
    pub preset: TracePreset,
    /// The tight per-contact transfer budget.
    pub budget: u32,
    /// Query loads swept (each a prefix of the next).
    pub loads: Vec<usize>,
    /// Contention priorities compared.
    pub priorities: Vec<ContentionPriority>,
    /// Catalog size (items).
    pub catalog: usize,
    /// Query deadline, hours.
    pub query_deadline_h: f64,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            budget: BUDGET,
            loads: LOADS.to_vec(),
            priorities: PRIORITIES.to_vec(),
            catalog: 6,
            query_deadline_h: 12.0,
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes (the planner
    /// guarantees a [contention] section with loads and priorities).
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        let legacy = Params::legacy();
        let (budget, loads, priorities) = match plan.contention() {
            Some(c) => (
                c.budget.unwrap_or(BUDGET),
                c.loads.clone(),
                c.priorities.clone(),
            ),
            None => (
                legacy.budget,
                legacy.loads.clone(),
                legacy.priorities.clone(),
            ),
        };
        Params {
            preset: plan.preset_one(),
            budget,
            loads,
            priorities,
            catalog: plan.scalar_usize_or("catalog", 6),
            query_deadline_h: plan.scalar_or("query-deadline-h", 12.0),
            seeds: plan.seeds().to_vec(),
        }
    }
}

fn priority_name(p: ContentionPriority) -> &'static str {
    match p {
        ContentionPriority::RefreshFirst => "refresh-first",
        ContentionPriority::QueryFirst => "query-first",
        ContentionPriority::FairInterleave => "fair-interleave",
    }
}

/// One joint run with an explicit catalog size and query deadline.
#[must_use]
pub fn joint_run_with(
    preset: TracePreset,
    seed: u64,
    load: usize,
    budget: Option<u32>,
    priority: ContentionPriority,
    catalog_items: usize,
    query_deadline_h: f64,
) -> JointReport {
    let factory = RngFactory::new(seed);
    let trace = trace_for(preset, seed);
    let base = config_for(preset);
    let catalog = Catalog::uniform(&trace, catalog_items, base.refresh_period, &factory);
    let queries = QueryWorkload::zipf(&trace, &catalog, load, 1.0, &factory);
    JointSimulator::new(JointConfig {
        caching: CachingConfig {
            query_deadline: SimDuration::from_hours(query_deadline_h),
            ..CachingConfig::default()
        },
        freshness: Some(FreshnessConfig {
            query_count: 100,
            ..base
        }),
        scheme: SchemeChoice::Hierarchical,
        contact_budget: budget,
        link: None,
        priority,
        policy: omn_caching::policy::PolicyChoice::Lru,
        demote_stale: true,
        faults: None,
    })
    .run(&trace, &catalog, &queries, &factory)
}

/// One joint run of the E14 configuration: conference trace, 6-item
/// catalog, hierarchical refreshing with stale-replica demotion, and the
/// given query load, per-contact budget and contention priority.
#[must_use]
pub fn joint_run(
    preset: TracePreset,
    seed: u64,
    load: usize,
    budget: Option<u32>,
    priority: ContentionPriority,
) -> JointReport {
    joint_run_with(preset, seed, load, budget, priority, 6, 12.0)
}

/// Runs E14 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E14 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E14: an unlimited-budget reference row, then the query-load sweep
/// under the tight budget for each contention priority, averaged over
/// seeds.
pub fn run_with(params: &Params) {
    banner("E14", "joint world: contact-capacity contention");
    let preset = params.preset;
    let budget = params.budget;
    let loads = &params.loads;
    println!(
        "trace: {preset}, per-contact budget {budget},\nquery loads {loads:?} (each load is a prefix of the next)\n"
    );
    let seeds = &params.seeds;

    struct Row {
        freshness: Vec<f64>,
        fresh_access: Vec<f64>,
        success: Vec<f64>,
        delay_h: Vec<f64>,
        deferred: Vec<f64>,
        peak: Vec<f64>,
    }
    let collect = |budget: Option<u32>, priority, load| -> Row {
        let mut row = Row {
            freshness: Vec::new(),
            fresh_access: Vec::new(),
            success: Vec::new(),
            delay_h: Vec::new(),
            deferred: Vec::new(),
            peak: Vec::new(),
        };
        for r in per_seed(seeds, |seed| {
            joint_run_with(
                preset,
                seed,
                load,
                budget,
                priority,
                params.catalog,
                params.query_deadline_h,
            )
        }) {
            row.freshness.push(r.mean_freshness().unwrap_or(0.0));
            row.fresh_access.push(r.fresh_access_ratio());
            row.success.push(r.access.success_ratio());
            row.delay_h
                .push(r.access.mean_delay().unwrap_or(0.0) / 3600.0);
            row.deferred
                .push(r.access.extras.get("budget-deferred-transmissions") as f64);
            row.peak.push(f64::from(r.max_contact_used));
        }
        row
    };
    let render = |table: &mut Table, label: String, row: &Row| {
        table.row([
            label,
            fmt_ci(&row.freshness, 3),
            fmt_ci(&row.fresh_access, 3),
            fmt_ci(&row.success, 3),
            fmt_ci(&row.delay_h, 2),
            fmt_ci_count(&row.deferred),
            fmt_ci_count(&row.peak),
        ]);
    };
    let headers = [
        "configuration",
        "freshness",
        "fresh-access",
        "success",
        "delay (h)",
        "deferred tx",
        "peak/contact",
    ];

    let top_load = loads.last().copied().unwrap_or(0);
    let mut reference = Table::new(headers);
    render(
        &mut reference,
        format!("unlimited, load {top_load}"),
        &collect(None, ContentionPriority::RefreshFirst, top_load),
    );
    reference.print();
    println!();

    for &priority in &params.priorities {
        println!("priority: {}", priority_name(priority));
        let mut table = Table::new(headers);
        for &load in loads {
            let row = collect(Some(budget), priority, load);
            render(&mut table, format!("budget {budget}, load {load}"), &row);
        }
        table.print();
        println!();
    }
    println!(
        "(expected shape: the unlimited row dominates everything; under the \
         tight budget, raising the query load starves refresh traffic — \
         freshness falls monotonically under query-first priority — while \
         refresh-first keeps freshness at the cost of access delay)"
    );
}
