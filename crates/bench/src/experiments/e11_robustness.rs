//! E11 — Robustness to node departures (failure injection; an extension
//! beyond the reconstructed evaluation).
//!
//! At the half-way point of the trace, a fraction of nodes departs
//! permanently — including, possibly, caching nodes and planned relays.
//! Departures are injected through the fault layer
//! ([`omn_contacts::faults::FaultPlan`]): contacts involving a departed
//! node are suppressed, so no trace rewriting is needed and the departed
//! count is rounded over the eligible pool (all nodes minus the exempt
//! source). A statically planned hierarchy keeps refreshing through edges
//! whose endpoints are gone; the distributed-maintenance variant (periodic
//! rebuilds from online estimates + re-parenting) adapts around them; the
//! failure-aware variant additionally retries lost transfers and presumes
//! silent tree neighbors down.

use omn_contacts::faults::{DepartureConfig, FaultConfig};
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::{ContactGraph, NodeId};
use omn_core::hierarchy::{HierarchyStrategy, RefreshHierarchy};
use omn_core::replication::ReplicationPlanner;
use omn_core::scheme::{
    EpidemicRefresh, HierarchicalConfig, HierarchicalScheme, PlanningMode, RefreshScheme,
    ResilienceConfig,
};
use omn_core::sim::FreshnessSimulator;
use omn_sim::{RngFactory, SimDuration, SimTime};

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, per_seed, window_mean, Table};

const DEPART_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.4];

/// Parameters of E11: the departure-fraction ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the sweep runs on.
    pub preset: TracePreset,
    /// Departed node fractions swept.
    pub depart_fractions: Vec<f64>,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            depart_fractions: DEPART_FRACTIONS.to_vec(),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            preset: plan.preset_one(),
            depart_fractions: plan.axis_or("departed", &DEPART_FRACTIONS),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// The static variant: planned once on the *healthy* network, executed
/// verbatim on the failed one (its tree edges and relay plans may point at
/// departed nodes).
fn static_scheme(
    base: &omn_core::sim::FreshnessConfig,
    healthy: &ContactGraph,
    source: NodeId,
    members: &[NodeId],
    seed: u64,
) -> HierarchicalScheme {
    let mut rng = RngFactory::new(seed).stream("e11-static-plan");
    let hierarchy = RefreshHierarchy::build(
        source,
        members,
        healthy,
        HierarchyStrategy::GreedySed {
            fanout: base.fanout,
        },
        &mut rng,
    );
    let plans = ReplicationPlanner::new(base.requirement, base.max_relays)
        .plan_hierarchy(&hierarchy, healthy);
    HierarchicalScheme::with_fixed_plan(
        HierarchicalConfig {
            strategy: HierarchyStrategy::GreedySed {
                fanout: base.fanout,
            },
            replication: Some(base.requirement),
            max_relays: base.max_relays,
            rebuild_every: None,
            reparent: false,
            planning: PlanningMode::Oracle,
            resilience: None,
        },
        hierarchy,
        plans,
    )
}

fn maintained_scheme(
    base: &omn_core::sim::FreshnessConfig,
    resilience: Option<ResilienceConfig>,
) -> HierarchicalScheme {
    HierarchicalScheme::new(HierarchicalConfig {
        strategy: HierarchyStrategy::GreedySed {
            fanout: base.fanout,
        },
        replication: Some(base.requirement),
        max_relays: base.max_relays,
        rebuild_every: Some(SimDuration::from_hours(12.0)),
        reparent: true,
        planning: PlanningMode::Estimated,
        resilience,
    })
}

/// Runs E11 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E11 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E11: post-failure freshness (second half of the trace) per
/// departure fraction for the statically planned hierarchy, the maintained
/// hierarchy, the failure-aware maintained hierarchy, and epidemic
/// refreshing.
pub fn run_with(params: &Params) {
    banner("E11", "robustness to node departures (extension)");
    let preset = params.preset;
    println!("trace: {preset}; departures at half-span (fault-injected)\n");

    let mut table = Table::new([
        "departed",
        "hier (static)",
        "hier (maintained)",
        "hier (failure-aware)",
        "epidemic",
    ]);

    let seeds = &params.seeds;
    for &frac in &params.depart_fractions {
        let mut static_f = Vec::new();
        let mut maintained_f = Vec::new();
        let mut resilient_f = Vec::new();
        let mut epidemic_f = Vec::new();
        let per = per_seed(seeds, |seed| {
            let mut base = config_for(preset);
            let factory = RngFactory::new(seed);
            let trace = trace_for(preset, seed);
            let half = SimTime::from_secs(trace.span().as_secs() / 2.0);

            // Roles come from the healthy network; departures may hit
            // caching nodes and relays alike (only the source is exempt).
            let (source, members) = FreshnessSimulator::new(base).select_roles(&trace);
            base.faults = Some(FaultConfig {
                departures: Some(DepartureConfig {
                    fraction: frac,
                    at_frac: 0.5,
                    exempt: Some(source),
                }),
                ..FaultConfig::default()
            });
            let sim = FreshnessSimulator::new(base);
            let healthy_graph = ContactGraph::from_trace(&trace);

            let post = |scheme: &mut dyn RefreshScheme| {
                let report = sim.run_with_roles(&trace, source, &members, scheme, &factory);
                window_mean(
                    &report.freshness_timeline,
                    half.as_secs(),
                    trace.span().as_secs(),
                )
            };

            (
                post(&mut static_scheme(
                    &base,
                    &healthy_graph,
                    source,
                    &members,
                    seed,
                )),
                post(&mut maintained_scheme(&base, None)),
                post(&mut maintained_scheme(
                    &base,
                    Some(ResilienceConfig::default()),
                )),
                post(&mut EpidemicRefresh::new()),
            )
        });
        for (st, ma, re, ep) in per {
            static_f.push(st);
            maintained_f.push(ma);
            resilient_f.push(re);
            epidemic_f.push(ep);
        }
        table.row([
            format!("{:.0}%", frac * 100.0),
            fmt_ci(&static_f, 3),
            fmt_ci(&maintained_f, 3),
            fmt_ci(&resilient_f, 3),
            fmt_ci(&epidemic_f, 3),
        ]);
    }
    table.print();
    println!(
        "\n(expected shape: everything degrades — departed caching nodes \
         cannot be refreshed at all. The interesting feature is the \
         crossover: with no/low churn the oracle-planned static hierarchy \
         wins because online maintenance pays estimation noise, but from \
         ~20% departures the maintained hierarchy overtakes it — the static \
         plan's tree edges and relay sets keep pointing at dead nodes, \
         while rebuilds route around them. The failure-aware variant \
         additionally suspects silent neighbors and re-parents their \
         orphans, buying a further margin at high departure fractions)"
    );
}
