//! E19 — the bandwidth-realistic link model: sized messages, byte-budget
//! contacts, and per-node transmission queues over the joint world.
//!
//! E14's contention world counts transfer *slots*; this campaign gives
//! every message a wire size and every contact a byte capacity of
//! `bandwidth × duration`, then sweeps the bandwidth from starvation to
//! effectively infinite. A refresh frame or caching hop that does not fit
//! the remaining capacity is byte-deferred — refresh frames park in the
//! sender's bounded FIFO transmission queue and drain at later contacts.
//! The infinite rung (the `0` sentinel) must reproduce the slot-counting
//! E14 numbers bit-for-bit: an unlimited link attaches no byte capacity,
//! so nothing is ever denied, the queues stay empty, and no extra
//! randomness is drawn. `run_with` asserts that identity on every seed.
//!
//! The second table compares LRU placement against the EWMA
//! decayed-popularity baseline across the same ladder: adaptive placement
//! matters most when bytes are scarce and every wasted placement hop
//! crowds out refresh traffic.

use omn_caching::policy::PolicyChoice;
use omn_caching::query::QueryWorkload;
use omn_caching::{CachingConfig, Catalog};
use omn_contacts::synth::presets::TracePreset;
use omn_core::joint::{ContentionPriority, JointConfig, JointReport, JointSimulator};
use omn_core::sim::{FreshnessConfig, RefreshLink, SchemeChoice};
use omn_sim::{LinkConfig, RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

/// The bandwidth ladder, bytes/second; `0` is the unlimited sentinel.
/// Tuned so the bottom rung starves both layers, the middle rungs bite,
/// and the top finite rung is already indistinguishable from unlimited.
pub const BANDWIDTHS: [f64; 5] = [1.0, 4.0, 16.0, 256.0, 0.0];

/// Wire size of one refresh frame, bytes.
pub const REFRESH_BYTES: u64 = 256;

/// Per-node transmission-queue depth bound.
pub const QUEUE_DEPTH: usize = 64;

/// The query load the ladder runs under (the top of E14's sweep, where
/// contention is sharpest).
pub const LOAD: usize = 1200;

/// The per-contact transfer-slot budget (E14's tight budget — the byte
/// capacity binds *in addition* to the slots).
pub const BUDGET: u32 = 2;

/// Per-node cache capacity (items) of the placement-policy comparison.
/// The ladder itself runs E14's default capacity (16, which never evicts
/// a 6-item catalog — that table must stay comparable to the slot-counting
/// headline); the policy table tightens the capacity below the catalog
/// size so eviction pressure makes placement choices observable.
pub const POLICY_CAPACITY: usize = 2;

const POLICIES: [PolicyChoice; 2] = [PolicyChoice::Lru, PolicyChoice::Ewma];

/// Parameters of E19: the bandwidth-ladder shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the joint world runs on.
    pub preset: TracePreset,
    /// Per-contact transfer-slot budget.
    pub budget: u32,
    /// Query load of every rung.
    pub load: usize,
    /// The bandwidth ladder, bytes/second (`0` = unlimited).
    pub bandwidths: Vec<f64>,
    /// Wire size of one refresh frame, bytes.
    pub refresh_bytes: u64,
    /// Per-node transmission-queue depth bound.
    pub queue_depth: usize,
    /// Per-node cache capacity of the policy-comparison table.
    pub policy_capacity: usize,
    /// Catalog size (items).
    pub catalog: usize,
    /// Query deadline, hours.
    pub query_deadline_h: f64,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            budget: BUDGET,
            load: LOAD,
            bandwidths: BANDWIDTHS.to_vec(),
            refresh_bytes: REFRESH_BYTES,
            queue_depth: QUEUE_DEPTH,
            policy_capacity: POLICY_CAPACITY,
            catalog: 6,
            query_deadline_h: 12.0,
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes (the planner
    /// guarantees a [link] section with a bandwidth ladder).
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        let legacy = Params::legacy();
        let (bandwidths, refresh_bytes, queue_depth) = match plan.link() {
            Some(l) => (
                l.bandwidth.clone(),
                l.refresh_bytes.unwrap_or(legacy.refresh_bytes),
                l.queue_depth.unwrap_or(legacy.queue_depth),
            ),
            None => (
                legacy.bandwidths.clone(),
                legacy.refresh_bytes,
                legacy.queue_depth,
            ),
        };
        let budget = plan
            .contention()
            .and_then(|c| c.budget)
            .unwrap_or(legacy.budget);
        Params {
            preset: plan.preset_one(),
            budget,
            load: plan.scalar_usize_or("load", legacy.load),
            bandwidths,
            refresh_bytes,
            queue_depth,
            policy_capacity: plan.scalar_usize_or("policy-capacity", POLICY_CAPACITY),
            catalog: plan.scalar_usize_or("catalog", 6),
            query_deadline_h: plan.scalar_or("query-deadline-h", 12.0),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// One joint run under the link model. `bandwidth` is bytes/second with
/// `0` as the unlimited sentinel (no byte capacity — the slot-counting
/// semantics); `cache_capacity` of `None` keeps the default (E14's
/// configuration).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn bandwidth_run(
    preset: TracePreset,
    seed: u64,
    load: usize,
    budget: Option<u32>,
    bandwidth: f64,
    refresh_bytes: u64,
    queue_depth: usize,
    policy: PolicyChoice,
    cache_capacity: Option<usize>,
    catalog_items: usize,
    query_deadline_h: f64,
) -> JointReport {
    let link = if bandwidth == 0.0 {
        LinkConfig::unlimited()
    } else {
        LinkConfig::with_bandwidth(bandwidth)
    }
    .queue_depth(queue_depth);
    let factory = RngFactory::new(seed);
    let trace = trace_for(preset, seed);
    let base = config_for(preset);
    let catalog = Catalog::uniform(&trace, catalog_items, base.refresh_period, &factory);
    let queries = QueryWorkload::zipf(&trace, &catalog, load, 1.0, &factory);
    let default_caching = CachingConfig::default();
    JointSimulator::new(JointConfig {
        caching: CachingConfig {
            query_deadline: SimDuration::from_hours(query_deadline_h),
            cache_capacity: cache_capacity.unwrap_or(default_caching.cache_capacity),
            ..default_caching
        },
        freshness: Some(FreshnessConfig {
            query_count: 100,
            link: Some(RefreshLink {
                refresh_bytes,
                queue_depth,
            }),
            ..base
        }),
        scheme: SchemeChoice::Hierarchical,
        contact_budget: budget,
        link: Some(link),
        priority: ContentionPriority::QueryFirst,
        policy,
        demote_stale: true,
        faults: None,
    })
    .run(&trace, &catalog, &queries, &factory)
}

fn bw_label(bw: f64) -> String {
    if bw == 0.0 {
        "unlimited".to_owned()
    } else {
        format!("{bw} B/s")
    }
}

/// Asserts the unlimited rung is bit-identical to the slot-counting E14
/// run (same seed, load, budget and priority, no link model): attaching
/// an unlimited link must never deny a byte, queue a frame, or draw
/// randomness.
fn assert_slot_identity(with_link: &JointReport, slot_only: &JointReport, seed: u64) {
    let headline = |r: &JointReport| {
        (
            r.mean_freshness().unwrap_or(0.0).to_bits(),
            r.fresh_access_ratio().to_bits(),
            r.access.success_ratio().to_bits(),
            r.access.mean_delay().unwrap_or(0.0).to_bits(),
            r.access.extras.get("budget-deferred-transmissions"),
            r.access.extras.get("byte-deferred-transmissions"),
            r.max_contact_used,
        )
    };
    assert_eq!(
        headline(with_link),
        headline(slot_only),
        "seed {seed}: the unlimited link rung diverged from slot counting"
    );
    let stats = with_link.link.expect("link model attached");
    assert_eq!(
        stats.enqueued_msgs, 0,
        "seed {seed}: an unlimited link queued a refresh frame"
    );
}

/// Runs E19 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E19 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E19: the bandwidth ladder under LRU (with full link accounting),
/// then LRU vs EWMA placement across the same ladder.
pub fn run_with(params: &Params) {
    banner("E19", "bandwidth-realistic links: the byte-budget ladder");
    let preset = params.preset;
    let budget = params.budget;
    let load = params.load;
    println!(
        "trace: {preset}, per-contact budget {budget}, query load {load},\n\
         refresh frame {} B, queue depth {}, query-first priority\n\
         (capacity per contact = bandwidth × duration; 0 = unlimited)\n",
        params.refresh_bytes, params.queue_depth
    );
    let seeds = &params.seeds;

    struct Row {
        freshness: Vec<f64>,
        fresh_access: Vec<f64>,
        success: Vec<f64>,
        delay_h: Vec<f64>,
        byte_deferred: Vec<f64>,
        queued: Vec<f64>,
        queue_drops: Vec<f64>,
        tx_delay_h: Vec<f64>,
        peak_bytes: Vec<f64>,
    }
    let collect = |bw: f64, policy: PolicyChoice, capacity: Option<usize>| -> Row {
        let mut row = Row {
            freshness: Vec::new(),
            fresh_access: Vec::new(),
            success: Vec::new(),
            delay_h: Vec::new(),
            byte_deferred: Vec::new(),
            queued: Vec::new(),
            queue_drops: Vec::new(),
            tx_delay_h: Vec::new(),
            peak_bytes: Vec::new(),
        };
        for (seed, r) in seeds.iter().copied().zip(per_seed(seeds, |seed| {
            bandwidth_run(
                preset,
                seed,
                load,
                Some(budget),
                bw,
                params.refresh_bytes,
                params.queue_depth,
                policy,
                capacity,
                params.catalog,
                params.query_deadline_h,
            )
        })) {
            // The unlimited rung must reproduce slot counting exactly.
            if bw == 0.0 && policy == PolicyChoice::Lru && capacity.is_none() {
                let slot_only = crate::experiments::e14_joint_world::joint_run_with(
                    preset,
                    seed,
                    load,
                    Some(budget),
                    ContentionPriority::QueryFirst,
                    params.catalog,
                    params.query_deadline_h,
                );
                assert_slot_identity(&r, &slot_only, seed);
            }
            let stats = r.link.unwrap_or_default();
            row.freshness.push(r.mean_freshness().unwrap_or(0.0));
            row.fresh_access.push(r.fresh_access_ratio());
            row.success.push(r.access.success_ratio());
            row.delay_h
                .push(r.access.mean_delay().unwrap_or(0.0) / 3600.0);
            row.byte_deferred
                .push(r.access.extras.get("byte-deferred-transmissions") as f64);
            row.queued.push(stats.enqueued_msgs as f64);
            row.queue_drops.push(stats.dropped_msgs as f64);
            row.tx_delay_h
                .push(stats.mean_delay_secs().unwrap_or(0.0) / 3600.0);
            row.peak_bytes.push(r.max_contact_bytes as f64);
        }
        row
    };

    println!("policy: lru, E14 cache capacity (full link accounting)");
    let mut ladder = Table::new([
        "bandwidth",
        "freshness",
        "fresh-access",
        "success",
        "delay (h)",
        "byte-deferred",
        "queued",
        "q-drops",
        "tx-delay (h)",
        "peak B/contact",
    ]);
    for &bw in &params.bandwidths {
        let row = collect(bw, PolicyChoice::Lru, None);
        ladder.row([
            bw_label(bw),
            fmt_ci(&row.freshness, 3),
            fmt_ci(&row.fresh_access, 3),
            fmt_ci(&row.success, 3),
            fmt_ci(&row.delay_h, 2),
            fmt_ci_count(&row.byte_deferred),
            fmt_ci_count(&row.queued),
            fmt_ci_count(&row.queue_drops),
            fmt_ci(&row.tx_delay_h, 2),
            fmt_ci_count(&row.peak_bytes),
        ]);
    }
    ladder.print();
    println!();

    println!(
        "placement policy under eviction pressure (cache capacity {})",
        params.policy_capacity
    );
    let mut compare = Table::new([
        "configuration",
        "freshness",
        "fresh-access",
        "success",
        "delay (h)",
    ]);
    for &bw in &params.bandwidths {
        for policy in POLICIES {
            let row = collect(bw, policy, Some(params.policy_capacity));
            compare.row([
                format!("{}, {}", policy.name(), bw_label(bw)),
                fmt_ci(&row.freshness, 3),
                fmt_ci(&row.fresh_access, 3),
                fmt_ci(&row.success, 3),
                fmt_ci(&row.delay_h, 2),
            ]);
        }
    }
    compare.print();
    println!();
    println!(
        "(expected shape: the unlimited rung reproduces E14's slot-counting \
         numbers bit-for-bit; descending the ladder, byte-deferrals and \
         queued refresh frames grow while freshness and success fall; under \
         eviction pressure the ewma decayed-popularity policy separates \
         from plain lru — placement choices become visible once every \
         wasted hop competes for scarce bytes)"
    );
}
