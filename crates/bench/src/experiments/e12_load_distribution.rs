//! E12 — Refresh-load distribution (the paper's *basic idea* quantified):
//! "let each caching node be only responsible for refreshing a specific set
//! of caching nodes" exists precisely to take the refreshing load off the
//! source. This experiment measures who actually sends the refresh
//! traffic.

use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

const SCHEMES: [SchemeChoice; 4] = [
    SchemeChoice::Hierarchical,
    SchemeChoice::HierarchicalNoReplication,
    SchemeChoice::SourceOnly,
    SchemeChoice::Epidemic,
];

/// Parameters of E12: schemes compared at one caching-set size.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the comparison runs on.
    pub preset: TracePreset,
    /// Schemes, one table row each.
    pub schemes: Vec<SchemeChoice>,
    /// Caching-set size (large enough that serializing at the source
    /// visibly hurts).
    pub caching_nodes: usize,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            schemes: SCHEMES.to_vec(),
            caching_nodes: 16,
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            preset: plan.preset_one(),
            schemes: plan.schemes_or(&SCHEMES),
            caching_nodes: plan.scalar_usize_or("caching-nodes", 16),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Runs E12 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E12 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E12: reports the source's share of refresh transmissions, the
/// busiest node's share, and the absolute per-version load on the source.
pub fn run_with(params: &Params) {
    banner("E12", "refresh-load distribution");
    let preset = params.preset;
    println!("trace: {preset}, {} caching nodes\n", params.caching_nodes);

    let mut table = Table::new([
        "scheme",
        "source share",
        "busiest-node share",
        "source tx/version",
        "mean freshness",
    ]);

    let seeds = &params.seeds;
    for &choice in &params.schemes {
        let mut src_share = Vec::new();
        let mut max_share = Vec::new();
        let mut src_per_version = Vec::new();
        let mut fresh = Vec::new();
        for report in per_seed(seeds, |seed| {
            let config = FreshnessConfig {
                caching_nodes: params.caching_nodes,
                ..config_for(preset)
            };
            let trace = trace_for(preset, seed);
            FreshnessSimulator::new(config).run(&trace, choice, &RngFactory::new(seed))
        }) {
            let total = report.transmissions.max(1) as f64;
            src_share.push(report.source_transmissions() as f64 / total);
            max_share.push(report.max_node_transmissions() as f64 / total);
            src_per_version
                .push(report.source_transmissions() as f64 / report.version_count as f64);
            fresh.push(report.mean_freshness);
        }
        table.row([
            choice.name().to_owned(),
            fmt_ci(&src_share, 2),
            fmt_ci(&max_share, 2),
            fmt_ci(&src_per_version, 1),
            fmt_ci(&fresh, 3),
        ]);
    }
    table.print();
    println!(
        "\n(expected shape: source-only puts 100% of the load on the \
         source; the hierarchical scheme caps the source's share near \
         fanout/members and spreads the rest over caching nodes; epidemic \
         spreads widest but at far higher total cost — see E6)"
    );
}
