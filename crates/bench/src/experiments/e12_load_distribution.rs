//! E12 — Refresh-load distribution (the paper's *basic idea* quantified):
//! "let each caching node be only responsible for refreshing a specific set
//! of caching nodes" exists precisely to take the refreshing load off the
//! source. This experiment measures who actually sends the refresh
//! traffic.

use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

use crate::experiments::{config_for, trace_for};
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

const SCHEMES: [SchemeChoice; 4] = [
    SchemeChoice::Hierarchical,
    SchemeChoice::HierarchicalNoReplication,
    SchemeChoice::SourceOnly,
    SchemeChoice::Epidemic,
];

/// Runs E12 on the conference trace with a larger caching set (16), where
/// serializing all refreshing at the source visibly hurts: reports the
/// source's share of refresh transmissions, the busiest node's share, and
/// the absolute per-version load on the source.
pub fn run() {
    banner("E12", "refresh-load distribution");
    let preset = TracePreset::InfocomLike;
    println!("trace: {preset}, 16 caching nodes\n");

    let mut table = Table::new([
        "scheme",
        "source share",
        "busiest-node share",
        "source tx/version",
        "mean freshness",
    ]);

    let seeds = active_seeds();
    for &choice in &SCHEMES {
        let mut src_share = Vec::new();
        let mut max_share = Vec::new();
        let mut src_per_version = Vec::new();
        let mut fresh = Vec::new();
        for report in per_seed(&seeds, |seed| {
            let config = FreshnessConfig {
                caching_nodes: 16,
                ..config_for(preset)
            };
            let trace = trace_for(preset, seed);
            FreshnessSimulator::new(config).run(&trace, choice, &RngFactory::new(seed))
        }) {
            let total = report.transmissions.max(1) as f64;
            src_share.push(report.source_transmissions() as f64 / total);
            max_share.push(report.max_node_transmissions() as f64 / total);
            src_per_version
                .push(report.source_transmissions() as f64 / report.version_count as f64);
            fresh.push(report.mean_freshness);
        }
        table.row([
            choice.name().to_owned(),
            fmt_ci(&src_share, 2),
            fmt_ci(&max_share, 2),
            fmt_ci(&src_per_version, 1),
            fmt_ci(&fresh, 3),
        ]);
    }
    table.print();
    println!(
        "\n(expected shape: source-only puts 100% of the load on the \
         source; the hierarchical scheme caps the source's share near \
         fanout/members and spreads the rest over caching nodes; epidemic \
         spreads widest but at far higher total cost — see E6)"
    );
}
