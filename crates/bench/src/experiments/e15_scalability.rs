//! E15 — Scalability with network size: the streaming contact pipeline
//! (sharded generation → pull-based driver) run from 10² to 10⁴ nodes.
//!
//! Nothing in this sweep materializes the contact trace: the
//! [`ShardedCommunitySource`] generates contacts shard-by-shard with
//! O(shards) resident state, and the [`ContactDriver`] pulls them one
//! event at a time, keeping only a bounded residency window. The headline
//! claim — checked by the golden test and printed per row — is that the
//! peak number of resident contacts stays **sublinear** in the number of
//! contacts pulled, so memory no longer scales with trace length.

use std::time::Instant;

use omn_contacts::synth::sharded::{ShardedCommunityConfig, ShardedCommunitySource};
use omn_core::freshness::FreshnessRequirement;
use omn_core::scheme::PlanningMode;
use omn_core::sim::{
    FreshnessConfig, FreshnessReport, FreshnessSimulator, SchemeChoice, StreamStats,
};
use omn_sim::{RngFactory, SimDuration, SimTime};

use crate::{active_nodes, active_seeds, banner, fmt_ci, per_seed, Table};

/// The default node-count sweep (`--nodes` overrides it). Roughly
/// half-decade steps from 10² to 10⁴.
pub const NODE_COUNTS: [usize; 5] = [100, 316, 1000, 3162, 10_000];

/// The schemes compared at each size: the paper's tree scheme (cheap, but
/// starved of usable pairwise rates when mixing is uniform) and epidemic
/// flooding (the reachability upper bound, with cost that grows with the
/// contact volume).
const SCHEMES: [SchemeChoice; 2] = [SchemeChoice::Hierarchical, SchemeChoice::Epidemic];

/// Hours of the stream given to role selection (rate warm-up window).
const WARMUP_HOURS: f64 = 6.0;

/// Shards for a node count: ~50-node communities, at least one.
#[must_use]
pub fn shards_for(nodes: usize) -> usize {
    (nodes / 50).max(1)
}

/// The sharded-generator configuration for a node count: one simulated
/// day, with cross-shard mixing raised to one bridge contact per node
/// every two hours so refresh paths exist between shards (the default
/// once-a-day rate leaves the caching set unreachable from the source at
/// large node counts, and the sweep would measure an idle scheme).
#[must_use]
pub fn scale_config(nodes: usize) -> ShardedCommunityConfig {
    ShardedCommunityConfig::new(nodes, shards_for(nodes), SimDuration::from_days(1.0))
        .bridge_rate(1.0 / (2.0 * 3600.0))
}

/// The freshness configuration of the sweep: deployable planning
/// (estimated rates, periodic rebuilds), no query workload — E15 measures
/// the pipeline, not data access.
#[must_use]
fn sweep_config() -> FreshnessConfig {
    let period = SimDuration::from_hours(4.0);
    FreshnessConfig {
        caching_nodes: 8,
        refresh_period: period,
        requirement: FreshnessRequirement::new(0.9, period),
        lifetime: Some(period * 2.0),
        planning: PlanningMode::Estimated,
        rebuild_every: Some(SimDuration::from_hours(6.0)),
        query_count: 0,
        ..FreshnessConfig::default()
    }
}

/// One measured sweep point.
#[derive(Debug)]
pub struct ScalePoint {
    /// The freshness report of the run.
    pub report: FreshnessReport,
    /// Pull-pipeline statistics (contacts pulled, peak resident).
    pub stats: StreamStats,
    /// Wall-clock seconds for the whole point (warm-up + run).
    pub wall: f64,
}

/// Runs one (node count, scheme, seed) point of the sweep: selects roles
/// from a streamed warm-up window, then drives the scheme over a fresh
/// stream of the same source. Both passes draw from the same
/// [`RngFactory`], so the warm-up window is a prefix of the run's stream.
#[must_use]
pub fn run_point(nodes: usize, choice: SchemeChoice, seed: u64) -> ScalePoint {
    let start = Instant::now();
    let cfg = scale_config(nodes);
    let factory = RngFactory::new(seed);
    let sim = FreshnessSimulator::new(sweep_config());

    let mut warmup = ShardedCommunitySource::new(&cfg, &factory);
    let (source, members, oracle) =
        sim.select_roles_streamed(&mut warmup, SimTime::from_hours(WARMUP_HOURS));
    drop(warmup);

    let stream = ShardedCommunitySource::new(&cfg, &factory);
    let mut scheme = sim.make_scheme(choice);
    let (report, stats) =
        sim.run_streamed(stream, &oracle, source, &members, scheme.as_mut(), &factory);
    ScalePoint {
        report,
        stats,
        wall: start.elapsed().as_secs_f64(),
    }
}

/// Runs E15: node-count sweep of the streaming pipeline, reporting
/// freshness, refresh overhead, stream volume, peak residency, and
/// wall-clock per point.
pub fn run() {
    banner("E15", "scalability with network size (streaming pipeline)");
    println!(
        "generator: sharded communities (~50 nodes/shard), 1 simulated day\n\
         planning: estimated rates, roles from a {WARMUP_HOURS:.0}-hour streamed warm-up\n"
    );
    let mut table = Table::new([
        "nodes",
        "shards",
        "scheme",
        "contacts",
        "peak resident",
        "mean freshness",
        "tx/member/version",
        "wall (s)",
    ]);
    let seeds = active_seeds();
    for &n in &active_nodes(&NODE_COUNTS) {
        for &choice in &SCHEMES {
            let points = per_seed(&seeds, |seed| run_point(n, choice, seed));
            let contacts: Vec<f64> = points
                .iter()
                .map(|p| p.stats.contacts_total as f64)
                .collect();
            let peak: Vec<f64> = points
                .iter()
                .map(|p| p.stats.peak_resident as f64)
                .collect();
            let fresh: Vec<f64> = points.iter().map(|p| p.report.mean_freshness).collect();
            let overhead: Vec<f64> = points
                .iter()
                .map(|p| {
                    let denom = (p.report.members.len() as u64 * p.report.version_count).max(1);
                    p.report.transmissions as f64 / denom as f64
                })
                .collect();
            let wall: Vec<f64> = points.iter().map(|p| p.wall).collect();
            table.row([
                n.to_string(),
                shards_for(n).to_string(),
                choice.name().to_owned(),
                fmt_ci(&contacts, 0),
                fmt_ci(&peak, 0),
                fmt_ci(&fresh, 3),
                fmt_ci(&overhead, 2),
                fmt_ci(&wall, 2),
            ]);
        }
    }
    table.print();
    println!(
        "\n(expected shape: contacts grow ~linearly with nodes — uniform \
         per-shard rates over fixed-size shards — while peak residency \
         tracks the shard count plus the driver's overlap window, staying \
         orders of magnitude below the stream volume; that gap is the \
         memory model that lets one process sweep 10⁴+ nodes. Epidemic \
         flooding keeps freshness high at every size but its per-member \
         cost grows with the contact volume; the tree scheme stays cheap \
         but starves when uniform mixing gives it no usable pairwise \
         rates — the regime the paper's community traces avoid)"
    );
}
