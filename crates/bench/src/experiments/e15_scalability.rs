//! E15 — Scalability with network size: the streaming contact pipeline
//! (sharded generation → pull-based driver) run from 10² to 10⁵ nodes,
//! plus a 10⁶-node headline point (`--headline`).
//!
//! Nothing in this sweep materializes the contact trace: the
//! [`ShardedCommunitySource`] generates contacts shard-by-shard with
//! O(shards) resident state, and the [`ContactDriver`] pulls them one
//! event at a time, keeping only a bounded residency window. With
//! `--threads n` the per-shard generators run on `n` OS threads behind
//! window barriers ([`ParallelShardedSource`]) — the merged stream, and
//! therefore every number printed, is bit-identical to the serial source
//! (the CI determinism job diffs the two byte-for-byte). The headline
//! claim — checked by the golden test and printed per row — is that the
//! peak number of resident contacts stays **sublinear** in the number of
//! contacts pulled, so memory no longer scales with trace length.

use std::time::Instant;

use omn_contacts::synth::sharded::{
    ParallelShardedSource, ShardedCommunityConfig, ShardedCommunitySource,
};
use omn_core::freshness::FreshnessRequirement;
use omn_core::scheme::PlanningMode;
use omn_core::sim::{
    FreshnessConfig, FreshnessReport, FreshnessSimulator, SchemeChoice, StreamStats,
};
use omn_sim::{RngFactory, SimDuration, SimTime};

use crate::scenario::CampaignPlan;
use crate::{
    active_nodes, active_seeds, active_threads, active_window_mins, banner, fmt_ci, per_seed,
    wall_hidden, Table,
};

/// The default node-count sweep (`--nodes` overrides it). Roughly
/// half-decade steps from 10² to 10⁵.
pub const NODE_COUNTS: [usize; 6] = [100, 316, 1000, 3162, 10_000, 100_000];

/// The `--headline` point: a million nodes, one seed, one simulated hour.
pub const HEADLINE_NODES: usize = 1_000_000;

/// The schemes compared at each size: the paper's tree scheme (cheap, but
/// starved of usable pairwise rates when mixing is uniform) and epidemic
/// flooding (the reachability upper bound, with cost that grows with the
/// contact volume).
const SCHEMES: [SchemeChoice; 2] = [SchemeChoice::Hierarchical, SchemeChoice::Epidemic];

/// Hours of the stream given to role selection (rate warm-up window),
/// clipped to half the span at the reduced spans of the largest sizes.
const WARMUP_HOURS: f64 = 6.0;

/// Parameters of E15: sweep sizes, pipeline shape, and output columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Node counts swept.
    pub nodes: Vec<usize>,
    /// Schemes compared at each size.
    pub schemes: Vec<SchemeChoice>,
    /// Replication seeds.
    pub seeds: Vec<u64>,
    /// Generator threads (0 = serial k-way merge).
    pub threads: usize,
    /// Barrier-window override of the parallel pipeline, simulated
    /// minutes.
    pub window_mins: Option<f64>,
    /// Whether to print the wall-clock column.
    pub show_wall: bool,
    /// Node count of the `--headline` point.
    pub headline_nodes: usize,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            nodes: active_nodes(&NODE_COUNTS),
            schemes: SCHEMES.to_vec(),
            seeds: active_seeds(),
            threads: active_threads(),
            window_mins: active_window_mins(),
            show_wall: !wall_hidden(),
            headline_nodes: HEADLINE_NODES,
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            nodes: plan.axis_usize_or("nodes", &NODE_COUNTS),
            schemes: plan.schemes_or(&SCHEMES),
            seeds: plan.seeds().to_vec(),
            threads: plan.threads,
            window_mins: plan.window_mins,
            show_wall: !plan.no_wall,
            headline_nodes: plan.scalar_usize_or("headline-nodes", HEADLINE_NODES),
        }
    }

    fn window(&self) -> Option<SimDuration> {
        self.window_mins.map(SimDuration::from_mins)
    }
}

/// Shards for a node count: ~50-node communities, at least one.
#[must_use]
pub fn shards_for(nodes: usize) -> usize {
    (nodes / 50).max(1)
}

/// Simulated span for a node count: one day through 10⁴ nodes (the
/// golden-pinned regime), shortened at the top sizes so the sweep's
/// contact volume grows sublinearly with node count and the 10⁵/10⁶
/// points stay tractable on one machine.
#[must_use]
pub fn span_for(nodes: usize) -> SimDuration {
    if nodes <= 10_000 {
        SimDuration::from_days(1.0)
    } else if nodes <= 100_000 {
        SimDuration::from_hours(6.0)
    } else {
        SimDuration::from_hours(1.0)
    }
}

/// The sharded-generator configuration for a node count: span from
/// [`span_for`], with cross-shard mixing raised to one bridge contact per
/// node every two hours so refresh paths exist between shards (the
/// default once-a-day rate leaves the caching set unreachable from the
/// source at large node counts, and the sweep would measure an idle
/// scheme).
#[must_use]
pub fn scale_config(nodes: usize) -> ShardedCommunityConfig {
    ShardedCommunityConfig::new(nodes, shards_for(nodes), span_for(nodes))
        .bridge_rate(1.0 / (2.0 * 3600.0))
}

/// The freshness configuration of the sweep: deployable planning
/// (estimated rates, periodic rebuilds), no query workload — E15 measures
/// the pipeline, not data access.
#[must_use]
fn sweep_config() -> FreshnessConfig {
    let period = SimDuration::from_hours(4.0);
    FreshnessConfig {
        caching_nodes: 8,
        refresh_period: period,
        requirement: FreshnessRequirement::new(0.9, period),
        lifetime: Some(period * 2.0),
        planning: PlanningMode::Estimated,
        rebuild_every: Some(SimDuration::from_hours(6.0)),
        query_count: 0,
        ..FreshnessConfig::default()
    }
}

/// One measured sweep point.
#[derive(Debug)]
pub struct ScalePoint {
    /// The freshness report of the run.
    pub report: FreshnessReport,
    /// Pull-pipeline statistics (contacts pulled, peak resident).
    pub stats: StreamStats,
    /// Wall-clock seconds for the whole point (warm-up + run).
    pub wall: f64,
}

/// Runs one (node count, scheme, seed) point of the sweep on the classic
/// serial source — [`run_point_with`] with `threads = 0`.
#[must_use]
pub fn run_point(nodes: usize, choice: SchemeChoice, seed: u64) -> ScalePoint {
    run_point_with(nodes, choice, seed, 0, None)
}

/// Runs one (node count, scheme, seed) point of the sweep: selects roles
/// from a streamed warm-up window, then drives the scheme over a fresh
/// stream of the same source. Both passes draw from the same
/// [`RngFactory`], so the warm-up window is a prefix of the run's stream.
///
/// `threads = 0` pulls the run's stream from the serial
/// [`ShardedCommunitySource`]; `threads ≥ 1` pulls it from the
/// window-barrier [`ParallelShardedSource`] on that many generator
/// threads (`window` overrides its barrier width; `None` uses the
/// default span/64). Every simulation output is bit-identical across all
/// of these — only the wall clock changes.
#[must_use]
pub fn run_point_with(
    nodes: usize,
    choice: SchemeChoice,
    seed: u64,
    threads: usize,
    window: Option<SimDuration>,
) -> ScalePoint {
    let start = Instant::now();
    let cfg = scale_config(nodes);
    let factory = RngFactory::new(seed);
    let sim = FreshnessSimulator::new(sweep_config());

    let cutoff = SimTime::from_secs((WARMUP_HOURS * 3600.0).min(cfg.span.as_secs() / 2.0));
    let mut warmup = ShardedCommunitySource::new(&cfg, &factory);
    let (source, members, oracle) = sim.select_roles_streamed(&mut warmup, cutoff);
    drop(warmup);

    let mut scheme = sim.make_scheme(choice);
    let (report, stats) = if threads == 0 {
        let stream = ShardedCommunitySource::new(&cfg, &factory);
        sim.run_streamed(stream, &oracle, source, &members, scheme.as_mut(), &factory)
    } else {
        let stream = match window {
            Some(w) => ParallelShardedSource::with_window(&cfg, &factory, threads, w),
            None => ParallelShardedSource::new(&cfg, &factory, threads),
        };
        sim.run_streamed(stream, &oracle, source, &members, scheme.as_mut(), &factory)
    };
    ScalePoint {
        report,
        stats,
        wall: start.elapsed().as_secs_f64(),
    }
}

/// Runs E15 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E15 as described by a compiled scenario plan (`--headline`
/// selects the single large point instead of the sweep).
pub fn run_plan(plan: &CampaignPlan) {
    let params = Params::from_plan(plan);
    if plan.headline {
        run_headline_with(&params);
    } else {
        run_with(&params);
    }
}

/// Runs E15: node-count sweep of the streaming pipeline, reporting
/// freshness, refresh overhead, stream volume, peak residency, and
/// wall-clock per point (`--no-wall` hides the wall column for
/// byte-for-byte diffing).
pub fn run_with(params: &Params) {
    banner("E15", "scalability with network size (streaming pipeline)");
    let threads = params.threads;
    let pipeline = if threads == 0 {
        "serial k-way merge".to_owned()
    } else {
        format!("window-barrier parallel merge, {threads} generator threads")
    };
    println!(
        "generator: sharded communities (~50 nodes/shard), span 1 day → 1 h by size\n\
         pipeline: {pipeline}\n\
         planning: estimated rates, roles from a streamed warm-up window\n"
    );
    let show_wall = params.show_wall;
    let mut headers = vec![
        "nodes",
        "shards",
        "scheme",
        "contacts",
        "peak resident",
        "mean freshness",
        "tx/member/version",
    ];
    if show_wall {
        headers.push("wall (s)");
    }
    let mut table = Table::new(headers);
    let seeds = &params.seeds;
    let window = params.window();
    for &n in &params.nodes {
        for &choice in &params.schemes {
            let points = per_seed(seeds, |seed| {
                run_point_with(n, choice, seed, threads, window)
            });
            let contacts: Vec<f64> = points
                .iter()
                .map(|p| p.stats.contacts_total as f64)
                .collect();
            let peak: Vec<f64> = points
                .iter()
                .map(|p| p.stats.peak_resident as f64)
                .collect();
            let fresh: Vec<f64> = points.iter().map(|p| p.report.mean_freshness).collect();
            let overhead: Vec<f64> = points
                .iter()
                .map(|p| {
                    let denom = (p.report.members.len() as u64 * p.report.version_count).max(1);
                    p.report.transmissions as f64 / denom as f64
                })
                .collect();
            let mut row = vec![
                n.to_string(),
                shards_for(n).to_string(),
                choice.name().to_owned(),
                fmt_ci(&contacts, 0),
                fmt_ci(&peak, 0),
                fmt_ci(&fresh, 3),
                fmt_ci(&overhead, 2),
            ];
            if show_wall {
                let wall: Vec<f64> = points.iter().map(|p| p.wall).collect();
                row.push(fmt_ci(&wall, 2));
            }
            table.row(row);
        }
    }
    table.print();
    println!(
        "\n(expected shape: contacts grow ~linearly with nodes — uniform \
         per-shard rates over fixed-size shards — while peak residency \
         tracks the shard count plus the driver's overlap window, staying \
         orders of magnitude below the stream volume; that gap is the \
         memory model that lets one process sweep 10⁵+ nodes. Epidemic \
         flooding keeps freshness high at every size but its per-member \
         cost grows with the contact volume; the tree scheme stays cheap \
         but starves when uniform mixing gives it no usable pairwise \
         rates — the regime the paper's community traces avoid)"
    );
}

/// Runs the `--headline` point with the legacy parameters.
pub fn run_headline() {
    run_headline_with(&Params::legacy());
}

/// Runs the `--headline` point: 10⁶ nodes, one simulated hour, one seed,
/// the hierarchical scheme, on the parallel pipeline (at least one
/// generator thread — the headline exists to exercise the sharded
/// engine at full scale).
pub fn run_headline_with(params: &Params) {
    banner(
        "E15",
        "headline: one million nodes (window-barrier pipeline)",
    );
    let headline_nodes = params.headline_nodes;
    let threads = params.threads.max(1);
    let seed = params.seeds.first().copied().unwrap_or(11);
    println!(
        "nodes {headline_nodes}, shards {}, span {:.1} h, {threads} generator thread(s), seed {seed}\n",
        shards_for(headline_nodes),
        span_for(headline_nodes).as_secs() / 3600.0
    );
    let p = run_point_with(
        headline_nodes,
        SchemeChoice::Hierarchical,
        seed,
        threads,
        params.window(),
    );
    let mut table = Table::new(vec![
        "nodes",
        "contacts",
        "peak resident",
        "mean freshness",
        "transmissions",
    ]);
    let mut row = vec![
        headline_nodes.to_string(),
        p.stats.contacts_total.to_string(),
        p.stats.peak_resident.to_string(),
        format!("{:.3}", p.report.mean_freshness),
        p.report.transmissions.to_string(),
    ];
    if params.show_wall {
        table = Table::new(vec![
            "nodes",
            "contacts",
            "peak resident",
            "mean freshness",
            "transmissions",
            "wall (s)",
        ]);
        row.push(format!("{:.2}", p.wall));
    }
    table.row(row);
    table.print();
    println!(
        "\n(the resident set stays O(shards + one barrier window) while the \
         stream runs to millions of contacts — the intra-seed sharded \
         engine's memory model at its design size)"
    );
}
