//! E10 — Routing-substrate sanity: classic DTN protocols on both traces
//! (the background the opportunistic data-access stack assumes).

use omn_contacts::synth::presets::TracePreset;
use omn_net::routing::{
    DirectDelivery, Epidemic, FirstContact, Prophet, RoutingProtocol, SprayAndWait,
};
use omn_net::{workload, NetworkSimulator, SimConfig};
use omn_sim::RngFactory;

use crate::experiments::trace_for;
use crate::{banner, fmt_ci, Table, SEEDS};

/// Runs E10: delivery ratio, mean delay and overhead ratio for each
/// protocol on each trace.
pub fn run() {
    banner("E10", "routing baselines (substrate sanity)");
    for preset in TracePreset::ALL {
        println!("\ntrace: {preset}");
        let mut table = Table::new([
            "protocol",
            "delivery ratio",
            "mean delay (h)",
            "tx per delivery",
        ]);

        type ProtocolFactory = fn() -> Box<dyn RoutingProtocol>;
        let protocols: [(&str, ProtocolFactory); 5] = [
            ("epidemic", || Box::new(Epidemic::new())),
            ("spray-and-wait (L=8)", || Box::new(SprayAndWait::new(8))),
            ("prophet", || Box::new(Prophet::new())),
            ("first-contact", || Box::new(FirstContact::new())),
            ("direct", || Box::new(DirectDelivery::new())),
        ];

        for (name, make) in protocols {
            let mut ratio = Vec::new();
            let mut delay = Vec::new();
            let mut overhead = Vec::new();
            for &seed in &SEEDS {
                let trace = trace_for(preset, seed);
                let demands = workload::uniform_unicast(&trace, 200, &RngFactory::new(seed));
                let mut protocol = make();
                let report = NetworkSimulator::new(SimConfig::default()).run(
                    &trace,
                    protocol.as_mut(),
                    &demands,
                );
                ratio.push(report.delivery_ratio());
                if let Some(d) = report.mean_delay() {
                    delay.push(d / 3600.0);
                }
                if let Some(o) = report.overhead_ratio() {
                    overhead.push(o);
                }
            }
            table.row([
                name.to_owned(),
                fmt_ci(&ratio, 3),
                fmt_ci(&delay, 2),
                fmt_ci(&overhead, 1),
            ]);
        }
        table.print();
    }
    println!(
        "\n(expected shape: epidemic best delivery/delay at highest \
         overhead; spray-and-wait near-epidemic delivery at bounded \
         overhead; direct worst delivery, overhead exactly 1)"
    );
}
