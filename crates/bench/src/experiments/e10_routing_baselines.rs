//! E10 — Routing-substrate sanity: classic DTN protocols on both traces
//! (the background the opportunistic data-access stack assumes), with
//! delivery under transmission loss and node churn alongside the
//! fault-free baseline (faults injected through the shared
//! [`ContactDriver`](omn_contacts::ContactDriver)).

use omn_contacts::faults::{DowntimeConfig, FaultConfig};
use omn_contacts::synth::presets::TracePreset;
use omn_net::routing::{
    DirectDelivery, Epidemic, FirstContact, Prophet, RoutingProtocol, SprayAndWait,
};
use omn_net::{workload, NetworkSimulator, SimConfig};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::trace_for;
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

/// Parameters of E10: the unicast workload and the fault columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace presets, one table each.
    pub presets: Vec<TracePreset>,
    /// Unicast messages per run.
    pub messages: usize,
    /// Transmission-loss probability of the loss column.
    pub loss: f64,
    /// Churned node fraction of the churn column.
    pub churn: f64,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            presets: TracePreset::ALL.to_vec(),
            messages: 200,
            loss: 0.2,
            churn: 0.25,
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            presets: plan.presets(),
            messages: plan.scalar_usize_or("messages", 200),
            loss: plan.scalar_or("loss", 0.2),
            churn: plan.scalar_or("churn", 0.25),
            seeds: plan.seeds().to_vec(),
        }
    }
}

fn loss_faults(loss: f64) -> FaultConfig {
    FaultConfig {
        transmission_loss: loss,
        ..FaultConfig::default()
    }
}

fn churn_faults(churn: f64) -> FaultConfig {
    FaultConfig {
        downtime: Some(DowntimeConfig {
            node_fraction: churn,
            mean_uptime: SimDuration::from_hours(18.0),
            mean_downtime: SimDuration::from_hours(6.0),
            exempt: None,
        }),
        ..FaultConfig::default()
    }
}

/// Runs E10 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E10 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E10: delivery ratio, mean delay and overhead ratio for each
/// protocol on each trace, plus delivery under transmission loss and node
/// churn.
pub fn run_with(params: &Params) {
    banner("E10", "routing baselines (substrate sanity)");
    let seeds = &params.seeds;
    for &preset in &params.presets {
        println!("\ntrace: {preset}");
        let mut table = Table::new([
            "protocol".to_owned(),
            "delivery ratio".to_owned(),
            "mean delay (h)".to_owned(),
            "tx per delivery".to_owned(),
            format!("delivery ({:.0}% loss)", params.loss * 100.0),
            format!("delivery ({:.0}% churn)", params.churn * 100.0),
        ]);

        type ProtocolFactory = fn() -> Box<dyn RoutingProtocol>;
        let protocols: [(&str, ProtocolFactory); 5] = [
            ("epidemic", || Box::new(Epidemic::new())),
            ("spray-and-wait (L=8)", || Box::new(SprayAndWait::new(8))),
            ("prophet", || Box::new(Prophet::new())),
            ("first-contact", || Box::new(FirstContact::new())),
            ("direct", || Box::new(DirectDelivery::new())),
        ];

        for (name, make) in protocols {
            let mut ratio = Vec::new();
            let mut delay = Vec::new();
            let mut overhead = Vec::new();
            let mut lossy = Vec::new();
            let mut churned = Vec::new();
            let per = per_seed(seeds, |seed| {
                let factory = RngFactory::new(seed);
                let trace = trace_for(preset, seed);
                let demands = workload::uniform_unicast(&trace, params.messages, &factory)
                    .expect("routing trace has enough nodes");
                let run_with = |faults: Option<FaultConfig>| {
                    let mut protocol = make();
                    NetworkSimulator::new(SimConfig {
                        faults,
                        ..SimConfig::default()
                    })
                    .run_seeded(&trace, protocol.as_mut(), &demands, &factory)
                };
                let clean = run_with(None);
                let loss = run_with(Some(loss_faults(params.loss)));
                let churn = run_with(Some(churn_faults(params.churn)));
                (
                    clean.delivery_ratio(),
                    clean.mean_delay(),
                    clean.overhead_ratio(),
                    loss.delivery_ratio(),
                    churn.delivery_ratio(),
                )
            });
            for (r, d, o, l, c) in per {
                ratio.push(r);
                if let Some(d) = d {
                    delay.push(d / 3600.0);
                }
                if let Some(o) = o {
                    overhead.push(o);
                }
                lossy.push(l);
                churned.push(c);
            }
            table.row([
                name.to_owned(),
                fmt_ci(&ratio, 3),
                fmt_ci(&delay, 2),
                fmt_ci(&overhead, 1),
                fmt_ci(&lossy, 3),
                fmt_ci(&churned, 3),
            ]);
        }
        table.print();
    }
    println!(
        "\n(expected shape: epidemic best delivery/delay at highest \
         overhead; spray-and-wait near-epidemic delivery at bounded \
         overhead; direct worst delivery, overhead exactly 1. Under loss, \
         multi-copy protocols degrade gracefully — every later contact is a \
         retry — while single-copy handoffs suffer; churn removes whole \
         contact opportunities and hits everything)"
    );
}
