//! E10 — Routing-substrate sanity: classic DTN protocols on both traces
//! (the background the opportunistic data-access stack assumes), with
//! delivery under transmission loss and node churn alongside the
//! fault-free baseline (faults injected through the shared
//! [`ContactDriver`](omn_contacts::ContactDriver)).

use omn_contacts::faults::{DowntimeConfig, FaultConfig};
use omn_contacts::synth::presets::TracePreset;
use omn_net::routing::{
    DirectDelivery, Epidemic, FirstContact, Prophet, RoutingProtocol, SprayAndWait,
};
use omn_net::{workload, NetworkSimulator, SimConfig};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::trace_for;
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

fn loss_faults() -> FaultConfig {
    FaultConfig {
        transmission_loss: 0.2,
        ..FaultConfig::default()
    }
}

fn churn_faults() -> FaultConfig {
    FaultConfig {
        downtime: Some(DowntimeConfig {
            node_fraction: 0.25,
            mean_uptime: SimDuration::from_hours(18.0),
            mean_downtime: SimDuration::from_hours(6.0),
            exempt: None,
        }),
        ..FaultConfig::default()
    }
}

/// Runs E10: delivery ratio, mean delay and overhead ratio for each
/// protocol on each trace, plus delivery under 20% transmission loss and
/// 25% node churn.
pub fn run() {
    banner("E10", "routing baselines (substrate sanity)");
    let seeds = active_seeds();
    for preset in TracePreset::ALL {
        println!("\ntrace: {preset}");
        let mut table = Table::new([
            "protocol",
            "delivery ratio",
            "mean delay (h)",
            "tx per delivery",
            "delivery (20% loss)",
            "delivery (25% churn)",
        ]);

        type ProtocolFactory = fn() -> Box<dyn RoutingProtocol>;
        let protocols: [(&str, ProtocolFactory); 5] = [
            ("epidemic", || Box::new(Epidemic::new())),
            ("spray-and-wait (L=8)", || Box::new(SprayAndWait::new(8))),
            ("prophet", || Box::new(Prophet::new())),
            ("first-contact", || Box::new(FirstContact::new())),
            ("direct", || Box::new(DirectDelivery::new())),
        ];

        for (name, make) in protocols {
            let mut ratio = Vec::new();
            let mut delay = Vec::new();
            let mut overhead = Vec::new();
            let mut lossy = Vec::new();
            let mut churned = Vec::new();
            let per = per_seed(&seeds, |seed| {
                let factory = RngFactory::new(seed);
                let trace = trace_for(preset, seed);
                let demands = workload::uniform_unicast(&trace, 200, &factory)
                    .expect("routing trace has enough nodes");
                let run_with = |faults: Option<FaultConfig>| {
                    let mut protocol = make();
                    NetworkSimulator::new(SimConfig {
                        faults,
                        ..SimConfig::default()
                    })
                    .run_seeded(&trace, protocol.as_mut(), &demands, &factory)
                };
                let clean = run_with(None);
                let loss = run_with(Some(loss_faults()));
                let churn = run_with(Some(churn_faults()));
                (
                    clean.delivery_ratio(),
                    clean.mean_delay(),
                    clean.overhead_ratio(),
                    loss.delivery_ratio(),
                    churn.delivery_ratio(),
                )
            });
            for (r, d, o, l, c) in per {
                ratio.push(r);
                if let Some(d) = d {
                    delay.push(d / 3600.0);
                }
                if let Some(o) = o {
                    overhead.push(o);
                }
                lossy.push(l);
                churned.push(c);
            }
            table.row([
                name.to_owned(),
                fmt_ci(&ratio, 3),
                fmt_ci(&delay, 2),
                fmt_ci(&overhead, 1),
                fmt_ci(&lossy, 3),
                fmt_ci(&churned, 3),
            ]);
        }
        table.print();
    }
    println!(
        "\n(expected shape: epidemic best delivery/delay at highest \
         overhead; spray-and-wait near-epidemic delivery at bounded \
         overhead; direct worst delivery, overhead exactly 1. Under loss, \
         multi-copy protocols degrade gracefully — every later contact is a \
         retry — while single-copy handoffs suffer; churn removes whole \
         contact opportunities and hits everything)"
    );
}
