//! E18 — async node runtime: DES cross-validation and message throughput
//! (extension).
//!
//! The sans-io extraction's end-to-end check. One [`NodeProtocol`] core
//! drives two executions: the discrete-event simulator (every experiment
//! above) and the async node runtime in `omn-node`, where each node is a
//! task on a hand-rolled executor and every exchange crosses a real
//! serialized `omn-net` wire frame. In lockstep mode the runtime replays
//! the same contact trace, so every observable the paper's evaluation
//! reads must coincide *exactly* — the final per-node version vector, the
//! time-weighted freshness ratio (bit-identical), transmission totals and
//! their per-node attribution, and replica counts — with zero invariant
//! violations on either side.
//!
//! The second leg lets the runtime free-run ("firehose" mode): link-ups
//! are announced to both endpoints as they happen, and the sweep measures
//! wire-message throughput and wall-clock while the node count scales to
//! 10⁴ async tasks over the E15 sharded community generator.
//!
//! [`NodeProtocol`]: omn_core::protocol::NodeProtocol

use std::collections::HashMap;
use std::time::Instant;

use omn_contacts::synth::sharded::ShardedCommunitySource;
use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_contacts::{ContactGraph, ContactTrace, NodeId, TraceSource};
use omn_core::hierarchy::HierarchyStrategy;
use omn_core::protocol::ProtocolMode;
use omn_core::scheme::{
    EpidemicRefresh, HierarchicalConfig, HierarchicalScheme, PlanningMode, RefreshScheme,
};
use omn_core::sim::{FreshnessConfig, FreshnessReport, FreshnessSimulator};
use omn_core::RefreshHierarchy;
use omn_node::{run_firehose, run_lockstep, FirehoseReport, RuntimeConfig, RuntimeReport};
use omn_sim::{OracleMode, RngFactory, SimDuration};

use crate::experiments::e15_scalability::scale_config;
use crate::scenario::{CampaignPlan, PairwiseWorld, RunLeg, WorldSpec};
use crate::{active_nodes, active_seeds, banner, Table};

/// Node counts for the firehose throughput sweep (`--nodes` overrides).
pub const THROUGHPUT_NODES: [usize; 3] = [1000, 3162, 10_000];

/// Cross-validation world: pairwise-exponential, comfortably larger than
/// the tier-1 test world but still seconds per point in lockstep.
const WORLD_NODES: usize = 32;

/// Parameters of E18: the cross-validation world and the two legs.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// The pairwise-exponential cross-validation world. Its `world_seed`
    /// is ignored — every replication reseeds the whole world from the
    /// `[run]` seed so the DES and runtime draw identical streams.
    pub world: PairwiseWorld,
    /// Which legs run: lockstep cross-validation, firehose throughput.
    pub legs: Vec<RunLeg>,
    /// Node counts of the firehose throughput sweep.
    pub nodes: Vec<usize>,
    /// Replication seeds of the lockstep leg.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            // PairwiseConfig::new defaults: shape 0.8, 6-hour mean
            // interval. The spec must carry the same values to stay
            // bit-identical.
            world: PairwiseWorld {
                nodes: WORLD_NODES,
                span_days: 2.0,
                mean_interval_secs: 21_600.0,
                rate_shape: 0.8,
                world_seed: 0,
            },
            legs: vec![RunLeg::Lockstep, RunLeg::Firehose],
            nodes: active_nodes(&THROUGHPUT_NODES),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes (the planner
    /// guarantees a pairwise world for `runtime`).
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        let legacy = Params::legacy();
        let world = match &plan.spec.world {
            WorldSpec::Pairwise(w) => w.clone(),
            _ => legacy.world,
        };
        Params {
            world,
            legs: plan.legs_or(&legacy.legs),
            nodes: plan.axis_usize_or("nodes", &THROUGHPUT_NODES),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Refresh period of both executions.
fn period() -> SimDuration {
    SimDuration::from_hours(6.0)
}

fn world_from(w: &PairwiseWorld, seed: u64) -> (ContactTrace, RngFactory) {
    let factory = RngFactory::new(seed);
    let config = PairwiseConfig::new(w.nodes, SimDuration::from_days(w.span_days))
        .mean_rate(1.0 / w.mean_interval_secs)
        .rate_shape(w.rate_shape);
    (generate_pairwise(&config, &factory), factory)
}

fn des_config() -> FreshnessConfig {
    FreshnessConfig {
        refresh_period: period(),
        query_count: 0,
        lifetime: None,
        // Campaign mode explicitly (not from the environment): the
        // cross-validation asserts on both oracle reports.
        oracle_mode: OracleMode::Campaign,
        ..FreshnessConfig::default()
    }
}

fn runtime_config(mode: ProtocolMode) -> RuntimeConfig {
    RuntimeConfig {
        oracle_mode: OracleMode::Campaign,
        ..RuntimeConfig::new(mode, period())
    }
}

/// One cross-validated (seed, mode) point: the same world run through the
/// DES and through the async runtime in lockstep.
#[derive(Debug)]
pub struct CrossPoint {
    /// The DES execution's report.
    pub des: FreshnessReport,
    /// The async runtime's report.
    pub rt: RuntimeReport,
}

/// Runs one cross-validation point on the legacy world.
#[must_use]
pub fn cross_point(seed: u64, mode: ProtocolMode) -> CrossPoint {
    cross_point_in(&Params::legacy().world, seed, mode)
}

/// Runs one cross-validation point. For [`ProtocolMode::HierTree`] the
/// runtime is handed the same GreedySed tree the DES scheme builds at
/// `on_start` (same root, members, oracle contact graph, and RNG stream),
/// so both executions refresh along identical paths.
#[must_use]
pub fn cross_point_in(w: &PairwiseWorld, seed: u64, mode: ProtocolMode) -> CrossPoint {
    let (trace, factory) = world_from(w, seed);
    let sim = FreshnessSimulator::new(des_config());
    let (root, members) = sim.select_roles(&trace);

    let mut scheme: Box<dyn RefreshScheme> = match mode {
        ProtocolMode::HierTree => Box::new(HierarchicalScheme::new(HierarchicalConfig {
            strategy: HierarchyStrategy::GreedySed { fanout: Some(3) },
            replication: None,
            max_relays: 3,
            rebuild_every: None,
            reparent: false,
            planning: PlanningMode::Oracle,
            resilience: None,
        })),
        ProtocolMode::Epidemic => Box::new(EpidemicRefresh::new()),
    };
    let des = sim.run_with_roles(&trace, root, &members, scheme.as_mut(), &factory);

    let tree = match mode {
        ProtocolMode::HierTree => Some(RefreshHierarchy::build(
            root,
            &members,
            &ContactGraph::from_trace(&trace),
            HierarchyStrategy::GreedySed { fanout: Some(3) },
            &mut factory.stream("scheme"),
        )),
        ProtocolMode::Epidemic => None,
    };
    let rt = run_lockstep(
        TraceSource::new(&trace),
        root,
        &members,
        tree.as_ref(),
        &runtime_config(mode),
        &factory,
    );
    CrossPoint { des, rt }
}

/// Asserts the exact-equality contract of a cross-validation point.
///
/// # Panics
///
/// Panics on any divergence: version vectors, bit-level mean freshness,
/// transmission totals or their per-node attribution, replica counts, a
/// dirty oracle report on either side, or a wire frame that failed to
/// decode.
pub fn assert_cross(point: &CrossPoint, label: &str) {
    let CrossPoint { des, rt } = point;
    let des_versions: HashMap<NodeId, u64> = des.final_member_versions.iter().copied().collect();
    let rt_versions: HashMap<NodeId, u64> = rt.final_member_versions.iter().copied().collect();
    assert_eq!(
        rt_versions, des_versions,
        "{label}: final per-node version vectors diverge"
    );
    assert_eq!(
        rt.mean_freshness.to_bits(),
        des.mean_freshness.to_bits(),
        "{label}: mean freshness diverges ({} vs {})",
        rt.mean_freshness,
        des.mean_freshness
    );
    assert_eq!(
        rt.version_count, des.version_count,
        "{label}: version counts diverge"
    );
    assert_eq!(
        rt.transmissions, des.transmissions,
        "{label}: transmission totals diverge"
    );
    assert_eq!(
        rt.per_node_transmissions, des.per_node_transmissions,
        "{label}: per-node transmission loads diverge"
    );
    assert_eq!(rt.replicas, des.replicas, "{label}: replica counts diverge");
    assert_eq!(rt.decode_errors, 0, "{label}: wire frames failed to decode");
    assert!(
        rt.oracle.is_clean(),
        "{label}: runtime oracle violations: {:?}",
        rt.oracle
    );
    assert!(
        des.oracle.is_clean(),
        "{label}: DES oracle violations: {:?}",
        des.oracle
    );
}

/// Runs one firehose throughput point: `nodes` async node tasks over one
/// simulated day of the E15 sharded community generator, epidemic mode
/// (the traffic upper bound), root `0` with the evaluation's 8 caching
/// members.
#[must_use]
pub fn throughput_point(nodes: usize, seed: u64) -> FirehoseReport {
    let cfg = scale_config(nodes);
    let factory = RngFactory::new(seed);
    let members: Vec<NodeId> = (1..=8).map(NodeId).collect();
    run_firehose(
        ShardedCommunitySource::new(&cfg, &factory),
        NodeId(0),
        &members,
        &runtime_config(ProtocolMode::Epidemic),
    )
}

/// Runs E18 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E18 as described by a compiled scenario plan (`[run] legs`
/// selects which of the lockstep / firehose legs execute).
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E18: the lockstep cross-validation over the active seeds for both
/// locally-decidable protocol modes, then the firehose throughput sweep —
/// each leg gated by `params.legs`.
///
/// # Panics
///
/// Panics if any cross-validation point diverges from the DES in any
/// pinned observable, if either side records an invariant violation, or
/// if the firehose runs drop or fail to decode any wire frame.
pub fn run_with(params: &Params) {
    banner(
        "E18",
        "async node runtime: DES cross-validation + throughput (extension)",
    );
    let w = &params.world;
    println!(
        "world: {}-node pairwise trace, {} days, {}-hour refresh period\n\
         runtime: one async task per node, serialized omn-net wire frames,\n\
         invariant oracles in campaign mode on both executions\n",
        w.nodes,
        w.span_days,
        period().as_secs() / 3600.0
    );

    if params.legs.contains(&RunLeg::Lockstep) {
        run_lockstep_leg(params);
    }
    if params.legs.contains(&RunLeg::Firehose) {
        run_firehose_leg(params);
    }
}

/// The lockstep cross-validation leg.
fn run_lockstep_leg(params: &Params) {
    let mut table = Table::new([
        "seed",
        "mode",
        "freshness (DES)",
        "freshness (runtime)",
        "tx",
        "replicas",
        "frames rx",
        "violations",
        "match",
    ]);
    let mut points = 0usize;
    for &seed in &params.seeds {
        for (mode, name) in [
            (ProtocolMode::HierTree, "tree"),
            (ProtocolMode::Epidemic, "epidemic"),
        ] {
            let point = cross_point_in(&params.world, seed, mode);
            assert_cross(&point, &format!("seed {seed} {name}"));
            let violations = point.des.oracle.total() + point.rt.oracle.total();
            table.row([
                seed.to_string(),
                name.to_owned(),
                format!("{:.6}", point.des.mean_freshness),
                format!("{:.6}", point.rt.mean_freshness),
                point.rt.transmissions.to_string(),
                point.rt.replicas.to_string(),
                point.rt.messages_received.to_string(),
                violations.to_string(),
                "exact".to_owned(),
            ]);
            points += 1;
        }
    }
    table.print();
    println!(
        "\n(all {points} cross-validation points coincide exactly: identical \
         version vectors, bit-identical mean freshness, identical transmission \
         and replica counts, zero invariant violations)\n"
    );
}

/// The firehose throughput leg.
fn run_firehose_leg(params: &Params) {
    let mut sweep = Table::new([
        "nodes",
        "contacts",
        "births",
        "msgs sent",
        "msgs recv",
        "wall s",
        "msgs/s",
    ]);
    for &nodes in &params.nodes {
        let start = Instant::now();
        let report = throughput_point(nodes, 11);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            report.messages_received, report.messages_sent,
            "{nodes} nodes: the quiesce rounds must drain every in-flight frame"
        );
        assert_eq!(
            report.decode_errors, 0,
            "{nodes} nodes: frames failed to decode"
        );
        sweep.row([
            nodes.to_string(),
            report.contacts.to_string(),
            report.births.to_string(),
            report.messages_sent.to_string(),
            report.messages_received.to_string(),
            format!("{wall:.1}"),
            format!("{:.0}", report.msgs_per_sec()),
        ]);
    }
    sweep.print();
    println!(
        "\n(firehose mode: every link-up announced to both endpoints, every \
         exchange a serialized wire frame; sent == received after quiesce, \
         so no frame was dropped at any scale)"
    );
}
