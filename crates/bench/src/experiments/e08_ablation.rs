//! E8 — Ablations of the design choices DESIGN.md calls out:
//! (a) probabilistic replication on/off,
//! (b) contact-aware vs random hierarchy,
//! (c) fanout bound,
//! (d) distributed maintenance (estimated planning, rebuilds,
//!     re-parenting) vs one-shot oracle planning.

use omn_contacts::estimate::EstimatorKind;
use omn_contacts::synth::presets::TracePreset;
use omn_core::hierarchy::HierarchyStrategy;
use omn_core::scheme::{HierarchicalConfig, HierarchicalScheme, PlanningMode};
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

const FANOUTS: [Option<usize>; 5] = [Some(1), Some(2), Some(3), Some(5), None];

/// Parameters of E8: the ablation preset, fanout ladder, and seeds. The
/// replication/structure/maintenance ablations compare fixed variant
/// pairs, so only the fanout sweep is parameterized.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the ablations run on.
    pub preset: TracePreset,
    /// Fanout bounds swept in ablation (c) (`None` = unbounded).
    pub fanouts: Vec<Option<usize>>,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            fanouts: FANOUTS.to_vec(),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes (axis value `0`
    /// means unbounded fanout).
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        let fanouts = match plan.axis("fanout") {
            Some(values) => values
                .iter()
                .map(|&v| {
                    let f = v as usize;
                    (f > 0).then_some(f)
                })
                .collect(),
            None => FANOUTS.to_vec(),
        };
        Params {
            preset: plan.preset_one(),
            fanouts,
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Runs E8 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E8 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E8 on the configured trace.
pub fn run_with(params: &Params) {
    banner("E8", "ablations");
    let preset = params.preset;
    println!("trace: {preset}");
    replication_ablation(preset, &params.seeds);
    structure_ablation(preset, &params.seeds);
    fanout_ablation(preset, &params.fanouts, &params.seeds);
    maintenance_ablation(preset, &params.seeds);
}

fn measure(
    preset: TracePreset,
    config: FreshnessConfig,
    choice: SchemeChoice,
    seeds: &[u64],
) -> (Vec<f64>, Vec<f64>) {
    per_seed(seeds, |seed| {
        let trace = trace_for(preset, seed);
        let report = FreshnessSimulator::new(config).run(&trace, choice, &RngFactory::new(seed));
        (report.mean_freshness, report.requirement_satisfaction)
    })
    .into_iter()
    .unzip()
}

fn replication_ablation(preset: TracePreset, seeds: &[u64]) {
    println!("\n(a) probabilistic replication:");
    let mut table = Table::new(["variant", "mean freshness", "satisfaction"]);
    for (name, choice) in [
        ("tree + replication", SchemeChoice::Hierarchical),
        ("tree only", SchemeChoice::HierarchicalNoReplication),
    ] {
        let (fresh, sat) = measure(preset, config_for(preset), choice, seeds);
        table.row([name.to_owned(), fmt_ci(&fresh, 3), fmt_ci(&sat, 3)]);
    }
    table.print();
}

fn structure_ablation(preset: TracePreset, seeds: &[u64]) {
    println!("\n(b) contact-aware vs random hierarchy (both without replication):");
    let mut table = Table::new(["variant", "mean freshness", "satisfaction"]);
    for (name, choice) in [
        ("greedy SED tree", SchemeChoice::HierarchicalNoReplication),
        ("random tree", SchemeChoice::RandomTree),
    ] {
        let (fresh, sat) = measure(preset, config_for(preset), choice, seeds);
        table.row([name.to_owned(), fmt_ci(&fresh, 3), fmt_ci(&sat, 3)]);
    }
    table.print();
}

fn fanout_ablation(preset: TracePreset, fanouts: &[Option<usize>], seeds: &[u64]) {
    println!("\n(c) fanout bound (tree + replication):");
    let mut table = Table::new(["fanout", "mean freshness", "satisfaction"]);
    for &fanout in fanouts {
        let config = FreshnessConfig {
            fanout,
            ..config_for(preset)
        };
        let (fresh, sat) = measure(preset, config, SchemeChoice::Hierarchical, seeds);
        let label = fanout.map_or("unbounded".to_owned(), |f| f.to_string());
        table.row([label, fmt_ci(&fresh, 3), fmt_ci(&sat, 3)]);
    }
    table.print();
    println!(
        "(fanout 1 degenerates to a chain — deep and slow; unbounded \
         converges to a star when the source is central)"
    );
}

fn maintenance_ablation(preset: TracePreset, seeds: &[u64]) {
    println!("\n(d) planning knowledge and distributed maintenance:");
    let mut table = Table::new(["variant", "mean freshness", "satisfaction"]);

    let variants: [(&str, HierarchicalConfig); 4] = [
        ("oracle, build once", HierarchicalConfig::default()),
        (
            "estimated, build once",
            HierarchicalConfig {
                planning: PlanningMode::Estimated,
                ..HierarchicalConfig::default()
            },
        ),
        (
            "estimated + rebuilds",
            HierarchicalConfig {
                planning: PlanningMode::Estimated,
                rebuild_every: Some(SimDuration::from_hours(12.0)),
                ..HierarchicalConfig::default()
            },
        ),
        (
            "estimated + rebuilds + reparent",
            HierarchicalConfig {
                planning: PlanningMode::Estimated,
                rebuild_every: Some(SimDuration::from_hours(12.0)),
                reparent: true,
                ..HierarchicalConfig::default()
            },
        ),
    ];

    for (name, mut hconfig) in variants {
        let base = config_for(preset);
        hconfig.strategy = HierarchyStrategy::GreedySed {
            fanout: base.fanout,
        };
        hconfig.replication = Some(base.requirement);
        hconfig.max_relays = base.max_relays;
        let config = FreshnessConfig {
            estimator: EstimatorKind::Cumulative,
            ..base
        };
        let (fresh, sat): (Vec<f64>, Vec<f64>) = per_seed(seeds, |seed| {
            let trace = trace_for(preset, seed);
            let mut scheme = HierarchicalScheme::new(hconfig);
            let report = FreshnessSimulator::new(config).run_scheme(
                &trace,
                &mut scheme,
                &RngFactory::new(seed),
            );
            (report.mean_freshness, report.requirement_satisfaction)
        })
        .into_iter()
        .unzip();
        table.row([name.to_owned(), fmt_ci(&fresh, 3), fmt_ci(&sat, 3)]);
    }
    table.print();
    println!(
        "(estimated planning without rebuilds plans from an empty rate \
         table and should underperform; rebuilds recover most of the oracle \
         gap, re-parenting closes it further between rebuilds)"
    );
}
