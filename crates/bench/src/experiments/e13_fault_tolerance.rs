//! E13 — Fault tolerance: transmission loss and node churn (extension
//! beyond the reconstructed evaluation).
//!
//! Two sweeps over the conference trace, both driven by the deterministic
//! fault layer ([`omn_contacts::faults::FaultPlan`]):
//!
//! 1. **Loss sweep** — every attempted transfer fails i.i.d. with
//!    probability p. Compares the hierarchical scheme with bounded retry
//!    of failed replication handoffs and relay deliveries against the
//!    fail-once ablation and the epidemic upper bound.
//! 2. **Churn sweep** — a fraction of nodes cycles through exponential
//!    up/down periods. Reports freshness for the plain maintained
//!    hierarchy vs. the failure-aware one (retry + failure detector with
//!    re-parenting), plus the recovery observability: rejoin counts, mean
//!    time for a rejoined caching node to regain the current version, and
//!    the detector's suspicion/false-suspicion tallies.

use omn_contacts::faults::{DowntimeConfig, FaultConfig};
use omn_contacts::synth::presets::TracePreset;
use omn_core::scheme::{ResilienceConfig, RetryPolicy};
use omn_core::sim::{FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::scenario::{CampaignPlan, RetrySpec};
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

const LOSS_RATES: [f64; 4] = [0.0, 0.1, 0.2, 0.4];
const CHURN_FRACTIONS: [f64; 3] = [0.0, 0.25, 0.5];

/// Parameters of E13: the loss and churn ladders and the retry policy of
/// the resilient variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the sweeps run on.
    pub preset: TracePreset,
    /// Transmission-loss probabilities of the loss sweep.
    pub loss_rates: Vec<f64>,
    /// Churned node fractions of the churn sweep.
    pub churn_fractions: Vec<f64>,
    /// Retry policy of the retrying variant in the loss sweep.
    pub retry: RetrySpec,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            loss_rates: LOSS_RATES.to_vec(),
            churn_fractions: CHURN_FRACTIONS.to_vec(),
            retry: RetrySpec::Fixed(3),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            preset: plan.preset_one(),
            loss_rates: plan.axis_or("loss", &LOSS_RATES),
            churn_fractions: plan.axis_or("churn", &CHURN_FRACTIONS),
            retry: plan.retry().unwrap_or(RetrySpec::Fixed(3)),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Retry-only resilience: bounded retransmissions, failure detector off.
fn retry_only(policy: RetryPolicy) -> ResilienceConfig {
    ResilienceConfig {
        retry: policy,
        suspect_after_icts: f64::INFINITY,
        ..ResilienceConfig::default()
    }
}

fn loss_sweep(params: &Params) {
    let preset = params.preset;
    println!("-- transmission-loss sweep (mean cache freshness) --\n");
    let mut table = Table::new([
        "loss",
        "hier (no retry)",
        "hier (retry)",
        "epidemic",
        "failed tx",
        "retries",
    ]);

    let seeds = &params.seeds;
    let policy = params.retry.to_policy();
    for &loss in &params.loss_rates {
        let mut plain = Vec::new();
        let mut retry = Vec::new();
        let mut epidemic = Vec::new();
        let mut failed_tx = Vec::new();
        let mut retries = Vec::new();
        let per = per_seed(seeds, |seed| {
            let trace = trace_for(preset, seed);
            let factory = RngFactory::new(seed);
            let mut base = config_for(preset);
            base.faults = Some(FaultConfig {
                transmission_loss: loss,
                ..FaultConfig::default()
            });

            let p = FreshnessSimulator::new(base).run(&trace, SchemeChoice::Hierarchical, &factory);

            base.resilience = Some(retry_only(policy));
            let r = FreshnessSimulator::new(base).run(&trace, SchemeChoice::Hierarchical, &factory);

            base.resilience = None;
            let e = FreshnessSimulator::new(base).run(&trace, SchemeChoice::Epidemic, &factory);
            (
                p.mean_freshness,
                r.mean_freshness,
                r.extras.get("failed-transmissions") as f64,
                (r.extras.get("replication-retries") + r.extras.get("relay-retries")) as f64,
                e.mean_freshness,
            )
        });
        for (p, r, ft, rt, e) in per {
            plain.push(p);
            retry.push(r);
            failed_tx.push(ft);
            retries.push(rt);
            epidemic.push(e);
        }
        table.row([
            format!("{:.0}%", loss * 100.0),
            fmt_ci(&plain, 3),
            fmt_ci(&retry, 3),
            fmt_ci(&epidemic, 3),
            fmt_ci_count(&failed_tx),
            fmt_ci_count(&retries),
        ]);
    }
    table.print();
    println!(
        "\n(expected shape: freshness falls with loss for every scheme; the \
         retry variant holds a margin over the fail-once ablation because a \
         lost replication handoff or relay delivery gets another chance at a \
         later contact instead of being abandoned for that version. Epidemic \
         degrades most gracefully — every contact is a retry opportunity)"
    );
}

fn churn_sweep(params: &Params) {
    let preset = params.preset;
    println!("\n-- node-churn sweep (mean up 18 h, mean down 6 h) --\n");
    let mut table = Table::new([
        "churning",
        "hier (maintained)",
        "hier (failure-aware)",
        "rejoins",
        "recovery (h)",
        "suspected",
        "false susp.",
    ]);

    let seeds = &params.seeds;
    for &frac in &params.churn_fractions {
        let mut plain = Vec::new();
        let mut aware = Vec::new();
        let mut rejoins = Vec::new();
        let mut recovery_h = Vec::new();
        let mut suspected = Vec::new();
        let mut false_susp = Vec::new();
        let per = per_seed(seeds, |seed| {
            let trace = trace_for(preset, seed);
            let factory = RngFactory::new(seed);
            let mut base = config_for(preset);
            base.rebuild_every = Some(SimDuration::from_hours(12.0));
            base.reparent = true;
            // The data source never churns: graceful degradation when other
            // nodes vanish is the point, a dead source stalls everything.
            let (source, _) = FreshnessSimulator::new(base).select_roles(&trace);
            base.faults = Some(FaultConfig {
                downtime: Some(DowntimeConfig {
                    node_fraction: frac,
                    mean_uptime: SimDuration::from_hours(18.0),
                    mean_downtime: SimDuration::from_hours(6.0),
                    exempt: Some(source),
                }),
                ..FaultConfig::default()
            });

            let p = FreshnessSimulator::new(base).run(&trace, SchemeChoice::Hierarchical, &factory);

            base.resilience = Some(ResilienceConfig::default());
            let r = FreshnessSimulator::new(base).run(&trace, SchemeChoice::Hierarchical, &factory);
            (
                p.mean_freshness,
                r.mean_freshness,
                r.extras.get("rejoin-events") as f64,
                r.recovery_delays.mean().unwrap_or(0.0) / 3600.0,
                r.extras.get("suspected-failures") as f64,
                r.extras.get("false-suspicions") as f64,
            )
        });
        for (p, a, rj, rec, su, fs) in per {
            plain.push(p);
            aware.push(a);
            rejoins.push(rj);
            recovery_h.push(rec);
            suspected.push(su);
            false_susp.push(fs);
        }
        table.row([
            format!("{:.0}%", frac * 100.0),
            fmt_ci(&plain, 3),
            fmt_ci(&aware, 3),
            fmt_ci_count(&rejoins),
            fmt_ci(&recovery_h, 1),
            fmt_ci_count(&suspected),
            fmt_ci_count(&false_susp),
        ]);
    }
    table.print();
    println!(
        "\n(expected shape: churn suppresses contacts of down nodes, so \
         freshness falls with the churning fraction; rejoined members take \
         on the order of the refresh period to regain the current version. \
         The failure detector fires on silent neighbors — some suspicions \
         are false when a quiet-but-alive pair simply has a long \
         inter-contact gap, which is why suspicion only re-parents and \
         never evicts)"
    );
}

/// Runs E13 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E13 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E13: the loss sweep, then the churn sweep.
pub fn run_with(params: &Params) {
    banner("E13", "fault tolerance: loss and churn (extension)");
    let preset = params.preset;
    println!("trace: {preset}; faults injected via seeded FaultPlan\n");
    loss_sweep(params);
    churn_sweep(params);
}
