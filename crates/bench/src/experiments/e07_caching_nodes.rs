//! E7 — Scalability with the number of caching nodes: refresh delay and
//! freshness as the caching set grows.

use omn_contacts::synth::presets::TracePreset;
use omn_contacts::temporal;
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, per_seed, Table};

const CACHING_NODES: [usize; 5] = [4, 8, 16, 24, 32];
const SCHEMES: [SchemeChoice; 3] = [
    SchemeChoice::Hierarchical,
    SchemeChoice::SourceOnly,
    SchemeChoice::RandomTree,
];

/// Parameters of E7: the caching-set-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the sweep runs on.
    pub preset: TracePreset,
    /// Caching-set sizes swept.
    pub caching_nodes: Vec<usize>,
    /// Schemes compared at each size.
    pub schemes: Vec<SchemeChoice>,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            caching_nodes: CACHING_NODES.to_vec(),
            schemes: SCHEMES.to_vec(),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            preset: plan.preset_one(),
            caching_nodes: plan.axis_usize_or("caching-nodes", &CACHING_NODES),
            schemes: plan.schemes_or(&SCHEMES),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Runs E7 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E7 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E7: mean and p95 refresh delay (hours) and mean freshness vs
/// caching-set size, with the *oracle* delay bound — the minimum any
/// dissemination scheme could achieve on the same trace, from
/// time-respecting path analysis — as the reference row.
pub fn run_with(params: &Params) {
    banner("E7", "scalability with caching nodes");
    let preset = params.preset;
    println!("trace: {preset}\n");
    let mut table = Table::new([
        "caching nodes",
        "scheme",
        "mean delay (h)",
        "p95 delay (h)",
        "mean freshness",
    ]);
    let seeds = &params.seeds;
    for &c in &params.caching_nodes {
        // Oracle bound: earliest possible arrival of each version at each
        // member via time-respecting contact paths.
        let oracle_mean: Vec<f64> = per_seed(seeds, |seed| {
            let config = FreshnessConfig {
                caching_nodes: c,
                ..config_for(preset)
            };
            let trace = trace_for(preset, seed);
            let sim = FreshnessSimulator::new(config);
            let (source, members) = sim.select_roles(&trace);
            let period = config.refresh_period.as_secs();
            let versions = (trace.span().as_secs() / period) as usize;
            let mut delays = Vec::new();
            for v in 1..versions {
                let birth = omn_sim::SimTime::from_secs(v as f64 * period);
                delays.extend(temporal::oracle_delays(&trace, source, birth, &members));
            }
            (!delays.is_empty()).then(|| delays.iter().sum::<f64>() / delays.len() as f64 / 3600.0)
        })
        .into_iter()
        .flatten()
        .collect();
        table.row([
            c.to_string(),
            "(oracle bound)".to_owned(),
            fmt_ci(&oracle_mean, 2),
            "-".to_owned(),
            "-".to_owned(),
        ]);

        for &choice in &params.schemes {
            let mut mean_d = Vec::new();
            let mut p95_d = Vec::new();
            let mut fresh = Vec::new();
            for mut report in per_seed(seeds, |seed| {
                let config = FreshnessConfig {
                    caching_nodes: c,
                    ..config_for(preset)
                };
                let trace = trace_for(preset, seed);
                FreshnessSimulator::new(config).run(&trace, choice, &RngFactory::new(seed))
            }) {
                if let Some(m) = report.refresh_delays.mean() {
                    mean_d.push(m / 3600.0);
                }
                if let Some(p) = report.refresh_delays.quantile(0.95) {
                    p95_d.push(p / 3600.0);
                }
                fresh.push(report.mean_freshness);
            }
            table.row([
                c.to_string(),
                choice.name().to_owned(),
                fmt_ci(&mean_d, 2),
                fmt_ci(&p95_d, 2),
                fmt_ci(&fresh, 3),
            ]);
        }
    }
    table.print();
    println!(
        "\n(expected shape: source-only delay grows with the caching set \
         as the source serializes all refreshing; the hierarchical scheme's \
         delay grows slowly because load is spread over the tree)"
    );
}
