//! The reconstructed evaluation: one module per experiment.
//!
//! | id | module | paper analogue |
//! |----|--------|----------------|
//! | E1 | [`e01_trace_stats`] | trace summary table |
//! | E2 | [`e02_delay_validation`] | analysis-vs-simulation validation |
//! | E3 | [`e03_freshness_time`] | cache freshness over time |
//! | E4 | [`e04_freshness_requirement`] | freshness vs requirement q |
//! | E5 | [`e05_refresh_period`] | freshness vs refresh period |
//! | E6 | [`e06_overhead`] | overhead comparison |
//! | E7 | [`e07_caching_nodes`] | scalability with caching nodes |
//! | E8 | [`e08_ablation`] | design-choice ablations |
//! | E9 | [`e09_data_access`] | data-access validity (with caching layer) |
//! | E10 | [`e10_routing_baselines`] | routing substrate sanity |
//! | E11 | [`e11_robustness`] | node-departure robustness (extension) |
//! | E12 | [`e12_load_distribution`] | refresh-load distribution |
//! | E13 | [`e13_fault_tolerance`] | loss + churn fault tolerance (extension) |
//! | E14 | [`e14_joint_world`] | joint world: contact-capacity contention (extension) |
//! | E15 | [`e15_scalability`] | scalability with network size: streaming pipeline (extension) |
//! | E16 | [`e16_real_traces`] | real traces: ingestion, calibration, freshness (extension) |
//! | E17 | [`e17_chaos`] | chaos campaign: degradation envelope under adversarial faults (extension) |
//! | E18 | [`e18_runtime`] | async node runtime: DES cross-validation + wire throughput (extension) |
//! | E19 | [`e19_bandwidth`] | bandwidth-realistic links: byte-budget ladder + EWMA placement (extension) |

pub mod e01_trace_stats;
pub mod e02_delay_validation;
pub mod e03_freshness_time;
pub mod e04_freshness_requirement;
pub mod e05_refresh_period;
pub mod e06_overhead;
pub mod e07_caching_nodes;
pub mod e08_ablation;
pub mod e09_data_access;
pub mod e10_routing_baselines;
pub mod e11_robustness;
pub mod e12_load_distribution;
pub mod e13_fault_tolerance;
pub mod e14_joint_world;
pub mod e15_scalability;
pub mod e16_real_traces;
pub mod e17_chaos;
pub mod e18_runtime;
pub mod e19_bandwidth;

use omn_contacts::synth::presets::TracePreset;
use omn_contacts::ContactTrace;
use omn_core::freshness::FreshnessRequirement;
use omn_core::sim::FreshnessConfig;
use omn_sim::{RngFactory, SimDuration};

/// Generates the preset trace for a seed (full-size evaluation traces).
#[must_use]
pub fn trace_for(preset: TracePreset, seed: u64) -> ContactTrace {
    preset.generate(&RngFactory::new(seed))
}

/// The default freshness configuration of the evaluation: 8 caching nodes,
/// 6-hour refresh period, requirement (0.9, 3 h), fanout 3, ≤3 relays.
#[must_use]
pub fn default_config() -> FreshnessConfig {
    FreshnessConfig {
        query_count: 300,
        ..FreshnessConfig::default()
    }
}

/// A shorter refresh period suited to the ~4-day conference trace.
#[must_use]
pub fn config_for(preset: TracePreset) -> FreshnessConfig {
    match preset {
        // The campus trace is sparse (mean pairwise inter-contact ~75 h),
        // so its data refreshes on a multi-day cadence; the conference
        // trace is dense and refreshes every few hours.
        // The requirement deadline equals the refresh period: "receive each
        // version before the next one arrives, with probability q".
        TracePreset::RealityLike => FreshnessConfig {
            refresh_period: SimDuration::from_hours(72.0),
            requirement: FreshnessRequirement::new(0.9, SimDuration::from_hours(72.0)),
            ..default_config()
        },
        TracePreset::InfocomLike => FreshnessConfig {
            refresh_period: SimDuration::from_hours(6.0),
            requirement: FreshnessRequirement::new(0.9, SimDuration::from_hours(6.0)),
            ..default_config()
        },
    }
}
