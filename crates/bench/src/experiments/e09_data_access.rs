//! E9 — Data-access validity with the full stack: the cooperative caching
//! layer decides where items are cached and answers queries; the freshness
//! layer decides whether those answers are *valid* (fresh). A fault sweep
//! re-runs the caching layer under transmission loss and node churn
//! (injected through the shared [`ContactDriver`](omn_contacts::ContactDriver)).

use omn_caching::query::QueryWorkload;
use omn_caching::{AccessReport, CachingConfig, CachingSimulator, Catalog};
use omn_contacts::faults::{DowntimeConfig, FaultConfig};
use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::{FreshnessConfig, FreshnessReport, FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

const SCHEMES: [SchemeChoice; 4] = [
    SchemeChoice::Hierarchical,
    SchemeChoice::SourceOnly,
    SchemeChoice::Epidemic,
    SchemeChoice::NoRefresh,
];

/// Parameters of E9: the caching workload and the fault sweep knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace preset the stack runs on.
    pub preset: TracePreset,
    /// Freshness schemes compared on the cached items.
    pub schemes: Vec<SchemeChoice>,
    /// Catalog size (items).
    pub catalog: usize,
    /// Query count of the Zipf workload.
    pub load: usize,
    /// Transmission-loss probability of the loss fault scenario.
    pub loss: f64,
    /// Churned node fraction of the churn fault scenario.
    pub churn: f64,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            preset: TracePreset::InfocomLike,
            schemes: SCHEMES.to_vec(),
            catalog: 6,
            load: 400,
            loss: 0.2,
            churn: 0.25,
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            preset: plan.preset_one(),
            schemes: plan.schemes_or(&SCHEMES),
            catalog: plan.scalar_usize_or("catalog", 6),
            load: plan.scalar_usize_or("load", 400),
            loss: plan.scalar_or("loss", 0.2),
            churn: plan.scalar_or("churn", 0.25),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// The caching-layer fault scenarios of the sweep: label plus fault
/// configuration (`None` = fault-free baseline).
fn fault_scenarios(params: &Params) -> [(String, Option<FaultConfig>); 3] {
    [
        ("fault-free".to_owned(), None),
        (
            format!("{:.0}% loss", params.loss * 100.0),
            Some(FaultConfig {
                transmission_loss: params.loss,
                ..FaultConfig::default()
            }),
        ),
        (
            format!("{:.0}% churn", params.churn * 100.0),
            Some(FaultConfig {
                downtime: Some(DowntimeConfig {
                    node_fraction: params.churn,
                    mean_uptime: SimDuration::from_hours(18.0),
                    mean_downtime: SimDuration::from_hours(6.0),
                    exempt: None,
                }),
                ..FaultConfig::default()
            }),
        ),
    ]
}

fn caching_run(
    params: &Params,
    seed: u64,
    faults: Option<FaultConfig>,
) -> (AccessReport, Catalog, QueryWorkload) {
    let factory = RngFactory::new(seed);
    let trace = trace_for(params.preset, seed);
    let base = config_for(params.preset);
    let catalog = Catalog::uniform(&trace, params.catalog, base.refresh_period, &factory);
    let queries = QueryWorkload::zipf(&trace, &catalog, params.load, 1.0, &factory);
    let report = CachingSimulator::new(CachingConfig {
        query_deadline: SimDuration::from_hours(12.0),
        faults,
        ..CachingConfig::default()
    })
    .run_seeded(&trace, &catalog, &queries, &factory);
    (report, catalog, queries)
}

/// Runs E9 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E9 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E9: the caching layer computes per-item caching sets and raw
/// access success; each freshness scheme then maintains those sets, and
/// the fresh-access ratio is reported per scheme, averaged over items and
/// seeds. A final table sweeps the caching layer over loss and churn.
pub fn run_with(params: &Params) {
    banner("E9", "data-access validity (caching + freshness stack)");
    let preset = params.preset;
    println!("trace: {preset}\n");
    let seeds = &params.seeds;
    let schemes = &params.schemes;

    // One (access success, per-scheme item means) result per seed.
    type SchemeMeans = Vec<Option<(f64, f64)>>;
    let per: Vec<(f64, SchemeMeans)> = per_seed(seeds, |seed| {
        let factory = RngFactory::new(seed);
        let trace = trace_for(preset, seed);
        let base = config_for(preset);
        let (caching_report, catalog, _) = caching_run(params, seed, None);

        // Freshness layer per scheme, over each item's caching set.
        let per_scheme = schemes
            .iter()
            .map(|&choice| {
                let sim = FreshnessSimulator::new(FreshnessConfig {
                    query_count: 100,
                    ..base
                });
                let reports = sim.run_catalog(
                    &trace,
                    &catalog,
                    &caching_report.cachers_per_item,
                    choice,
                    &factory,
                );
                (!reports.is_empty()).then(|| {
                    let n = reports.len() as f64;
                    let fresh = reports
                        .iter()
                        .map(FreshnessReport::fresh_access_ratio)
                        .sum::<f64>()
                        / n;
                    let service = reports
                        .iter()
                        .map(FreshnessReport::service_ratio)
                        .sum::<f64>()
                        / n;
                    (fresh, service)
                })
            })
            .collect();
        (caching_report.success_ratio(), per_scheme)
    });

    let mut access_sr = Vec::new();
    let mut per_scheme_fresh: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut per_scheme_service: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for (sr, per_scheme) in per {
        access_sr.push(sr);
        for (si, entry) in per_scheme.into_iter().enumerate() {
            if let Some((fresh, service)) = entry {
                per_scheme_fresh[si].push(fresh);
                per_scheme_service[si].push(service);
            }
        }
    }

    println!(
        "caching layer raw query success ratio: {}",
        fmt_ci(&access_sr, 3)
    );
    println!();
    let mut table = Table::new(["freshness scheme", "service ratio", "fresh-access ratio"]);
    for (si, &choice) in schemes.iter().enumerate() {
        table.row([
            choice.name().to_owned(),
            fmt_ci(&per_scheme_service[si], 3),
            fmt_ci(&per_scheme_fresh[si], 3),
        ]);
    }
    table.print();
    println!(
        "\n(expected shape: service ratios are scheme-independent; the \
         *fresh*-access ratio is what freshness maintenance buys — \
         hierarchical close to epidemic, both far above no-refresh)"
    );

    // Fault sweep over the caching layer alone.
    println!("\ncaching layer under faults:");
    let mut fault_table = Table::new([
        "scenario",
        "success ratio",
        "local hits",
        "failed tx",
        "down contacts",
    ]);
    for (label, faults) in fault_scenarios(params) {
        let mut success = Vec::new();
        let mut local = Vec::new();
        let mut failed = Vec::new();
        let mut down = Vec::new();
        for (report, _, _) in per_seed(seeds, |seed| caching_run(params, seed, faults)) {
            success.push(report.success_ratio());
            local.push(report.local_hits as f64);
            failed.push(report.extras.get("failed-transmissions") as f64);
            down.push(report.extras.get("down-contacts") as f64);
        }
        fault_table.row([
            label,
            fmt_ci(&success, 3),
            fmt_ci_count(&local),
            fmt_ci_count(&failed),
            fmt_ci_count(&down),
        ]);
    }
    fault_table.print();
    println!(
        "\n(expected shape: loss lowers success as forwarded copies and \
         responses are dropped mid-path; churn suppresses whole contacts, \
         cutting both placement and query forwarding)"
    );
}
