//! E9 — Data-access validity with the full stack: the cooperative caching
//! layer decides where items are cached and answers queries; the freshness
//! layer decides whether those answers are *valid* (fresh).

use omn_caching::query::QueryWorkload;
use omn_caching::{CachingConfig, CachingSimulator, Catalog};
use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::{FreshnessConfig, FreshnessReport, FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

use crate::experiments::{config_for, trace_for};
use crate::{banner, fmt_ci, Table, SEEDS};

const SCHEMES: [SchemeChoice; 4] = [
    SchemeChoice::Hierarchical,
    SchemeChoice::SourceOnly,
    SchemeChoice::Epidemic,
    SchemeChoice::NoRefresh,
];

/// Runs E9 on the conference trace: the caching layer computes per-item
/// caching sets and raw access success; each freshness scheme then
/// maintains those sets, and the fresh-access ratio is reported per
/// scheme, averaged over items and seeds.
pub fn run() {
    banner("E9", "data-access validity (caching + freshness stack)");
    let preset = TracePreset::InfocomLike;
    println!("trace: {preset}\n");

    let mut access_sr = Vec::new();
    let mut per_scheme_fresh: Vec<Vec<f64>> = vec![Vec::new(); SCHEMES.len()];
    let mut per_scheme_service: Vec<Vec<f64>> = vec![Vec::new(); SCHEMES.len()];

    for &seed in &SEEDS {
        let factory = RngFactory::new(seed);
        let trace = trace_for(preset, seed);
        let base = config_for(preset);

        // Caching layer: place items, serve queries, report caching sets.
        let catalog = Catalog::uniform(&trace, 6, base.refresh_period, &factory);
        let queries = QueryWorkload::zipf(&trace, &catalog, 400, 1.0, &factory);
        let caching_report = CachingSimulator::new(CachingConfig {
            query_deadline: SimDuration::from_hours(12.0),
            ..CachingConfig::default()
        })
        .run(&trace, &catalog, &queries);
        access_sr.push(caching_report.success_ratio());

        // Freshness layer per scheme, over each item's caching set.
        for (si, &choice) in SCHEMES.iter().enumerate() {
            let sim = FreshnessSimulator::new(FreshnessConfig {
                query_count: 100,
                ..base
            });
            let reports = sim.run_catalog(
                &trace,
                &catalog,
                &caching_report.cachers_per_item,
                choice,
                &factory,
            );
            if !reports.is_empty() {
                let n = reports.len() as f64;
                per_scheme_fresh[si].push(
                    reports
                        .iter()
                        .map(FreshnessReport::fresh_access_ratio)
                        .sum::<f64>()
                        / n,
                );
                per_scheme_service[si].push(
                    reports
                        .iter()
                        .map(FreshnessReport::service_ratio)
                        .sum::<f64>()
                        / n,
                );
            }
        }
    }

    println!(
        "caching layer raw query success ratio: {}",
        fmt_ci(&access_sr, 3)
    );
    println!();
    let mut table = Table::new(["freshness scheme", "service ratio", "fresh-access ratio"]);
    for (si, &choice) in SCHEMES.iter().enumerate() {
        table.row([
            choice.name().to_owned(),
            fmt_ci(&per_scheme_service[si], 3),
            fmt_ci(&per_scheme_fresh[si], 3),
        ]);
    }
    table.print();
    println!(
        "\n(expected shape: service ratios are scheme-independent; the \
         *fresh*-access ratio is what freshness maintenance buys — \
         hierarchical close to epidemic, both far above no-refresh)"
    );
}
