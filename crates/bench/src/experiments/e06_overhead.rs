//! E6 — Overhead: transmissions and replicas per scheme, and the
//! freshness-per-transmission trade-off.

use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::{FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

use crate::experiments::{config_for, trace_for};
use crate::scenario::CampaignPlan;
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

/// Parameters of E6: presets × schemes overhead comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Trace presets, one table each.
    pub presets: Vec<TracePreset>,
    /// Schemes, one table row each.
    pub schemes: Vec<SchemeChoice>,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            presets: TracePreset::ALL.to_vec(),
            schemes: SchemeChoice::ALL.to_vec(),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes.
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        Params {
            presets: plan.presets(),
            schemes: plan.schemes_or(&SchemeChoice::ALL),
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// Runs E6 with the legacy parameters.
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E6 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E6 on the configured traces: per scheme, total transmissions,
/// replicas, transmissions per version per caching node, and mean
/// freshness (the trade-off the paper's overhead figure makes).
pub fn run_with(params: &Params) {
    banner("E6", "overhead comparison");
    let seeds = &params.seeds;
    for &preset in &params.presets {
        println!("\ntrace: {preset}");
        let config = config_for(preset);
        let sim = FreshnessSimulator::new(config);
        let mut table = Table::new([
            "scheme",
            "transmissions",
            "replicas",
            "tx/version/node",
            "relay-buffer (copy-h)",
            "mean freshness",
        ]);
        for &choice in &params.schemes {
            let mut tx = Vec::new();
            let mut reps = Vec::new();
            let mut per = Vec::new();
            let mut buf = Vec::new();
            let mut fresh = Vec::new();
            for report in per_seed(seeds, |seed| {
                let trace = trace_for(preset, seed);
                sim.run(&trace, choice, &RngFactory::new(seed))
            }) {
                tx.push(report.transmissions as f64);
                reps.push(report.replicas as f64);
                per.push(report.overhead_per_version_per_member());
                buf.push(report.extras.get("relay-copy-seconds") as f64 / 3600.0);
                fresh.push(report.mean_freshness);
            }
            table.row([
                choice.name().to_owned(),
                fmt_ci_count(&tx),
                fmt_ci_count(&reps),
                fmt_ci(&per, 2),
                fmt_ci_count(&buf),
                fmt_ci(&fresh, 3),
            ]);
        }
        table.print();
    }
    println!(
        "\n(expected shape: epidemic pays O(network) transmissions per \
         version for its freshness; the hierarchical scheme approaches \
         epidemic freshness at a fraction of the transmissions; source-only \
         is cheap but stale)"
    );
}
