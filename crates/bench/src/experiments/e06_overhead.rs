//! E6 — Overhead: transmissions and replicas per scheme, and the
//! freshness-per-transmission trade-off.

use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::{FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

use crate::experiments::{config_for, trace_for};
use crate::{active_seeds, banner, fmt_ci, fmt_ci_count, per_seed, Table};

/// Runs E6 on both traces: per scheme, total transmissions, replicas,
/// transmissions per version per caching node, and mean freshness (the
/// trade-off the paper's overhead figure makes).
pub fn run() {
    banner("E6", "overhead comparison");
    let seeds = active_seeds();
    for preset in TracePreset::ALL {
        println!("\ntrace: {preset}");
        let config = config_for(preset);
        let sim = FreshnessSimulator::new(config);
        let mut table = Table::new([
            "scheme",
            "transmissions",
            "replicas",
            "tx/version/node",
            "relay-buffer (copy-h)",
            "mean freshness",
        ]);
        for &choice in &SchemeChoice::ALL {
            let mut tx = Vec::new();
            let mut reps = Vec::new();
            let mut per = Vec::new();
            let mut buf = Vec::new();
            let mut fresh = Vec::new();
            for report in per_seed(&seeds, |seed| {
                let trace = trace_for(preset, seed);
                sim.run(&trace, choice, &RngFactory::new(seed))
            }) {
                tx.push(report.transmissions as f64);
                reps.push(report.replicas as f64);
                per.push(report.overhead_per_version_per_member());
                buf.push(report.extras.get("relay-copy-seconds") as f64 / 3600.0);
                fresh.push(report.mean_freshness);
            }
            table.row([
                choice.name().to_owned(),
                fmt_ci_count(&tx),
                fmt_ci_count(&reps),
                fmt_ci(&per, 2),
                fmt_ci_count(&buf),
                fmt_ci(&fresh, 3),
            ]);
        }
        table.print();
    }
    println!(
        "\n(expected shape: epidemic pays O(network) transmissions per \
         version for its freshness; the hierarchical scheme approaches \
         epidemic freshness at a fraction of the transmissions; source-only \
         is cheap but stale)"
    );
}
