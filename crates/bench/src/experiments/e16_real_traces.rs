//! E16 — Real traces: ingest the registered datasets (MIT Reality /
//! Haggle-Infocom'06 dumps, or their vendored fixture excerpts), fit the
//! pairwise-exponential model, check the calibrated synthetic stand-in
//! against the real trace (the E1 statistics), and run the freshness
//! campaign on both.
//!
//! Modes:
//!
//! * default — every dataset the built-in registry finds (full files under
//!   `datasets/`, else the fixture excerpts under `tests/data/`; with
//!   neither present the calibrated synthetic presets stand in);
//! * `--trace path [--trace-format name]` — one user-supplied dataset
//!   file, its population and span discovered by a probing pass.

use std::path::{Path, PathBuf};
use std::time::Instant;

use omn_contacts::synth::generate_pairwise;
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::ContactTrace;
use omn_core::freshness::FreshnessRequirement;
use omn_core::sim::{FreshnessConfig, FreshnessReport, FreshnessSimulator, SchemeChoice};
use omn_sim::SimDuration;
use omn_sim::{RngFactory, SimTime};
use omn_traces::{
    calibration_check, ingest_file, probe, registry, Calibration, CalibrationCheck, IngestConfig,
    Ingested, RecordPolicy, TraceFormat,
};

use crate::experiments::default_config;
use crate::scenario::{CampaignPlan, WorldSpec};
use crate::{active_seeds, active_trace, banner, fmt_ci, per_seed, Table, TraceOverride, SEEDS};

/// The schemes compared on every ingested trace.
pub const SCHEMES: [SchemeChoice; 2] = [SchemeChoice::Hierarchical, SchemeChoice::Epidemic];

/// Parameters of E16: which dataset(s) to run.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// One user-supplied dataset file; `None` runs the built-in registry.
    pub trace: Option<TraceOverride>,
    /// Replication seeds.
    pub seeds: Vec<u64>,
}

impl Params {
    /// The hand-written legacy campaign (`--legacy` / direct `run()`).
    #[must_use]
    pub fn legacy() -> Params {
        Params {
            trace: active_trace(),
            seeds: active_seeds(),
        }
    }

    /// The campaign a compiled scenario plan describes (a `[world]` of
    /// `kind = trace` selects one dataset file; `kind = registry` runs
    /// the built-in registry).
    #[must_use]
    pub fn from_plan(plan: &CampaignPlan) -> Params {
        let trace = match &plan.spec.world {
            WorldSpec::TraceFile { path, format } => Some(TraceOverride {
                path: path.clone(),
                format: format.clone(),
            }),
            _ => None,
        };
        Params {
            trace,
            seeds: plan.seeds().to_vec(),
        }
    }
}

/// The repository root the built-in registry is rooted at (fixtures are
/// vendored relative to it).
#[must_use]
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The freshness configuration for an ingested trace, derived from the
/// trace itself so short excerpts and multi-month dumps both exercise
/// several refresh rounds: the refresh period is one eighth of the span
/// (clamped to [1 h, 72 h]) and the caching set is a third of the
/// population (clamped to [2, 8]).
#[must_use]
pub fn campaign_config(trace: &ContactTrace) -> FreshnessConfig {
    let period =
        SimDuration::from_secs((trace.span().as_secs() / 8.0).clamp(3600.0, 72.0 * 3600.0));
    FreshnessConfig {
        caching_nodes: (trace.node_count() / 3).clamp(2, 8),
        refresh_period: period,
        requirement: FreshnessRequirement::new(0.9, period),
        ..default_config()
    }
}

/// One seed's worth of the campaign: the calibration check of the fitted
/// synthetic stand-in, and the freshness reports of both schemes on both
/// worlds.
#[derive(Debug)]
pub struct SeedPoint {
    /// Real-vs-synthetic aggregate statistics.
    pub check: CalibrationCheck,
    /// Freshness reports on the real trace, in [`SCHEMES`] order.
    pub real: [FreshnessReport; 2],
    /// Freshness reports on the fitted synthetic trace, in [`SCHEMES`]
    /// order.
    pub synth: [FreshnessReport; 2],
}

/// Runs one seed: generates the fitted synthetic trace, compares its
/// aggregate statistics against the real one, and runs both schemes on
/// both traces under the same [`campaign_config`].
#[must_use]
pub fn seed_point(real: &ContactTrace, cal: &Calibration, seed: u64) -> SeedPoint {
    let factory = RngFactory::new(seed);
    let synth = generate_pairwise(&cal.preset(), &factory);
    let check = calibration_check(real, &synth);
    let sim = FreshnessSimulator::new(campaign_config(real));
    let run = |trace: &ContactTrace, choice| sim.run(trace, choice, &factory);
    SeedPoint {
        check,
        real: SCHEMES.map(|c| run(real, c)),
        synth: SCHEMES.map(|c| run(&synth, c)),
    }
}

/// Resolves the dump format of a `--trace` file: an explicit
/// `--trace-format` name, or sniffing the file's first lines.
///
/// # Errors
///
/// Returns a usage message for an unknown format name, an unrecognizable
/// file, or an unreadable one.
pub fn resolve_format(path: &Path, name: Option<&str>) -> Result<TraceFormat, String> {
    match name {
        Some(n) => TraceFormat::from_name(n).ok_or_else(|| {
            format!(
                "unknown --trace-format `{n}` (expected one of: {})",
                TraceFormat::ALL.map(TraceFormat::name).join(", ")
            )
        }),
        None => match TraceFormat::sniff(path) {
            Ok(Some(f)) => Ok(f),
            Ok(None) => Err(format!(
                "{}: could not recognize the trace format; pass --trace-format (one of: {})",
                path.display(),
                TraceFormat::ALL.map(TraceFormat::name).join(", ")
            )),
            Err(e) => Err(format!("{}: {e}", path.display())),
        },
    }
}

/// Runs E16 with the legacy parameters (registry datasets by default, or
/// the `--trace` override).
pub fn run() {
    run_with(&Params::legacy());
}

/// Runs E16 as described by a compiled scenario plan.
pub fn run_plan(plan: &CampaignPlan) {
    run_with(&Params::from_plan(plan));
}

/// Runs E16: the one `--trace`/spec-selected dataset, or every registry
/// dataset.
pub fn run_with(params: &Params) {
    banner("E16", "real traces: ingestion, calibration, freshness");
    match &params.trace {
        Some(over) => run_override(over, &params.seeds),
        None => run_registry(&params.seeds),
    }
}

fn run_registry(seeds: &[u64]) {
    let specs = registry(&repo_root());
    if specs.is_empty() {
        println!(
            "no dataset files present (neither datasets/ nor tests/data/); \
             running the calibrated synthetic presets instead\n\
             (see the README for how to obtain the public datasets)"
        );
        for preset in TracePreset::ALL {
            println!("\nsynthetic stand-in: {preset}");
            campaign(&preset.generate_small(&RngFactory::new(SEEDS[0])), seeds);
        }
        return;
    }
    for spec in &specs {
        println!("\ndataset: {} ({})", spec.name, spec.path.display());
        let start = Instant::now();
        match spec.ingest() {
            Ok(ingested) => {
                report_ingestion(&ingested, start.elapsed().as_secs_f64());
                campaign(&ingested.trace, seeds);
            }
            Err(e) => println!("  ingest failed: {e}; skipping"),
        }
    }
}

fn run_override(over: &TraceOverride, seeds: &[u64]) {
    let path = Path::new(&over.path);
    let format = resolve_format(path, over.format.as_deref()).unwrap_or_else(|msg| {
        eprintln!("error: {msg}");
        std::process::exit(2);
    });
    let fail = |stage: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("error: {}: {stage}: {e}", path.display());
        std::process::exit(2);
    };
    println!(
        "\ndataset: --trace override ({}, format {format})",
        path.display()
    );
    let start = Instant::now();
    let found = probe(path, format).unwrap_or_else(|e| fail("probe", &e));
    let span = if found.span.as_secs() > 0.0 {
        found.span
    } else {
        SimTime::from_secs(1.0)
    };
    let config = IngestConfig::new(found.nodes.max(2), span).policy(RecordPolicy::Lenient);
    let ingested = ingest_file(path, format, config).unwrap_or_else(|e| fail("ingest", &e));
    report_ingestion(&ingested, start.elapsed().as_secs_f64());
    campaign(&ingested.trace, seeds);
}

/// Prints the ingestion summary: volume, normalization counters, checksum,
/// and parse throughput (wall-clock, so deliberately not part of any
/// pinned golden).
fn report_ingestion(ingested: &Ingested, wall: f64) {
    let s = ingested.stats;
    println!(
        "  ingested: {} contacts from {} records ({} devices, span {:.2} days, {} bytes, \
         fnv1a64 {:#018x})",
        ingested.trace.len(),
        s.records,
        ingested.nodes_seen,
        ingested.trace.span().as_days(),
        ingested.bytes,
        ingested.checksum,
    );
    println!(
        "  normalization: {} merged, {} dropped ({} malformed, {} out-of-order, {} unmapped, \
         {} past-span), {} clamped",
        s.merged,
        s.dropped(),
        s.malformed,
        s.out_of_order,
        s.unmapped,
        s.past_span,
        s.clamped,
    );
    let mb_s = ingested.bytes as f64 / 1e6 / wall.max(1e-9);
    println!("  parse throughput: {mb_s:.1} MB/s ({wall:.4} s wall)");
}

/// Fits the model, prints the calibration check, and runs the freshness
/// campaign on the real trace and its fitted synthetic stand-in.
fn campaign(real: &ContactTrace, seeds: &[u64]) {
    let cal = Calibration::fit(real);
    println!(
        "  fitted pairwise model: mean rate {:.3e} /s/pair, Gamma shape {:.2}, \
         {:.0}% of pairs observed",
        cal.mean_rate,
        cal.rate_shape,
        cal.pair_coverage * 100.0,
    );
    match cal.ict_ks_exponential {
        Some(ks) => println!(
            "  exponential goodness-of-fit: KS = {ks:.3} over {} normalized inter-contact gaps",
            cal.ict_samples
        ),
        None => println!("  exponential goodness-of-fit: n/a (no pair met three times)"),
    }

    let points = per_seed(seeds, |seed| seed_point(real, &cal, seed));

    let check0 = points[0].check;
    let synth_int: Vec<f64> = points.iter().map(|p| p.check.synth_intensity).collect();
    let ratio: Vec<f64> = points.iter().map(|p| p.check.intensity_ratio).collect();
    let synth_ict: Vec<f64> = points
        .iter()
        .filter_map(|p| p.check.synth_mean_ict)
        .map(|s| s / 3600.0)
        .collect();
    let ks: Vec<f64> = points.iter().filter_map(|p| p.check.ict_ks).collect();
    let dash = "—".to_owned();

    println!("\n  calibration check (E1 statistics, real vs fitted synthetic):");
    let mut table = Table::new(["statistic", "real", "fitted synthetic"]);
    table.row([
        "contacts/node/day".to_owned(),
        format!("{:.2}", check0.real_intensity),
        fmt_ci(&synth_int, 2),
    ]);
    table.row([
        "mean inter-contact (h)".to_owned(),
        check0
            .real_mean_ict
            .map_or_else(|| dash.clone(), |s| format!("{:.2}", s / 3600.0)),
        if synth_ict.is_empty() {
            dash.clone()
        } else {
            fmt_ci(&synth_ict, 2)
        },
    ]);
    table.row([
        "intensity ratio (synth/real)".to_owned(),
        dash.clone(),
        fmt_ci(&ratio, 2),
    ]);
    table.row([
        "inter-contact CDF distance (KS)".to_owned(),
        dash.clone(),
        if ks.is_empty() {
            dash.clone()
        } else {
            fmt_ci(&ks, 3)
        },
    ]);
    table.print();

    println!("\n  freshness campaign (same configuration on both worlds):");
    let mut table = Table::new([
        "world",
        "scheme",
        "mean freshness",
        "satisfaction",
        "tx/version/member",
    ]);
    for (world, pick) in [("real", 0usize), ("fitted synthetic", 1usize)] {
        for (si, choice) in SCHEMES.iter().enumerate() {
            let reports: Vec<&FreshnessReport> = points
                .iter()
                .map(|p| if pick == 0 { &p.real[si] } else { &p.synth[si] })
                .collect();
            let fresh: Vec<f64> = reports.iter().map(|r| r.mean_freshness).collect();
            let sat: Vec<f64> = reports.iter().map(|r| r.requirement_satisfaction).collect();
            let per: Vec<f64> = reports
                .iter()
                .map(|r| r.overhead_per_version_per_member())
                .collect();
            table.row([
                world.to_owned(),
                choice.name().to_owned(),
                fmt_ci(&fresh, 3),
                fmt_ci(&sat, 3),
                fmt_ci(&per, 2),
            ]);
        }
    }
    table.print();
    println!(
        "\n  (expected shape: the fitted synthetic stand-in reproduces the \
         real trace's contact intensity to within a few tens of percent, and \
         the scheme ordering — epidemic freshest, hierarchical close behind \
         at lower overhead — carries over from real to synthetic; a large \
         inter-contact KS distance flags structure, e.g. diurnal cycles, \
         that the pairwise-exponential model cannot express)"
    );
}
