//! Binary wrapper for experiment `e11_robustness`: compiles and executes the
//! committed `specs/e11.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e11", omn_bench::experiments::e11_robustness::run);
}
