//! Binary wrapper for experiment `e11_robustness`.

fn main() {
    omn_bench::experiments::e11_robustness::run();
}
