//! Binary wrapper for experiment `e12_load_distribution`.

fn main() {
    omn_bench::experiments::e12_load_distribution::run();
}
