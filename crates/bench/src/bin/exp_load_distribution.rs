//! Binary wrapper for experiment `e12_load_distribution`: compiles and executes the
//! committed `specs/e12.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e12", omn_bench::experiments::e12_load_distribution::run);
}
