//! Binary wrapper for experiment `e03_freshness_time`.

fn main() {
    omn_bench::experiments::e03_freshness_time::run();
}
