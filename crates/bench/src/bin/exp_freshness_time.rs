//! Binary wrapper for experiment `e03_freshness_time`: compiles and executes the
//! committed `specs/e03.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e03", omn_bench::experiments::e03_freshness_time::run);
}
