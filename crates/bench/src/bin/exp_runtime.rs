//! Binary wrapper for experiment `e18_runtime` (no scenario spec: the
//! runtime benchmark stays a hand-written campaign).

fn main() {
    omn_bench::cli_init();
    omn_bench::experiments::e18_runtime::run();
}
