//! Binary wrapper for experiment `e18_runtime`.

fn main() {
    omn_bench::experiments::e18_runtime::run();
}
