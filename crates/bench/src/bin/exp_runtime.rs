//! Binary wrapper for experiment `e18_runtime`: compiles and executes the
//! committed `specs/e18.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e18", omn_bench::experiments::e18_runtime::run);
}
