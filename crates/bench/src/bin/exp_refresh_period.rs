//! Binary wrapper for experiment `e05_refresh_period`.

fn main() {
    omn_bench::experiments::e05_refresh_period::run();
}
