//! Binary wrapper for experiment `e05_refresh_period`: compiles and executes the
//! committed `specs/e05.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e05", omn_bench::experiments::e05_refresh_period::run);
}
