//! Binary wrapper for experiment `e07_caching_nodes`: compiles and executes the
//! committed `specs/e07.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e07", omn_bench::experiments::e07_caching_nodes::run);
}
