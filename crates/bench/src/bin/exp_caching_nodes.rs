//! Binary wrapper for experiment `e07_caching_nodes`.

fn main() {
    omn_bench::experiments::e07_caching_nodes::run();
}
