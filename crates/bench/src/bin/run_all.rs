//! Runs the complete reconstructed evaluation (E1-E16) in order.
//!
//! Seed replications run in parallel (one thread per seed, merged in seed
//! order — byte-identical to serial). `--seeds a,b,c` overrides the seed
//! set; `--nodes a,b,c` overrides E15's node-count sweep; `--trace path`
//! (with optional `--trace-format name`) points E16 at one dataset file;
//! `--serial` forces sequential execution.

fn main() {
    use omn_bench::experiments as e;
    e::e01_trace_stats::run();
    e::e02_delay_validation::run();
    e::e03_freshness_time::run();
    e::e04_freshness_requirement::run();
    e::e05_refresh_period::run();
    e::e06_overhead::run();
    e::e07_caching_nodes::run();
    e::e08_ablation::run();
    e::e09_data_access::run();
    e::e10_routing_baselines::run();
    e::e11_robustness::run();
    e::e12_load_distribution::run();
    e::e13_fault_tolerance::run();
    e::e14_joint_world::run();
    e::e15_scalability::run();
    e::e16_real_traces::run();
}
