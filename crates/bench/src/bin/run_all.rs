//! Runs the complete reconstructed evaluation (E1-E18) in order.
//!
//! Seed replications run in parallel (one thread per seed, merged in seed
//! order — byte-identical to serial). `--seeds a,b,c` overrides the seed
//! set; `--nodes a,b,c` overrides E15's node-count sweep; `--trace path`
//! (with optional `--trace-format name`) points E16 at one dataset file;
//! `--serial` forces sequential execution.
//!
//! A panicking experiment no longer takes the campaign down with it: each
//! experiment runs under `catch_unwind`, the campaign continues, and the
//! run ends with a per-experiment timing summary. Any failure makes the
//! process exit nonzero, so CI still catches it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

fn main() -> ExitCode {
    use omn_bench::experiments as e;
    let experiments: [(&str, fn()); 18] = [
        ("E1", e::e01_trace_stats::run),
        ("E2", e::e02_delay_validation::run),
        ("E3", e::e03_freshness_time::run),
        ("E4", e::e04_freshness_requirement::run),
        ("E5", e::e05_refresh_period::run),
        ("E6", e::e06_overhead::run),
        ("E7", e::e07_caching_nodes::run),
        ("E8", e::e08_ablation::run),
        ("E9", e::e09_data_access::run),
        ("E10", e::e10_routing_baselines::run),
        ("E11", e::e11_robustness::run),
        ("E12", e::e12_load_distribution::run),
        ("E13", e::e13_fault_tolerance::run),
        ("E14", e::e14_joint_world::run),
        ("E15", e::e15_scalability::run),
        ("E16", e::e16_real_traces::run),
        ("E17", e::e17_chaos::run),
        ("E18", e::e18_runtime::run),
    ];

    let mut timings: Vec<(&str, f64, bool)> = Vec::new();
    let mut failed: Vec<&str> = Vec::new();
    for (id, run) in experiments {
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(run));
        let secs = start.elapsed().as_secs_f64();
        let ok = outcome.is_ok();
        if let Err(payload) = outcome {
            println!(
                "\n!!! {id} FAILED after {secs:.1} s: {}",
                panic_message(&*payload)
            );
            failed.push(id);
        }
        timings.push((id, secs, ok));
    }

    println!("\n=== campaign summary ===");
    for (id, secs, ok) in &timings {
        println!(
            "{id:<4} {secs:>8.1} s  {}",
            if *ok { "ok" } else { "FAILED" }
        );
    }
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!(
            "\n{} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}
