//! Runs the complete reconstructed evaluation (E1-E19) in order.
//!
//! Every experiment executes through the scenario compiler: each
//! campaign's committed `specs/eNN.scn` is compiled (with the
//! process-wide CLI overrides folded in) and dispatched to its campaign
//! driver. `--legacy` runs the hand-written campaigns instead — both
//! paths are byte-identical (the CI spec-equivalence job diffs them).
//!
//! Seed replications run in parallel (one thread per seed, merged in seed
//! order — byte-identical to serial). `--seeds a,b,c` overrides the seed
//! set; `--nodes a,b,c` overrides E15's node-count sweep; `--trace path`
//! (with optional `--trace-format name`) points E16 at one dataset file;
//! `--serial` forces sequential execution.
//!
//! A panicking experiment no longer takes the campaign down with it: each
//! experiment runs under `catch_unwind`, the campaign continues, and the
//! run ends with a per-experiment timing summary (which also records
//! whether the spec or the legacy driver ran). Any failure makes the
//! process exit nonzero, so CI still catches it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

use omn_bench::scenario::{compile_str, embedded, execute};

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// (campaign id, embedded spec name, legacy driver); a `None` spec
/// always runs the hand-written campaign.
type Experiment = (&'static str, Option<&'static str>, fn());

fn main() -> ExitCode {
    use omn_bench::experiments as e;
    let overrides = omn_bench::cli_init();
    let experiments: [Experiment; 19] = [
        ("E1", Some("e01"), e::e01_trace_stats::run),
        ("E2", Some("e02"), e::e02_delay_validation::run),
        ("E3", Some("e03"), e::e03_freshness_time::run),
        ("E4", Some("e04"), e::e04_freshness_requirement::run),
        ("E5", Some("e05"), e::e05_refresh_period::run),
        ("E6", Some("e06"), e::e06_overhead::run),
        ("E7", Some("e07"), e::e07_caching_nodes::run),
        ("E8", Some("e08"), e::e08_ablation::run),
        ("E9", Some("e09"), e::e09_data_access::run),
        ("E10", Some("e10"), e::e10_routing_baselines::run),
        ("E11", Some("e11"), e::e11_robustness::run),
        ("E12", Some("e12"), e::e12_load_distribution::run),
        ("E13", Some("e13"), e::e13_fault_tolerance::run),
        ("E14", Some("e14"), e::e14_joint_world::run),
        ("E15", Some("e15"), e::e15_scalability::run),
        ("E16", Some("e16"), e::e16_real_traces::run),
        ("E17", Some("e17"), e::e17_chaos::run),
        ("E18", Some("e18"), e::e18_runtime::run),
        ("E19", Some("e19"), e::e19_bandwidth::run),
    ];

    let mut timings: Vec<(&str, f64, &str, bool)> = Vec::new();
    let mut failed: Vec<&str> = Vec::new();
    for (id, spec, legacy) in experiments {
        let spec = if overrides.legacy { None } else { spec };
        let mode = if spec.is_some() { "spec" } else { "legacy" };
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| match spec {
            Some(name) => {
                let text = embedded(name).expect("every E1-E17 spec is embedded");
                match compile_str(text, overrides) {
                    Ok(plan) => execute(&plan),
                    Err(err) => panic!("specs/{name}.scn: {err}"),
                }
            }
            None => legacy(),
        }));
        let secs = start.elapsed().as_secs_f64();
        let ok = outcome.is_ok();
        if let Err(payload) = outcome {
            println!(
                "\n!!! {id} FAILED after {secs:.1} s: {}",
                panic_message(&*payload)
            );
            failed.push(id);
        }
        timings.push((id, secs, mode, ok));
    }

    println!("\n=== campaign summary ===");
    for (id, secs, mode, ok) in &timings {
        println!(
            "{id:<4} {secs:>8.1} s  {mode:<6}  {}",
            if *ok { "ok" } else { "FAILED" }
        );
    }
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!(
            "\n{} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}
