//! Binary wrapper for experiment `e14_joint_world`.

fn main() {
    omn_bench::experiments::e14_joint_world::run();
}
