//! Binary wrapper for experiment `e14_joint_world`: compiles and executes the
//! committed `specs/e14.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e14", omn_bench::experiments::e14_joint_world::run);
}
