//! Binary wrapper for experiment `e09_data_access`: compiles and executes the
//! committed `specs/e09.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e09", omn_bench::experiments::e09_data_access::run);
}
