//! Binary wrapper for experiment `e09_data_access`.

fn main() {
    omn_bench::experiments::e09_data_access::run();
}
