//! Binary wrapper for experiment `e01_trace_stats`: compiles and executes the
//! committed `specs/e01.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e01", omn_bench::experiments::e01_trace_stats::run);
}
