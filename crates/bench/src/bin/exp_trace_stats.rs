//! Binary wrapper for experiment `e01_trace_stats`.

fn main() {
    omn_bench::experiments::e01_trace_stats::run();
}
