//! Binary wrapper for experiment `e08_ablation`.

fn main() {
    omn_bench::experiments::e08_ablation::run();
}
