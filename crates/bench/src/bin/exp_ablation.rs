//! Binary wrapper for experiment `e08_ablation`: compiles and executes the
//! committed `specs/e08.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e08", omn_bench::experiments::e08_ablation::run);
}
