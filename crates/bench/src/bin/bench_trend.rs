//! Criterion trend tracking without extra dependencies.
//!
//! Criterion writes each benchmark's statistics to
//! `target/criterion/<name...>/new/estimates.json` after a measured run.
//! This tool walks that tree, extracts every benchmark's mean point
//! estimate (nanoseconds), and compares it against a committed/cached
//! baseline file of `name value` lines:
//!
//! ```text
//! cargo bench -p omn-bench --bench freshness      # measured run
//! cargo run -p omn-bench --bin bench_trend        # compare vs baseline
//! cargo run -p omn-bench --bin bench_trend -- --update   # (re-)record
//! ```
//!
//! A benchmark that got more than `--threshold` percent slower (default
//! 15) fails the comparison with exit code 1; `--warn-only` downgrades
//! that to a warning, which is what CI uses (shared runners are noisy —
//! the trend is advisory there, authoritative on a quiet machine). New
//! and vanished benchmarks are reported but never fail.
//!
//! The JSON extraction is deliberately hand-rolled: the bench crate has no
//! JSON dependency, and the one field needed — `"mean": {"point_estimate":
//! N}` — is stable across Criterion versions.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default regression threshold, percent.
const DEFAULT_THRESHOLD: f64 = 15.0;

fn main() -> ExitCode {
    let mut criterion_dir = PathBuf::from("target/criterion");
    let mut baseline_path = PathBuf::from("crates/bench/bench_baseline.txt");
    let mut threshold = DEFAULT_THRESHOLD;
    let mut update = false;
    let mut warn_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--criterion-dir" => criterion_dir = required(&mut args, "--criterion-dir").into(),
            "--baseline" => baseline_path = required(&mut args, "--baseline").into(),
            "--threshold" => {
                threshold = required(&mut args, "--threshold")
                    .parse()
                    .expect("--threshold takes a percentage")
            }
            "--update" => update = true,
            "--warn-only" => warn_only = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let current = collect_means(&criterion_dir);
    if current.is_empty() {
        eprintln!(
            "no Criterion estimates under {} — run a measured `cargo bench` first \
             (`--test` mode does not produce estimates)",
            criterion_dir.display()
        );
        return ExitCode::FAILURE;
    }
    for (name, mean) in &current {
        println!("{name}: mean {}", fmt_ns(*mean));
    }

    if update {
        let mut out = String::new();
        for (name, mean) in &current {
            out.push_str(&format!("{name} {mean}\n"));
        }
        std::fs::write(&baseline_path, out).expect("write baseline");
        println!("baseline updated: {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => parse_baseline(&s),
        Err(_) => {
            println!(
                "no baseline at {} — record one with --update",
                baseline_path.display()
            );
            return ExitCode::SUCCESS;
        }
    };

    let regressions = compare(&current, &baseline, threshold);
    for line in &regressions {
        eprintln!("REGRESSION: {line}");
    }
    for (name, _) in &current {
        if !baseline.iter().any(|(b, _)| b == name) {
            println!("new benchmark (not in baseline): {name}");
        }
    }
    for (name, _) in &baseline {
        if !current.iter().any(|(c, _)| c == name) {
            println!("benchmark vanished from this run: {name}");
        }
    }

    if regressions.is_empty() {
        println!(
            "no regressions beyond {threshold}% against {}",
            baseline_path.display()
        );
        ExitCode::SUCCESS
    } else if warn_only {
        println!(
            "{} regression(s) beyond {threshold}% (warn-only)",
            regressions.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn required(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| panic!("{flag} requires a value"))
}

/// Walks `dir` for `new/estimates.json` files and returns
/// `(benchmark name, mean point estimate in ns)`, sorted by name. The
/// benchmark name is the path between the criterion root and `new/`,
/// joined with `/` — exactly the `group/function` id Criterion was given.
fn collect_means(dir: &Path) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, f64)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        if path.file_name().is_some_and(|n| n == "new") {
            let estimates = path.join("estimates.json");
            let Ok(json) = std::fs::read_to_string(&estimates) else {
                continue;
            };
            let Some(mean) = extract_mean(&json) else {
                continue;
            };
            let name = dir
                .strip_prefix(root)
                .expect("walk stays under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if !name.is_empty() {
                out.push((name, mean));
            }
        } else {
            walk(root, &path, out);
        }
    }
}

/// Extracts `"mean": {... "point_estimate": N ...}` from Criterion's
/// estimates JSON.
fn extract_mean(json: &str) -> Option<f64> {
    let mean = json.find("\"mean\"")?;
    let rest = &json[mean..];
    let pe = rest.find("\"point_estimate\"")?;
    let after = rest[pe + "\"point_estimate\"".len()..].trim_start();
    let after = after.strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Parses `name value` baseline lines (blank lines and `#` comments
/// allowed).
fn parse_baseline(s: &str) -> Vec<(String, f64)> {
    s.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            Some((name.trim().to_owned(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Returns one description per benchmark whose mean grew more than
/// `threshold` percent over its baseline.
fn compare(current: &[(String, f64)], baseline: &[(String, f64)], threshold: f64) -> Vec<String> {
    let mut out = Vec::new();
    for (name, mean) in current {
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == name) else {
            continue;
        };
        if *base <= 0.0 {
            continue;
        }
        let delta = (mean - base) / base * 100.0;
        if delta > threshold {
            out.push(format!(
                "{name}: {} -> {} (+{delta:.1}%)",
                fmt_ns(*base),
                fmt_ns(*mean)
            ));
        }
    }
    out
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_mean_point_estimate() {
        let json = r#"{"mean":{"confidence_interval":{"confidence_level":0.95,
            "lower_bound":1.0,"upper_bound":3.0},"point_estimate":123456.789,
            "standard_error":1.0},"median":{"point_estimate":9.0}}"#;
        assert_eq!(extract_mean(json), Some(123456.789));
        assert_eq!(extract_mean("{}"), None);
        // Scientific notation survives the scrape.
        assert_eq!(
            extract_mean(r#"{"mean":{"point_estimate":1.5e6}}"#),
            Some(1.5e6)
        );
    }

    #[test]
    fn baseline_round_trips() {
        let parsed = parse_baseline("# comment\nfreshness/a 120.5\n\ncontacts/b 3e4\n");
        assert_eq!(
            parsed,
            vec![
                ("freshness/a".to_owned(), 120.5),
                ("contacts/b".to_owned(), 3e4)
            ]
        );
    }

    #[test]
    fn compare_flags_only_regressions_beyond_threshold() {
        let baseline = vec![
            ("a".to_owned(), 100.0),
            ("b".to_owned(), 100.0),
            ("gone".to_owned(), 100.0),
        ];
        let current = vec![
            ("a".to_owned(), 114.0), // +14% — under threshold
            ("b".to_owned(), 130.0), // +30% — regression
            ("new".to_owned(), 50.0),
        ];
        let regressions = compare(&current, &baseline, 15.0);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].starts_with("b:"), "{}", regressions[0]);
    }

    #[test]
    fn improvements_never_fail() {
        let baseline = vec![("a".to_owned(), 100.0)];
        let current = vec![("a".to_owned(), 20.0)];
        assert!(compare(&current, &baseline, 15.0).is_empty());
    }
}
