//! Binary wrapper for experiment `e17_chaos`.

fn main() {
    omn_bench::experiments::e17_chaos::run();
}
