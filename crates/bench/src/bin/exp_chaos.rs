//! Binary wrapper for experiment `e17_chaos`: compiles and executes the
//! committed `specs/e17.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e17", omn_bench::experiments::e17_chaos::run);
}
