//! Binary wrapper for experiment `e06_overhead`.

fn main() {
    omn_bench::experiments::e06_overhead::run();
}
