//! Binary wrapper for experiment `e06_overhead`: compiles and executes the
//! committed `specs/e06.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e06", omn_bench::experiments::e06_overhead::run);
}
