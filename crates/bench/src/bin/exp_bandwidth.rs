//! Binary wrapper for experiment `e19_bandwidth`: compiles and executes
//! the committed `specs/e19.scn` scenario (`--spec FILE` substitutes
//! another spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e19", omn_bench::experiments::e19_bandwidth::run);
}
