//! Binary wrapper for experiment `e10_routing_baselines`: compiles and executes the
//! committed `specs/e10.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e10", omn_bench::experiments::e10_routing_baselines::run);
}
