//! Binary wrapper for experiment `e10_routing_baselines`.

fn main() {
    omn_bench::experiments::e10_routing_baselines::run();
}
