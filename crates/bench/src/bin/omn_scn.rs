//! `omn-scn` — the scenario-compiler CLI: lint, plan, and run `.scn`
//! specs without going through an `exp_*` wrapper.
//!
//! ```text
//! omn-scn check <path|dir> …    parse + compile every spec; exit 1 on error
//! omn-scn plan <file|name>      print the compiled campaign plan
//! omn-scn run <file|name> [..]  compile and execute one spec
//! omn-scn list                  list the embedded specs
//! ```
//!
//! Positional paths come right after the subcommand; everything from the
//! first `--flag` on is the standard override set (`--seeds`, `--threads`,
//! `--no-wall`, …), applied with the usual `CLI > spec > default`
//! precedence. `plan` and `run` also accept an embedded spec name (`e01`
//! … `e17`) instead of a file path.

use std::path::{Path, PathBuf};
use std::process::exit;

use omn_bench::scenario::{compile_str, embedded, execute, EMBEDDED};
use omn_bench::{cli_init_from, usage, CliOverrides};

const HELP: &str = "usage: omn-scn <subcommand> [paths…] [flags…]\n\
  check <path|dir> …    parse + compile every spec (exit 1 on any error)\n\
  plan  <file|name>     print the compiled campaign plan\n\
  run   <file|name> […]  compile and execute one spec\n\
  list                  list the specs embedded in this binary";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{HELP}");
        exit(2);
    }
    let cmd = args.remove(0);
    // Positionals lead; the tail from the first `--flag` on is overrides.
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let flags = args.split_off(split);
    let paths = args;
    match cmd.as_str() {
        "check" => check(&paths, flags),
        "plan" => plan(&paths, flags),
        "run" => run(&paths, flags),
        "list" => list(&paths),
        other => {
            eprintln!("error: unknown subcommand `{other}`\n{HELP}");
            exit(2);
        }
    }
}

/// Loads a spec argument: a file path, or the name of an embedded spec.
fn load(arg: &str) -> Result<String, String> {
    let path = Path::new(arg);
    if path.is_file() {
        return std::fs::read_to_string(path).map_err(|e| format!("{arg}: {e}"));
    }
    match embedded(arg) {
        Some(text) => Ok(text.to_owned()),
        None => Err(format!(
            "{arg}: no such file, and no embedded spec of that name \
             (try `omn-scn list`)"
        )),
    }
}

/// Expands a `check` argument: a directory becomes its sorted `*.scn`
/// entries, anything else stays itself.
fn expand(arg: &str) -> Result<Vec<PathBuf>, String> {
    let path = Path::new(arg);
    if !path.is_dir() {
        return Ok(vec![path.to_path_buf()]);
    }
    let mut found: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("{arg}: {e}"))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    found.sort();
    if found.is_empty() {
        return Err(format!("{arg}: no .scn files in directory"));
    }
    Ok(found)
}

fn check(paths: &[String], flags: Vec<String>) {
    if paths.is_empty() {
        eprintln!("error: check needs at least one spec file or directory\n{HELP}");
        exit(2);
    }
    let overrides = cli_init_from(flags);
    let mut bad = 0usize;
    for arg in paths {
        let files = match expand(arg) {
            Ok(files) => files,
            Err(msg) => {
                println!("error: {msg}");
                bad += 1;
                continue;
            }
        };
        for file in files {
            let shown = file.display();
            match std::fs::read_to_string(&file) {
                Err(e) => {
                    println!("error: {shown}: {e}");
                    bad += 1;
                }
                Ok(text) => match compile_str(&text, overrides) {
                    Ok(plan) => println!(
                        "ok: {shown} (scenario {}, {} points)",
                        plan.spec.name,
                        plan.points.len()
                    ),
                    Err(err) => {
                        println!("error: {shown}: {err}");
                        bad += 1;
                    }
                },
            }
        }
    }
    if bad > 0 {
        eprintln!("{bad} spec(s) failed to compile");
        exit(1);
    }
}

fn plan(paths: &[String], flags: Vec<String>) {
    let [arg] = paths else {
        eprintln!("error: plan takes exactly one spec file or embedded name\n{HELP}");
        exit(2);
    };
    let overrides = cli_init_from(flags);
    let text = load(arg).unwrap_or_else(|msg| {
        eprintln!("error: {msg}");
        exit(1);
    });
    match compile_str(&text, overrides) {
        Ok(plan) => print!("{}", plan.render_summary()),
        Err(err) => {
            eprintln!("error: {arg}: {err}");
            exit(1);
        }
    }
}

fn run(paths: &[String], flags: Vec<String>) {
    let [arg] = paths else {
        eprintln!("error: run takes exactly one spec file or embedded name\n{HELP}");
        exit(2);
    };
    let overrides = cli_init_from(flags);
    let text = load(arg).unwrap_or_else(|msg| {
        eprintln!("error: {msg}");
        exit(1);
    });
    match compile_str(&text, overrides) {
        Ok(plan) => execute(&plan),
        Err(err) => {
            eprintln!("error: {arg}: {err}");
            exit(1);
        }
    }
}

fn list(paths: &[String]) {
    if !paths.is_empty() {
        eprintln!("error: list takes no arguments\n{HELP}");
        exit(2);
    }
    let overrides = CliOverrides::default();
    for (name, text) in EMBEDDED {
        match compile_str(text, &overrides) {
            Ok(plan) => println!(
                "{name}  {} — {}",
                plan.spec.campaign,
                plan.spec.title.as_deref().unwrap_or("(untitled)")
            ),
            Err(err) => println!("{name}  (broken embedded spec: {err})"),
        }
    }
    // `usage()` is the flag reference shared with every exp_* wrapper.
    println!("\noverride flags (plan/run/check): {}", usage());
}
