//! Binary wrapper for experiment `e16_real_traces`: compiles and executes
//! the committed `specs/e16.scn` scenario (`--spec FILE` substitutes
//! another spec; `--legacy` runs the hand-written campaign instead).
//!
//! `--trace path [--trace-format reality|haggle|omn-v1]` runs the
//! campaign on one dataset file instead of the built-in registry.

fn main() {
    omn_bench::scenario::spec_main("e16", omn_bench::experiments::e16_real_traces::run);
}
