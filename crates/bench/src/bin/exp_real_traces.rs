//! Binary wrapper for experiment `e16_real_traces`.
//!
//! `--trace path [--trace-format reality|haggle|omn-v1]` runs the
//! campaign on one dataset file instead of the built-in registry.

fn main() {
    omn_bench::experiments::e16_real_traces::run();
}
