//! Binary wrapper for experiment `e04_freshness_requirement`.

fn main() {
    omn_bench::experiments::e04_freshness_requirement::run();
}
