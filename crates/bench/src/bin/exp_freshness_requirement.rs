//! Binary wrapper for experiment `e04_freshness_requirement`: compiles and executes the
//! committed `specs/e04.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main(
        "e04",
        omn_bench::experiments::e04_freshness_requirement::run,
    );
}
