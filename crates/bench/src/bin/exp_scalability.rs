//! Binary wrapper for experiment `e15_scalability`.
//!
//! `--headline` runs the single 10⁶-node point instead of the sweep;
//! `--threads n` / `--window-mins m` select the window-barrier parallel
//! pipeline (output is bit-identical to the serial default); `--no-wall`
//! hides wall-clock columns for byte-for-byte diffing.

fn main() {
    if omn_bench::headline_requested() {
        omn_bench::experiments::e15_scalability::run_headline();
    } else {
        omn_bench::experiments::e15_scalability::run();
    }
}
