//! Binary wrapper for experiment `e15_scalability`: compiles and executes
//! the committed `specs/e15.scn` scenario (`--spec FILE` substitutes
//! another spec; `--legacy` runs the hand-written campaign instead).
//!
//! `--headline` runs the single 10⁶-node point instead of the sweep;
//! `--threads n` / `--window-mins m` select the window-barrier parallel
//! pipeline (output is bit-identical to the serial default); `--no-wall`
//! hides wall-clock columns for byte-for-byte diffing.

fn legacy() {
    if omn_bench::headline_requested() {
        omn_bench::experiments::e15_scalability::run_headline();
    } else {
        omn_bench::experiments::e15_scalability::run();
    }
}

fn main() {
    omn_bench::scenario::spec_main("e15", legacy);
}
