//! Binary wrapper for experiment `e15_scalability`.

fn main() {
    omn_bench::experiments::e15_scalability::run();
}
