//! Binary wrapper for experiment `e13_fault_tolerance`: compiles and executes the
//! committed `specs/e13.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e13", omn_bench::experiments::e13_fault_tolerance::run);
}
