//! Binary wrapper for experiment `e13_fault_tolerance`.

fn main() {
    omn_bench::experiments::e13_fault_tolerance::run();
}
