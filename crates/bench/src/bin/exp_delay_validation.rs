//! Binary wrapper for experiment `e02_delay_validation`: compiles and executes the
//! committed `specs/e02.scn` scenario (`--spec FILE` substitutes another
//! spec; `--legacy` runs the hand-written campaign instead).

fn main() {
    omn_bench::scenario::spec_main("e02", omn_bench::experiments::e02_delay_validation::run);
}
