//! Binary wrapper for experiment `e02_delay_validation`.

fn main() {
    omn_bench::experiments::e02_delay_validation::run();
}
