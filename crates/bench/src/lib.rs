//! Experiment harness for the reproduced evaluation.
//!
//! Each experiment (E1–E19; see DESIGN.md for the index) lives in
//! [`experiments`] as a library function that prints the corresponding
//! table or figure series to stdout, and has a thin binary wrapper in
//! `src/bin/`. `run_all` executes the full campaign.
//!
//! Results are averaged over several seeds with normal-approximation 95%
//! confidence intervals, printed as `mean ± hw`. Seed replications run in
//! parallel through [`per_seed`] (one thread per seed, results merged in
//! seed order, byte-identical to a serial run); `--seeds a,b,c` overrides
//! the seed set and `--serial` forces sequential execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod golden;
mod runner;
pub mod scenario;

pub use runner::{
    active_nodes, active_seeds, active_threads, active_trace, active_window_mins, cli_init,
    cli_init_from, headline_requested, overrides, per_seed, serial_requested, usage, wall_hidden,
    CliOverrides, TraceOverride,
};

use omn_sim::stats::mean_ci95;

/// Default seeds for multi-replication experiments.
pub const SEEDS: [u64; 5] = [11, 23, 37, 53, 71];

/// Formats samples as `mean ± half-width` (95% CI).
#[must_use]
pub fn fmt_ci(samples: &[f64], decimals: usize) -> String {
    let (mean, hw) = mean_ci95(samples);
    format!("{mean:.prec$} ± {hw:.prec$}", prec = decimals)
}

/// Formats samples as `mean ± half-width` with engineering-style counts.
#[must_use]
pub fn fmt_ci_count(samples: &[f64]) -> String {
    let (mean, hw) = mean_ci95(samples);
    format!("{mean:.0} ± {hw:.0}")
}

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(row);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Time-average of a step-function timeline over `[a, b]` seconds.
#[must_use]
pub fn window_mean(tl: &omn_sim::metrics::Timeline, a: f64, b: f64) -> f64 {
    let pts = tl.points();
    if pts.is_empty() || b <= a {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut t = a;
    let mut v = tl
        .value_at(omn_sim::SimTime::from_secs(a))
        .unwrap_or(pts[0].1);
    for &(pt, pv) in pts {
        let ts = pt.as_secs();
        if ts <= a {
            continue;
        }
        if ts >= b {
            break;
        }
        acc += v * (ts - t);
        t = ts;
        v = pv;
    }
    acc += v * (b - t);
    acc / (b - a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn ci_formatting() {
        let s = fmt_ci(&[1.0, 1.0, 1.0], 2);
        assert_eq!(s, "1.00 ± 0.00");
        assert_eq!(fmt_ci_count(&[10.0, 10.0]), "10 ± 0");
    }
}
