//! The scenario compiler: declarative spec → validated plan → executed
//! campaign.
//!
//! The evaluation is a matrix of worlds × schemes × fault levels ×
//! metrics. Instead of hard-coding that matrix in per-experiment Rust,
//! each campaign is described by a small declarative `.scn` file under
//! `specs/` and compiled through a three-layer pipeline:
//!
//! 1. **front-end** ([`spec`]) — [`parse`] turns the text into a typed
//!    [`ScenarioSpec`] (world, schemes, fault plan, retry policy,
//!    contention, oracle mode, seeds, matrix sweeps, output selection),
//!    with line/field-numbered [`ScenarioError`] diagnostics and a
//!    canonical [`ScenarioSpec::render`] (parse → render → parse is
//!    idempotent);
//! 2. **planner** ([`plan`]) — [`compile`] validates the spec against its
//!    campaign kind, folds in the process-wide
//!    [`CliOverrides`](crate::CliOverrides) (precedence: CLI > spec >
//!    driver default), and expands the matrix into a [`CampaignPlan`];
//! 3. **executor** ([`exec`]) — [`execute`] drives the existing
//!    simulators (freshness / caching / joint / chaos / streaming) and
//!    the [`per_seed`](crate::per_seed) runner off the plan.
//!
//! Every experiment's legacy constants and its committed spec are pinned
//! equal by the `spec_equivalence` test suite, and the CI
//! spec-equivalence job byte-diffs spec-driven and `--legacy` runs, so
//! `exp_* ≡ omn-scn run specs/eNN.scn` holds bit-for-bit. A brand-new
//! sweep — different seeds, axes, fault ladder, schemes — is a new spec
//! file with zero new Rust.

pub mod exec;
pub mod plan;
pub mod spec;

pub use exec::{compile_str, embedded, execute, run_file, spec_main, EMBEDDED};
pub use plan::{compile, CampaignPlan, PlanPoint};
pub use spec::{
    parse, CampaignKind, ContentionSpec, FaultRung, LinkSpec, MatrixAxis, OutputSpec,
    PairwiseWorld, RetrySpec, RunLeg, RunSpec, ScenarioError, ScenarioSpec, TableFilter, WorldSpec,
};
