//! The scenario planner: validates a parsed [`ScenarioSpec`] against its
//! campaign's requirements, folds in the process-wide [`CliOverrides`]
//! (precedence: CLI > spec > driver default), and expands the matrix into
//! a [`CampaignPlan`] the executor can drive directly.

use crate::runner::CliOverrides;
use crate::SEEDS;

use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::SchemeChoice;

use super::spec::{
    CampaignKind, ContentionSpec, FaultRung, LinkSpec, RetrySpec, RunLeg, ScenarioError,
    ScenarioSpec, WorldSpec,
};

/// One expanded point of the sweep matrix: a coordinate per axis, in the
/// spec's axis order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPoint {
    /// `(axis key, value)` per axis.
    pub coords: Vec<(String, f64)>,
}

impl PlanPoint {
    /// This point's value on the named axis.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<f64> {
        self.coords.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Hard cap on the expanded matrix size — a typo'd axis must not
/// silently schedule a million simulations.
const MAX_POINTS: usize = 100_000;

/// A validated, override-resolved, matrix-expanded campaign: everything
/// the executor needs, with no further environment lookups.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// The resolved spec (CLI overrides already folded into its fields).
    pub spec: ScenarioSpec,
    /// The resolved seed list (CLI `--seeds` > spec `[run] seeds` > the
    /// harness default [`SEEDS`]).
    pub seeds: Vec<u64>,
    /// The cross product of every matrix axis, in row-major axis order.
    pub points: Vec<PlanPoint>,
    /// Generator threads for the parallel contact pipeline (0 = serial).
    pub threads: usize,
    /// Barrier-window override of the parallel pipeline, simulated
    /// minutes.
    pub window_mins: Option<f64>,
    /// Hide wall-clock columns (spec `[output] no-wall` OR CLI
    /// `--no-wall`).
    pub no_wall: bool,
    /// Run the campaign's single large headline point instead of the
    /// sweep (CLI `--headline`).
    pub headline: bool,
}

/// The matrix axes each campaign understands; anything else in
/// `[matrix]` is a spec error (typos must not silently become no-ops).
fn allowed_axes(kind: CampaignKind) -> &'static [&'static str] {
    match kind {
        CampaignKind::TraceStats | CampaignKind::Overhead | CampaignKind::RealTraces => &[],
        CampaignKind::DelayValidation => &["caching-nodes", "refresh-hours", "cdf-max-k"],
        CampaignKind::FreshnessTime => &["points"],
        CampaignKind::FreshnessRequirement => &["q", "max-relays"],
        CampaignKind::RefreshPeriod => &["period-h"],
        CampaignKind::CachingNodes | CampaignKind::LoadDistribution => &["caching-nodes"],
        CampaignKind::Ablation => &["fanout"],
        CampaignKind::DataAccess => &["catalog", "load", "loss", "churn"],
        CampaignKind::RoutingBaselines => &["messages", "loss", "churn"],
        CampaignKind::Robustness => &["departed"],
        CampaignKind::FaultTolerance => &["loss", "churn"],
        CampaignKind::JointWorld => &["catalog", "query-deadline-h"],
        CampaignKind::Scalability => &["nodes", "headline-nodes"],
        CampaignKind::Chaos => &[],
        CampaignKind::Runtime => &["nodes"],
        CampaignKind::Bandwidth => &["catalog", "query-deadline-h", "load"],
    }
}

fn plan_err(field: impl Into<String>, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line: 0,
        field: field.into(),
        message: message.into(),
    }
}

/// Validates the spec for its campaign, applies the override overlay, and
/// expands the matrix.
///
/// # Errors
///
/// Returns a [`ScenarioError`] (field-positioned, line 0 — the text
/// positions are gone after parsing) when the spec's world kind, fault
/// ladder, contention section, or matrix axes don't fit the campaign, or
/// when the matrix cross product explodes past the size cap.
pub fn compile(
    spec: &ScenarioSpec,
    overrides: &CliOverrides,
) -> Result<CampaignPlan, ScenarioError> {
    let mut spec = spec.clone();

    // --- Override overlay (CLI > spec > driver default) ---------------
    if let Some(seeds) = &overrides.seeds {
        spec.run.seeds = Some(seeds.clone());
    }
    if let Some(threads) = overrides.threads {
        spec.run.threads = Some(threads);
    }
    if let Some(mins) = overrides.window_mins {
        spec.run.window_mins = Some(mins);
    }
    if let Some(nodes) = &overrides.nodes {
        let values: Vec<f64> = nodes.iter().map(|&n| n as f64).collect();
        match spec.matrix.iter_mut().find(|a| a.key == "nodes") {
            Some(axis) => axis.values = values,
            None => spec.matrix.push(super::spec::MatrixAxis {
                key: "nodes".to_owned(),
                values,
            }),
        }
    }
    if let Some(trace) = &overrides.trace {
        if spec.campaign == CampaignKind::RealTraces {
            spec.world = WorldSpec::TraceFile {
                path: trace.path.clone(),
                format: trace.format.clone(),
            };
        }
    }
    spec.output.no_wall = spec.output.no_wall || overrides.no_wall;

    // --- Per-campaign validation ---------------------------------------
    let world_name = match &spec.world {
        WorldSpec::Presets(_) => "preset",
        WorldSpec::Pairwise(_) => "pairwise",
        WorldSpec::Sharded => "sharded",
        WorldSpec::Registry => "registry",
        WorldSpec::TraceFile { .. } => "trace",
    };
    let wants = |kinds: &[&str]| -> Result<(), ScenarioError> {
        if kinds.contains(&world_name) {
            Ok(())
        } else {
            Err(plan_err(
                "[world] kind",
                format!(
                    "campaign `{}` needs a {} world, got `{world_name}`",
                    spec.campaign,
                    kinds.join(" or ")
                ),
            ))
        }
    };
    match spec.campaign {
        CampaignKind::DelayValidation => wants(&["pairwise"])?,
        CampaignKind::Scalability => {
            wants(&["sharded"])?;
            if !spec.matrix.iter().any(|a| a.key == "nodes") {
                return Err(plan_err(
                    "[matrix] nodes",
                    "campaign `scalability` needs a `nodes` axis",
                ));
            }
        }
        CampaignKind::RealTraces => wants(&["registry", "trace"])?,
        CampaignKind::Chaos => {
            wants(&["preset"])?;
            if spec.faults.is_empty() {
                return Err(plan_err(
                    "[faults]",
                    "campaign `chaos` needs a fault ladder (`rung = …` lines)",
                ));
            }
        }
        CampaignKind::JointWorld => {
            wants(&["preset"])?;
            let ok = spec
                .contention
                .as_ref()
                .is_some_and(|c| !c.loads.is_empty() && !c.priorities.is_empty());
            if !ok {
                return Err(plan_err(
                    "[contention]",
                    "campaign `joint-world` needs a [contention] section with \
                     `loads` and `priorities`",
                ));
            }
        }
        CampaignKind::Runtime => wants(&["pairwise"])?,
        CampaignKind::Bandwidth => {
            wants(&["preset"])?;
            if spec.link.is_none() {
                return Err(plan_err(
                    "[link]",
                    "campaign `bandwidth` needs a [link] section with a \
                     `bandwidth = …` ladder",
                ));
            }
        }
        _ => wants(&["preset"])?,
    }
    if spec.campaign != CampaignKind::Bandwidth && spec.link.is_some() {
        return Err(plan_err(
            "[link]",
            format!(
                "campaign `{}` does not take a [link] section (only `bandwidth` does)",
                spec.campaign
            ),
        ));
    }
    if spec.campaign != CampaignKind::Runtime && spec.run.legs.is_some() {
        return Err(plan_err(
            "[run] legs",
            format!(
                "campaign `{}` does not take `legs` (only `runtime` does)",
                spec.campaign
            ),
        ));
    }
    if spec.campaign != CampaignKind::Chaos && !spec.faults.is_empty() {
        return Err(plan_err(
            "[faults]",
            format!(
                "campaign `{}` does not take a fault ladder (only `chaos` does; \
                 loss/churn sweeps are matrix axes)",
                spec.campaign
            ),
        ));
    }

    let allowed = allowed_axes(spec.campaign);
    for axis in &spec.matrix {
        if !allowed.contains(&axis.key.as_str()) {
            return Err(plan_err(
                format!("[matrix] {}", axis.key),
                if allowed.is_empty() {
                    format!("campaign `{}` takes no matrix axes", spec.campaign)
                } else {
                    format!(
                        "unknown axis for campaign `{}` (expected one of: {})",
                        spec.campaign,
                        allowed.join(", ")
                    )
                },
            ));
        }
    }

    // --- Matrix expansion ----------------------------------------------
    let mut count: usize = 1;
    for axis in &spec.matrix {
        count = count.saturating_mul(axis.values.len());
        if count > MAX_POINTS {
            return Err(plan_err(
                "[matrix]",
                format!("matrix expands to more than {MAX_POINTS} points"),
            ));
        }
    }
    let mut points = vec![PlanPoint { coords: Vec::new() }];
    for axis in &spec.matrix {
        let mut next = Vec::with_capacity(points.len() * axis.values.len());
        for p in &points {
            for &v in &axis.values {
                let mut coords = p.coords.clone();
                coords.push((axis.key.clone(), v));
                next.push(PlanPoint { coords });
            }
        }
        points = next;
    }

    let seeds = spec.run.seeds.clone().unwrap_or_else(|| SEEDS.to_vec());
    let threads = spec.run.threads.unwrap_or(0);
    let window_mins = spec.run.window_mins;
    let no_wall = spec.output.no_wall;

    Ok(CampaignPlan {
        spec,
        seeds,
        points,
        threads,
        window_mins,
        no_wall,
        headline: overrides.headline,
    })
}

impl CampaignPlan {
    /// The resolved seed list.
    #[must_use]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The spec's scheme list, or `default` when the spec leaves it out.
    #[must_use]
    pub fn schemes_or(&self, default: &[SchemeChoice]) -> Vec<SchemeChoice> {
        self.spec
            .run
            .schemes
            .clone()
            .unwrap_or_else(|| default.to_vec())
    }

    /// The preset list of a preset world (empty for other worlds).
    #[must_use]
    pub fn presets(&self) -> Vec<TracePreset> {
        match &self.spec.world {
            WorldSpec::Presets(presets) => presets.clone(),
            _ => Vec::new(),
        }
    }

    /// The single preset of a one-preset campaign (the planner guarantees
    /// a preset world for those campaigns; the first preset wins).
    #[must_use]
    pub fn preset_one(&self) -> TracePreset {
        self.presets()
            .first()
            .copied()
            .unwrap_or(TracePreset::RealityLike)
    }

    /// The values of the named matrix axis, if present.
    #[must_use]
    pub fn axis(&self, key: &str) -> Option<&[f64]> {
        self.spec
            .matrix
            .iter()
            .find(|a| a.key == key)
            .map(|a| a.values.as_slice())
    }

    /// The named axis's values, or `default` when the axis is absent.
    #[must_use]
    pub fn axis_or(&self, key: &str, default: &[f64]) -> Vec<f64> {
        self.axis(key)
            .map_or_else(|| default.to_vec(), <[f64]>::to_vec)
    }

    /// [`Self::axis_or`] rounded to `usize` (node counts, loads, sizes).
    #[must_use]
    pub fn axis_usize_or(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.axis(key) {
            Some(values) => values.iter().map(|&v| v as usize).collect(),
            None => default.to_vec(),
        }
    }

    /// A single-valued axis read as a scalar parameter (`default` when
    /// absent; the first value when the axis has several).
    #[must_use]
    pub fn scalar_or(&self, key: &str, default: f64) -> f64 {
        self.axis(key)
            .and_then(|v| v.first().copied())
            .unwrap_or(default)
    }

    /// [`Self::scalar_or`] rounded to `usize`.
    #[must_use]
    pub fn scalar_usize_or(&self, key: &str, default: usize) -> usize {
        self.axis(key)
            .and_then(|v| v.first().copied())
            .map_or(default, |v| v as usize)
    }

    /// The retry policy named by the spec, if any.
    #[must_use]
    pub fn retry(&self) -> Option<RetrySpec> {
        self.spec.run.retry
    }

    /// The fault ladder (empty outside chaos campaigns).
    #[must_use]
    pub fn faults(&self) -> &[FaultRung] {
        &self.spec.faults
    }

    /// The contention section (planner-guaranteed for joint-world).
    #[must_use]
    pub fn contention(&self) -> Option<&ContentionSpec> {
        self.spec.contention.as_ref()
    }

    /// The link model (planner-guaranteed for the bandwidth campaign).
    #[must_use]
    pub fn link(&self) -> Option<&LinkSpec> {
        self.spec.link.as_ref()
    }

    /// The runtime campaign's legs, or `default` when the spec leaves
    /// them out.
    #[must_use]
    pub fn legs_or(&self, default: &[RunLeg]) -> Vec<RunLeg> {
        self.spec
            .run
            .legs
            .clone()
            .unwrap_or_else(|| default.to_vec())
    }

    /// Whether the named table is selected by `[output] tables`.
    #[must_use]
    pub fn table_enabled(&self, name: &str) -> bool {
        self.spec.output.tables.enabled(name)
    }

    /// A deterministic one-screen summary of the plan (the `omn-scn plan`
    /// subcommand and the plan golden files).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan {} (campaign {})\n",
            self.spec.name, self.spec.campaign
        ));
        if let Some(title) = &self.spec.title {
            out.push_str(&format!("title: {title}\n"));
        }
        let world = match &self.spec.world {
            WorldSpec::Presets(presets) => format!(
                "preset [{}]",
                presets
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            WorldSpec::Pairwise(w) => format!(
                "pairwise (nodes {}, span {} d, mean interval {} s, shape {}, world-seed {})",
                w.nodes, w.span_days, w.mean_interval_secs, w.rate_shape, w.world_seed
            ),
            WorldSpec::Sharded => "sharded communities".to_owned(),
            WorldSpec::Registry => "real-trace registry".to_owned(),
            WorldSpec::TraceFile { path, format } => format!(
                "trace file {path} (format {})",
                format.as_deref().unwrap_or("sniffed")
            ),
        };
        out.push_str(&format!("world: {world}\n"));
        out.push_str(&format!(
            "seeds: {}\n",
            self.seeds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        if let Some(schemes) = &self.spec.run.schemes {
            out.push_str(&format!(
                "schemes: {}\n",
                schemes
                    .iter()
                    .map(|c| c.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if let Some(retry) = self.spec.run.retry {
            out.push_str(&format!("retry: {retry:?}\n"));
        }
        if let Some(oracle) = self.spec.run.oracle {
            out.push_str(&format!("oracle: {oracle:?}\n"));
        }
        if let Some(legs) = &self.spec.run.legs {
            out.push_str(&format!(
                "legs: {}\n",
                legs.iter().map(|l| l.name()).collect::<Vec<_>>().join(", ")
            ));
        }
        for axis in &self.spec.matrix {
            out.push_str(&format!(
                "axis {}: [{}]\n",
                axis.key,
                axis.values
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if !self.spec.faults.is_empty() {
            out.push_str(&format!(
                "faults: {} rungs ({})\n",
                self.spec.faults.len(),
                self.spec
                    .faults
                    .iter()
                    .map(|r| r.name.as_str())
                    .collect::<Vec<_>>()
                    .join(" → ")
            ));
        }
        if let Some(c) = &self.spec.contention {
            out.push_str(&format!(
                "contention: budget {}, {} loads × {} priorities\n",
                c.budget.map_or("unlimited".to_owned(), |b| b.to_string()),
                c.loads.len(),
                c.priorities.len()
            ));
        }
        if let Some(link) = &self.spec.link {
            out.push_str(&format!(
                "link: bandwidth [{}] B/s (0 = unlimited)\n",
                link.bandwidth
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str(&format!(
            "points: {} ({} axes)\n",
            self.points.len(),
            self.spec.matrix.len()
        ));
        if let Some(golden) = &self.spec.output.golden {
            out.push_str(&format!("golden: {golden}\n"));
        }
        if self.threads > 0 {
            out.push_str(&format!("threads: {}\n", self.threads));
        }
        if self.no_wall {
            out.push_str("no-wall: true\n");
        }
        out
    }
}
