//! The scenario front-end: a typed [`ScenarioSpec`] parsed from the small
//! declarative `.scn` format committed under `specs/`.
//!
//! The format is line-oriented:
//!
//! ```text
//! # full-line comments start with `#`
//! scenario e17                     # header: the scenario name
//! title = chaos campaign           # top-level key/value pairs
//! campaign = chaos                 # which executor driver runs the plan
//!
//! [world]                          # sections group related keys
//! kind = preset
//! presets = infocom-like
//!
//! [faults]
//! rung = mild 0.10 0.15 1          # repeated keys build ladders
//! ```
//!
//! Every diagnostic is a [`ScenarioError`] carrying the 1-based line
//! number and the offending field, so a broken spec reads like a compiler
//! error (`specs/e17.scn:12: [faults] rung: expected a number, got
//! `much``). [`ScenarioSpec::render`] emits the canonical form of a spec;
//! parse → render → parse is idempotent (pinned by a proptest).

use std::fmt;

use omn_core::joint::ContentionPriority;
use omn_core::sim::SchemeChoice;
use omn_sim::OracleMode;

use omn_contacts::synth::presets::TracePreset;

/// A parse or validation diagnostic, positioned at a line and field of
/// the spec text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number of the offending text (0 = whole file).
    pub line: usize,
    /// The section-qualified field the diagnostic is about (e.g.
    /// `[world] kind`), or a bare marker like `scenario` for structural
    /// errors.
    pub field: String,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ScenarioError {
    fn new(line: usize, field: impl Into<String>, message: impl Into<String>) -> ScenarioError {
        ScenarioError {
            line,
            field: field.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.field, self.message)
        } else {
            write!(f, "line {}: {}: {}", self.line, self.field, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Which executor driver a scenario runs on. One variant per experiment
/// family; a *new* scenario combines an existing driver with new
/// parameters (world, seeds, axes, fault ladder …) and needs zero new
/// Rust.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// E1 — trace characteristics table.
    TraceStats,
    /// E2 — analytical model vs simulation on a pairwise world.
    DelayValidation,
    /// E3 — freshness-ratio time series per scheme.
    FreshnessTime,
    /// E4 — replication sizing vs the freshness requirement `q`.
    FreshnessRequirement,
    /// E5 — freshness vs refresh period.
    RefreshPeriod,
    /// E6 — overhead comparison per scheme.
    Overhead,
    /// E7 — scalability with the caching-set size.
    CachingNodes,
    /// E8 — design-choice ablations.
    Ablation,
    /// E9 — data-access validity with the caching stack.
    DataAccess,
    /// E10 — routing-substrate baselines.
    RoutingBaselines,
    /// E11 — robustness to permanent departures.
    Robustness,
    /// E12 — refresh-load distribution.
    LoadDistribution,
    /// E13 — loss + churn fault tolerance.
    FaultTolerance,
    /// E14 — joint caching+freshness world under budget contention.
    JointWorld,
    /// E15 — streaming-pipeline scalability sweep.
    Scalability,
    /// E16 — real-trace ingestion, calibration, freshness.
    RealTraces,
    /// E17 — chaos ladder with invariant oracles.
    Chaos,
    /// E18 — async node runtime: DES cross-validation + throughput.
    Runtime,
    /// E19 — bandwidth-realistic links: byte-budget contacts and queues.
    Bandwidth,
}

impl CampaignKind {
    /// Every campaign kind, in experiment order.
    pub const ALL: [CampaignKind; 19] = [
        CampaignKind::TraceStats,
        CampaignKind::DelayValidation,
        CampaignKind::FreshnessTime,
        CampaignKind::FreshnessRequirement,
        CampaignKind::RefreshPeriod,
        CampaignKind::Overhead,
        CampaignKind::CachingNodes,
        CampaignKind::Ablation,
        CampaignKind::DataAccess,
        CampaignKind::RoutingBaselines,
        CampaignKind::Robustness,
        CampaignKind::LoadDistribution,
        CampaignKind::FaultTolerance,
        CampaignKind::JointWorld,
        CampaignKind::Scalability,
        CampaignKind::RealTraces,
        CampaignKind::Chaos,
        CampaignKind::Runtime,
        CampaignKind::Bandwidth,
    ];

    /// The spec-file name of the kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CampaignKind::TraceStats => "trace-stats",
            CampaignKind::DelayValidation => "delay-validation",
            CampaignKind::FreshnessTime => "freshness-time",
            CampaignKind::FreshnessRequirement => "freshness-requirement",
            CampaignKind::RefreshPeriod => "refresh-period",
            CampaignKind::Overhead => "overhead",
            CampaignKind::CachingNodes => "caching-nodes",
            CampaignKind::Ablation => "ablation",
            CampaignKind::DataAccess => "data-access",
            CampaignKind::RoutingBaselines => "routing-baselines",
            CampaignKind::Robustness => "robustness",
            CampaignKind::LoadDistribution => "load-distribution",
            CampaignKind::FaultTolerance => "fault-tolerance",
            CampaignKind::JointWorld => "joint-world",
            CampaignKind::Scalability => "scalability",
            CampaignKind::RealTraces => "real-traces",
            CampaignKind::Chaos => "chaos",
            CampaignKind::Runtime => "runtime",
            CampaignKind::Bandwidth => "bandwidth",
        }
    }

    fn from_name(name: &str) -> Option<CampaignKind> {
        CampaignKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for CampaignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The pairwise-exponential synthetic world of the validation campaign
/// (analytical assumptions hold by construction).
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseWorld {
    /// Node count.
    pub nodes: usize,
    /// Simulated span in days.
    pub span_days: f64,
    /// Mean pairwise inter-contact interval in seconds (rate = 1/this).
    pub mean_interval_secs: f64,
    /// Gamma shape of the per-pair rate heterogeneity.
    pub rate_shape: f64,
    /// The dedicated generation seed of the world (the validation world
    /// is one fixed trace, not a per-seed replication).
    pub world_seed: u64,
}

/// Where a scenario's contacts come from.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldSpec {
    /// One or more synthetic presets (`reality-like`, `infocom-like`).
    Presets(Vec<TracePreset>),
    /// One fixed pairwise-exponential trace.
    Pairwise(PairwiseWorld),
    /// The sharded-community streaming generator; node counts come from
    /// the `nodes` matrix axis.
    Sharded,
    /// The built-in real-trace registry (vendored fixtures as fallback).
    Registry,
    /// One real trace file on disk.
    TraceFile {
        /// Dataset path.
        path: String,
        /// Dump-format name (`reality`, `haggle`, `omn-v1`); sniffed when
        /// absent.
        format: Option<String>,
    },
}

/// A retry policy named in a spec, mapped onto
/// [`omn_core::scheme::RetryPolicy`] by the executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrySpec {
    /// No retries (fail-once transfers).
    Off,
    /// The classic fixed bound: up to `n` retries at the very next
    /// contacts.
    Fixed(u32),
    /// Exponential backoff with deterministic jitter and escalation.
    Exponential {
        /// Maximum extra attempts.
        attempts: u32,
        /// Base backoff in hours.
        base_hours: f64,
    },
}

impl RetrySpec {
    fn render(self) -> String {
        match self {
            RetrySpec::Off => "off".to_owned(),
            RetrySpec::Fixed(n) => format!("fixed({n})"),
            RetrySpec::Exponential {
                attempts,
                base_hours,
            } => format!("exponential({attempts}, {base_hours}h)"),
        }
    }

    /// The [`omn_core::scheme::RetryPolicy`] this spec names.
    #[must_use]
    pub fn to_policy(self) -> omn_core::scheme::RetryPolicy {
        use omn_core::scheme::RetryPolicy;
        match self {
            RetrySpec::Off => RetryPolicy::fixed(0),
            RetrySpec::Fixed(n) => RetryPolicy::fixed(n),
            RetrySpec::Exponential {
                attempts,
                base_hours,
            } => RetryPolicy::exponential(attempts, omn_sim::SimDuration::from_hours(base_hours)),
        }
    }

    fn parse(value: &str) -> Option<RetrySpec> {
        let value = value.trim();
        if value == "off" {
            return Some(RetrySpec::Off);
        }
        let (fun, rest) = value.split_once('(')?;
        let args = rest.strip_suffix(')')?;
        match fun.trim() {
            "fixed" => args.trim().parse().ok().map(RetrySpec::Fixed),
            "exponential" => {
                let (a, b) = args.split_once(',')?;
                let attempts = a.trim().parse().ok()?;
                let base_hours: f64 = b.trim().strip_suffix('h')?.trim().parse().ok()?;
                (base_hours.is_finite() && base_hours >= 0.0).then_some(RetrySpec::Exponential {
                    attempts,
                    base_hours,
                })
            }
            _ => None,
        }
    }
}

/// One leg of the runtime campaign: which execution mode runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLeg {
    /// Trace-replay lockstep mode, cross-validated against the DES.
    Lockstep,
    /// Free-running throughput mode over the sharded generator.
    Firehose,
}

impl RunLeg {
    /// The spec-file name of the leg.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RunLeg::Lockstep => "lockstep",
            RunLeg::Firehose => "firehose",
        }
    }

    fn from_name(name: &str) -> Option<RunLeg> {
        [RunLeg::Lockstep, RunLeg::Firehose]
            .into_iter()
            .find(|l| l.name() == name)
    }
}

/// The `[run]` section: seed set, scheme choice, oracle mode, retry
/// policy, and pipeline knobs. Every field is optional — the campaign
/// driver's defaults apply when absent, and command-line flags override
/// whatever the spec says.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSpec {
    /// Replication seed set (`None` = the harness default).
    pub seeds: Option<Vec<u64>>,
    /// Schemes to compare (`None` = the campaign's default set).
    pub schemes: Option<Vec<SchemeChoice>>,
    /// Invariant-oracle mode (`None` = resolved from `OMN_ORACLE`).
    pub oracle: Option<OracleMode>,
    /// Retry policy for resilient campaigns.
    pub retry: Option<RetrySpec>,
    /// Generator threads of the window-barrier parallel pipeline.
    pub threads: Option<usize>,
    /// Barrier window of the parallel pipeline, simulated minutes.
    pub window_mins: Option<f64>,
    /// Which legs of a runtime campaign run (`None` = all legs).
    pub legs: Option<Vec<RunLeg>>,
}

/// One rung of a fault ladder: the intensity of each adversarial fault
/// kind (shared with E17's chaos campaign).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRung {
    /// Human-readable rung name.
    pub name: String,
    /// Probability that a successful transfer is a stale-version replay.
    pub corruption: f64,
    /// Fraction of nodes subject to crash-with-state-loss windows.
    pub crash_fraction: f64,
    /// Number of correlated regional outage events over the span.
    pub outages: u32,
}

/// The `[contention]` section: the joint-world budget sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionSpec {
    /// Per-contact transfer budget (`None` = unlimited).
    pub budget: Option<u32>,
    /// Query loads of the sweep.
    pub loads: Vec<usize>,
    /// Contention priorities compared.
    pub priorities: Vec<ContentionPriority>,
}

/// The `[link]` section: the bandwidth-realistic link model of the E19
/// campaign. Contact capacity = bandwidth × contact duration in bytes;
/// the ladder sweeps it from starvation to effectively infinite.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth ladder in bytes/second, in sweep order. The value `0` is
    /// the *unlimited* sentinel (an infinite link, bit-identical to pure
    /// slot counting).
    pub bandwidth: Vec<f64>,
    /// Wire length of one refresh frame in bytes (`None` = driver
    /// default).
    pub refresh_bytes: Option<u64>,
    /// Per-node transmission-queue depth bound (`None` = driver default).
    pub queue_depth: Option<usize>,
}

/// One named axis of the `[matrix]` section: a sweep when it has several
/// values, a scalar parameter when it has one.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixAxis {
    /// Axis name (e.g. `nodes`, `period-h`, `q`).
    pub key: String,
    /// Axis values, in sweep order.
    pub values: Vec<f64>,
}

/// Which tables of a multi-table campaign print (`None` = all).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableFilter(pub Option<Vec<String>>);

impl TableFilter {
    /// Whether the named table is selected.
    #[must_use]
    pub fn enabled(&self, name: &str) -> bool {
        match &self.0 {
            None => true,
            Some(tables) => tables.iter().any(|t| t == name),
        }
    }
}

/// The `[output]` section: golden-file binding and presentation knobs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputSpec {
    /// Name of the committed golden file this scenario's headline numbers
    /// are pinned by (under `crates/bench/tests/golden/`).
    pub golden: Option<String>,
    /// Hide wall-clock columns (byte-diffable output).
    pub no_wall: bool,
    /// Which tables print (`None` = all).
    pub tables: TableFilter,
}

/// A parsed scenario: the typed form of one `.scn` file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name from the `scenario <name>` header.
    pub name: String,
    /// Optional human-readable title.
    pub title: Option<String>,
    /// Which executor driver runs this scenario.
    pub campaign: CampaignKind,
    /// Contact-world selection.
    pub world: WorldSpec,
    /// Seeds, schemes, oracle mode, retry policy, pipeline knobs.
    pub run: RunSpec,
    /// Fault ladder (empty = fault-free).
    pub faults: Vec<FaultRung>,
    /// Joint-world contention sweep.
    pub contention: Option<ContentionSpec>,
    /// Bandwidth-realistic link model (the E19 campaign).
    pub link: Option<LinkSpec>,
    /// Named sweep axes and scalar parameters.
    pub matrix: Vec<MatrixAxis>,
    /// Golden binding and presentation.
    pub output: OutputSpec,
}

/// Scheme-name helpers shared by parser and renderer.
fn scheme_from_name(name: &str) -> Option<SchemeChoice> {
    SchemeChoice::ALL.into_iter().find(|c| c.name() == name)
}

fn preset_from_name(name: &str) -> Option<TracePreset> {
    TracePreset::ALL.into_iter().find(|p| p.name() == name)
}

fn priority_name(p: ContentionPriority) -> &'static str {
    match p {
        ContentionPriority::RefreshFirst => "refresh-first",
        ContentionPriority::QueryFirst => "query-first",
        ContentionPriority::FairInterleave => "fair-interleave",
    }
}

fn priority_from_name(name: &str) -> Option<ContentionPriority> {
    [
        ContentionPriority::RefreshFirst,
        ContentionPriority::QueryFirst,
        ContentionPriority::FairInterleave,
    ]
    .into_iter()
    .find(|&p| priority_name(p) == name)
}

fn oracle_name(mode: OracleMode) -> &'static str {
    match mode {
        OracleMode::Campaign => "campaign",
        OracleMode::Strict => "strict",
        OracleMode::Off => "off",
    }
}

fn oracle_from_name(name: &str) -> Option<OracleMode> {
    [OracleMode::Campaign, OracleMode::Strict, OracleMode::Off]
        .into_iter()
        .find(|&m| oracle_name(m) == name)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// The sections a spec may contain, in canonical render order.
const SECTIONS: [&str; 7] = [
    "world",
    "run",
    "faults",
    "contention",
    "link",
    "matrix",
    "output",
];

/// One `key = value` occurrence with its source line.
struct RawKv {
    line: usize,
    key: String,
    value: String,
}

/// A raw section: name, header line, and its key/value pairs in order.
struct RawSection {
    name: String,
    line: usize,
    kvs: Vec<RawKv>,
}

fn err(line: usize, field: impl Into<String>, message: impl Into<String>) -> ScenarioError {
    ScenarioError::new(line, field, message)
}

/// Parses one `.scn` document into a typed [`ScenarioSpec`].
///
/// # Errors
///
/// Returns the first [`ScenarioError`] encountered: structural problems
/// (missing header, unknown or duplicate sections), unknown keys, or
/// malformed values — each positioned at its line and field.
pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    let mut name: Option<String> = None;
    let mut top: Vec<RawKv> = Vec::new();
    let mut sections: Vec<RawSection> = Vec::new();
    let mut current: Option<usize> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(section) = rest.strip_suffix(']') else {
                return Err(err(line_no, "section", "unterminated section header"));
            };
            let section = section.trim();
            if !SECTIONS.contains(&section) {
                return Err(err(
                    line_no,
                    format!("[{section}]"),
                    format!("unknown section (expected one of: {})", SECTIONS.join(", ")),
                ));
            }
            if let Some(first) = sections.iter().find(|s| s.name == section) {
                return Err(err(
                    line_no,
                    format!("[{section}]"),
                    format!(
                        "conflicting section: [{section}] already given at line {}",
                        first.line
                    ),
                ));
            }
            sections.push(RawSection {
                name: section.to_owned(),
                line: line_no,
                kvs: Vec::new(),
            });
            current = Some(sections.len() - 1);
            continue;
        }
        if name.is_none() {
            let Some(rest) = line.strip_prefix("scenario") else {
                return Err(err(
                    line_no,
                    "scenario",
                    "a spec must start with `scenario <name>`",
                ));
            };
            let n = rest.trim();
            if n.is_empty() || n.contains(char::is_whitespace) {
                return Err(err(
                    line_no,
                    "scenario",
                    "the scenario name must be one word",
                ));
            }
            name = Some(n.to_owned());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                line_no,
                line.split_whitespace().next().unwrap_or("line").to_owned(),
                "expected `key = value`",
            ));
        };
        let kv = RawKv {
            line: line_no,
            key: key.trim().to_owned(),
            value: value.trim().to_owned(),
        };
        match current {
            Some(i) => sections[i].kvs.push(kv),
            None => top.push(kv),
        }
    }

    let Some(name) = name else {
        return Err(err(0, "scenario", "missing `scenario <name>` header"));
    };

    // Top-level keys: title, campaign.
    let mut title: Option<String> = None;
    let mut campaign: Option<(CampaignKind, usize)> = None;
    for kv in &top {
        match kv.key.as_str() {
            "title" => {
                reject_dup(title.is_some(), kv, "title")?;
                title = Some(kv.value.clone());
            }
            "campaign" => {
                reject_dup(campaign.is_some(), kv, "campaign")?;
                let kind = CampaignKind::from_name(&kv.value).ok_or_else(|| {
                    err(
                        kv.line,
                        "campaign",
                        format!(
                            "unknown campaign `{}` (expected one of: {})",
                            kv.value,
                            CampaignKind::ALL.map(CampaignKind::name).join(", ")
                        ),
                    )
                })?;
                campaign = Some((kind, kv.line));
            }
            other => {
                return Err(err(
                    kv.line,
                    other.to_owned(),
                    "unknown key (expected `title` or `campaign` before the first section)",
                ))
            }
        }
    }
    let Some((campaign, _)) = campaign else {
        return Err(err(0, "campaign", "missing `campaign = <kind>`"));
    };

    let mut spec = ScenarioSpec {
        name,
        title,
        campaign,
        world: WorldSpec::Presets(Vec::new()),
        run: RunSpec::default(),
        faults: Vec::new(),
        contention: None,
        link: None,
        matrix: Vec::new(),
        output: OutputSpec::default(),
    };

    let mut world_seen = false;
    for section in &sections {
        match section.name.as_str() {
            "world" => {
                spec.world = parse_world(section)?;
                world_seen = true;
            }
            "run" => spec.run = parse_run(section)?,
            "faults" => spec.faults = parse_faults(section)?,
            "contention" => spec.contention = Some(parse_contention(section)?),
            "link" => spec.link = Some(parse_link(section)?),
            "matrix" => spec.matrix = parse_matrix(section)?,
            "output" => spec.output = parse_output(section)?,
            _ => unreachable!("unknown sections are rejected above"),
        }
    }
    if !world_seen {
        return Err(err(0, "[world]", "missing [world] section"));
    }
    Ok(spec)
}

fn reject_dup(seen: bool, kv: &RawKv, field: &str) -> Result<(), ScenarioError> {
    if seen {
        return Err(err(kv.line, field.to_owned(), "duplicate key"));
    }
    Ok(())
}

fn qualified(section: &RawSection, key: &str) -> String {
    format!("[{}] {key}", section.name)
}

fn parse_f64(section: &RawSection, kv: &RawKv, value: &str) -> Result<f64, ScenarioError> {
    match value.trim().parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(err(
            kv.line,
            qualified(section, &kv.key),
            format!("expected a number, got `{value}`"),
        )),
    }
}

fn parse_int<T: std::str::FromStr>(
    section: &RawSection,
    kv: &RawKv,
    value: &str,
) -> Result<T, ScenarioError> {
    value.trim().parse::<T>().map_err(|_| {
        err(
            kv.line,
            qualified(section, &kv.key),
            format!("expected an integer, got `{value}`"),
        )
    })
}

fn parse_bool(section: &RawSection, kv: &RawKv) -> Result<bool, ScenarioError> {
    match kv.value.as_str() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(err(
            kv.line,
            qualified(section, &kv.key),
            format!("expected `true` or `false`, got `{other}`"),
        )),
    }
}

fn split_list(value: &str) -> impl Iterator<Item = &str> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty())
}

fn parse_world(section: &RawSection) -> Result<WorldSpec, ScenarioError> {
    // Gather every key, then resolve the kind and reject keys that belong
    // to a different kind (a conflicting world description).
    let mut kind: Option<(String, usize)> = None;
    let mut presets: Option<(Vec<TracePreset>, usize)> = None;
    let mut nodes: Option<usize> = None;
    let mut span_days: Option<f64> = None;
    let mut mean_interval: Option<f64> = None;
    let mut rate_shape: Option<f64> = None;
    let mut world_seed: Option<u64> = None;
    let mut path: Option<String> = None;
    let mut format: Option<String> = None;
    let mut pairwise_line = 0usize;
    let mut trace_line = 0usize;

    for kv in &section.kvs {
        match kv.key.as_str() {
            "kind" => {
                reject_dup(kind.is_some(), kv, "[world] kind")?;
                kind = Some((kv.value.clone(), kv.line));
            }
            "presets" | "preset" => {
                reject_dup(presets.is_some(), kv, "[world] presets")?;
                let mut list = Vec::new();
                for name in split_list(&kv.value) {
                    list.push(preset_from_name(name).ok_or_else(|| {
                        err(
                            kv.line,
                            qualified(section, &kv.key),
                            format!(
                                "unknown preset `{name}` (expected one of: {})",
                                TracePreset::ALL.map(TracePreset::name).join(", ")
                            ),
                        )
                    })?);
                }
                if list.is_empty() {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        "expected at least one preset",
                    ));
                }
                presets = Some((list, kv.line));
            }
            "nodes" => {
                nodes = Some(parse_int(section, kv, &kv.value)?);
                pairwise_line = pairwise_line.max(kv.line);
            }
            "span-days" => {
                span_days = Some(parse_f64(section, kv, &kv.value)?);
                pairwise_line = pairwise_line.max(kv.line);
            }
            "mean-interval-secs" => {
                mean_interval = Some(parse_f64(section, kv, &kv.value)?);
                pairwise_line = pairwise_line.max(kv.line);
            }
            "rate-shape" => {
                rate_shape = Some(parse_f64(section, kv, &kv.value)?);
                pairwise_line = pairwise_line.max(kv.line);
            }
            "world-seed" => {
                world_seed = Some(parse_int(section, kv, &kv.value)?);
                pairwise_line = pairwise_line.max(kv.line);
            }
            "path" => {
                path = Some(kv.value.clone());
                trace_line = trace_line.max(kv.line);
            }
            "format" => {
                format = Some(kv.value.clone());
                trace_line = trace_line.max(kv.line);
            }
            other => {
                return Err(err(
                    kv.line,
                    qualified(section, other),
                    "unknown key in [world]",
                ))
            }
        }
    }

    let kind_name = match (&kind, &presets) {
        (Some((k, _)), _) => k.clone(),
        (None, Some(_)) => "preset".to_owned(),
        (None, None) => {
            return Err(err(
                section.line,
                "[world] kind",
                "missing `kind` (preset, pairwise, sharded, registry, or trace)",
            ))
        }
    };

    let conflict = |field: &str, line: usize, kind_name: &str| {
        err(
            line,
            format!("[world] {field}"),
            format!("conflicts with `kind = {kind_name}` — one world per scenario"),
        )
    };

    match kind_name.as_str() {
        "preset" => {
            if pairwise_line > 0 {
                return Err(conflict("nodes/span-days/…", pairwise_line, "preset"));
            }
            if trace_line > 0 {
                return Err(conflict("path/format", trace_line, "preset"));
            }
            let Some((list, _)) = presets else {
                return Err(err(
                    section.line,
                    "[world] presets",
                    "kind = preset needs `presets = …`",
                ));
            };
            Ok(WorldSpec::Presets(list))
        }
        "pairwise" => {
            if let Some((_, line)) = presets {
                return Err(conflict("presets", line, "pairwise"));
            }
            if trace_line > 0 {
                return Err(conflict("path/format", trace_line, "pairwise"));
            }
            let missing = |field: &str| {
                err(
                    section.line,
                    format!("[world] {field}"),
                    "required for kind = pairwise",
                )
            };
            Ok(WorldSpec::Pairwise(PairwiseWorld {
                nodes: nodes.ok_or_else(|| missing("nodes"))?,
                span_days: span_days.ok_or_else(|| missing("span-days"))?,
                mean_interval_secs: mean_interval.ok_or_else(|| missing("mean-interval-secs"))?,
                rate_shape: rate_shape.ok_or_else(|| missing("rate-shape"))?,
                world_seed: world_seed.ok_or_else(|| missing("world-seed"))?,
            }))
        }
        "sharded" | "registry" => {
            if let Some((_, line)) = presets {
                return Err(conflict("presets", line, &kind_name));
            }
            if pairwise_line > 0 {
                return Err(conflict("nodes/span-days/…", pairwise_line, &kind_name));
            }
            if trace_line > 0 {
                return Err(conflict("path/format", trace_line, &kind_name));
            }
            Ok(if kind_name == "sharded" {
                WorldSpec::Sharded
            } else {
                WorldSpec::Registry
            })
        }
        "trace" => {
            if let Some((_, line)) = presets {
                return Err(conflict("presets", line, "trace"));
            }
            if pairwise_line > 0 {
                return Err(conflict("nodes/span-days/…", pairwise_line, "trace"));
            }
            let Some(path) = path else {
                return Err(err(
                    section.line,
                    "[world] path",
                    "kind = trace needs `path = …`",
                ));
            };
            Ok(WorldSpec::TraceFile { path, format })
        }
        other => Err(err(
            kind.map_or(section.line, |(_, l)| l),
            "[world] kind",
            format!(
                "unknown world kind `{other}` (expected preset, pairwise, sharded, registry, or trace)"
            ),
        )),
    }
}

fn parse_run(section: &RawSection) -> Result<RunSpec, ScenarioError> {
    let mut run = RunSpec::default();
    for kv in &section.kvs {
        match kv.key.as_str() {
            "seeds" => {
                reject_dup(run.seeds.is_some(), kv, "[run] seeds")?;
                let mut seeds = Vec::new();
                for s in split_list(&kv.value) {
                    seeds.push(parse_int(section, kv, s)?);
                }
                if seeds.is_empty() {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        "expected at least one seed",
                    ));
                }
                run.seeds = Some(seeds);
            }
            "schemes" => {
                reject_dup(run.schemes.is_some(), kv, "[run] schemes")?;
                let mut schemes = Vec::new();
                for name in split_list(&kv.value) {
                    schemes.push(scheme_from_name(name).ok_or_else(|| {
                        err(
                            kv.line,
                            qualified(section, &kv.key),
                            format!(
                                "unknown scheme `{name}` (expected one of: {})",
                                SchemeChoice::ALL.map(SchemeChoice::name).join(", ")
                            ),
                        )
                    })?);
                }
                if schemes.is_empty() {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        "expected at least one scheme",
                    ));
                }
                run.schemes = Some(schemes);
            }
            "oracle" => {
                reject_dup(run.oracle.is_some(), kv, "[run] oracle")?;
                run.oracle = Some(oracle_from_name(&kv.value).ok_or_else(|| {
                    err(
                        kv.line,
                        qualified(section, &kv.key),
                        format!(
                            "unknown oracle mode `{}` (expected campaign, strict, or off)",
                            kv.value
                        ),
                    )
                })?);
            }
            "retry" => {
                reject_dup(run.retry.is_some(), kv, "[run] retry")?;
                run.retry = Some(RetrySpec::parse(&kv.value).ok_or_else(|| {
                    err(
                        kv.line,
                        qualified(section, &kv.key),
                        format!(
                            "unknown retry policy `{}` (expected off, fixed(N), or \
                             exponential(N, Hh))",
                            kv.value
                        ),
                    )
                })?);
            }
            "threads" => {
                reject_dup(run.threads.is_some(), kv, "[run] threads")?;
                run.threads = Some(parse_int(section, kv, &kv.value)?);
            }
            "window-mins" => {
                reject_dup(run.window_mins.is_some(), kv, "[run] window-mins")?;
                let mins = parse_f64(section, kv, &kv.value)?;
                if mins <= 0.0 {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        "expected a positive minute count",
                    ));
                }
                run.window_mins = Some(mins);
            }
            "legs" => {
                reject_dup(run.legs.is_some(), kv, "[run] legs")?;
                let mut legs = Vec::new();
                for name in split_list(&kv.value) {
                    legs.push(RunLeg::from_name(name).ok_or_else(|| {
                        err(
                            kv.line,
                            qualified(section, &kv.key),
                            format!("unknown leg `{name}` (expected lockstep or firehose)"),
                        )
                    })?);
                }
                if legs.is_empty() {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        "expected at least one leg",
                    ));
                }
                run.legs = Some(legs);
            }
            other => {
                return Err(err(
                    kv.line,
                    qualified(section, other),
                    "unknown key in [run]",
                ))
            }
        }
    }
    Ok(run)
}

fn parse_faults(section: &RawSection) -> Result<Vec<FaultRung>, ScenarioError> {
    let mut rungs = Vec::new();
    for kv in &section.kvs {
        match kv.key.as_str() {
            "rung" => {
                let parts: Vec<&str> = kv.value.split_whitespace().collect();
                if parts.len() != 4 {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        format!(
                            "expected `rung = <name> <corruption> <crash-fraction> <outages>`, \
                             got `{}`",
                            kv.value
                        ),
                    ));
                }
                let corruption = parse_f64(section, kv, parts[1])?;
                let crash_fraction = parse_f64(section, kv, parts[2])?;
                let outages = parse_int(section, kv, parts[3])?;
                for (label, v) in [
                    ("corruption", corruption),
                    ("crash-fraction", crash_fraction),
                ] {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(err(
                            kv.line,
                            qualified(section, &kv.key),
                            format!("{label} must be a probability in [0, 1], got {v}"),
                        ));
                    }
                }
                rungs.push(FaultRung {
                    name: parts[0].to_owned(),
                    corruption,
                    crash_fraction,
                    outages,
                });
            }
            other => {
                return Err(err(
                    kv.line,
                    qualified(section, other),
                    "unknown key in [faults] (expected repeated `rung = …` lines)",
                ))
            }
        }
    }
    Ok(rungs)
}

fn parse_contention(section: &RawSection) -> Result<ContentionSpec, ScenarioError> {
    let mut budget: Option<u32> = None;
    let mut loads: Option<Vec<usize>> = None;
    let mut priorities: Option<Vec<ContentionPriority>> = None;
    for kv in &section.kvs {
        match kv.key.as_str() {
            "budget" => {
                reject_dup(budget.is_some(), kv, "[contention] budget")?;
                budget = Some(parse_int(section, kv, &kv.value)?);
            }
            "loads" => {
                reject_dup(loads.is_some(), kv, "[contention] loads")?;
                let mut list = Vec::new();
                for s in split_list(&kv.value) {
                    list.push(parse_int(section, kv, s)?);
                }
                loads = Some(list);
            }
            "priorities" => {
                reject_dup(priorities.is_some(), kv, "[contention] priorities")?;
                let mut list = Vec::new();
                for name in split_list(&kv.value) {
                    list.push(priority_from_name(name).ok_or_else(|| {
                        err(
                            kv.line,
                            qualified(section, &kv.key),
                            format!(
                                "unknown priority `{name}` (expected refresh-first, \
                                 query-first, or fair-interleave)"
                            ),
                        )
                    })?);
                }
                priorities = Some(list);
            }
            other => {
                return Err(err(
                    kv.line,
                    qualified(section, other),
                    "unknown key in [contention]",
                ))
            }
        }
    }
    Ok(ContentionSpec {
        budget,
        loads: loads.unwrap_or_default(),
        priorities: priorities.unwrap_or_default(),
    })
}

fn parse_link(section: &RawSection) -> Result<LinkSpec, ScenarioError> {
    let mut bandwidth: Option<Vec<f64>> = None;
    let mut refresh_bytes: Option<u64> = None;
    let mut queue_depth: Option<usize> = None;
    for kv in &section.kvs {
        match kv.key.as_str() {
            "bandwidth" => {
                reject_dup(bandwidth.is_some(), kv, "[link] bandwidth")?;
                let mut values = Vec::new();
                for s in split_list(&kv.value) {
                    let v = parse_f64(section, kv, s)?;
                    if v < 0.0 {
                        return Err(err(
                            kv.line,
                            qualified(section, &kv.key),
                            format!("bandwidth must be non-negative (0 = unlimited), got {v}"),
                        ));
                    }
                    values.push(v);
                }
                if values.is_empty() {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        "expected at least one bandwidth value",
                    ));
                }
                bandwidth = Some(values);
            }
            "refresh-bytes" => {
                reject_dup(refresh_bytes.is_some(), kv, "[link] refresh-bytes")?;
                refresh_bytes = Some(parse_int(section, kv, &kv.value)?);
            }
            "queue-depth" => {
                reject_dup(queue_depth.is_some(), kv, "[link] queue-depth")?;
                let depth: usize = parse_int(section, kv, &kv.value)?;
                if depth == 0 {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        "expected a positive queue depth",
                    ));
                }
                queue_depth = Some(depth);
            }
            other => {
                return Err(err(
                    kv.line,
                    qualified(section, other),
                    "unknown key in [link]",
                ))
            }
        }
    }
    let Some(bandwidth) = bandwidth else {
        return Err(err(
            section.line,
            "[link] bandwidth",
            "a [link] section needs a `bandwidth = …` ladder",
        ));
    };
    Ok(LinkSpec {
        bandwidth,
        refresh_bytes,
        queue_depth,
    })
}

fn parse_matrix(section: &RawSection) -> Result<Vec<MatrixAxis>, ScenarioError> {
    let mut axes: Vec<MatrixAxis> = Vec::new();
    for kv in &section.kvs {
        if axes.iter().any(|a| a.key == kv.key) {
            return Err(err(
                kv.line,
                qualified(section, &kv.key),
                "duplicate matrix axis",
            ));
        }
        let mut values = Vec::new();
        for s in split_list(&kv.value) {
            values.push(parse_f64(section, kv, s)?);
        }
        if values.is_empty() {
            return Err(err(
                kv.line,
                qualified(section, &kv.key),
                "expected at least one value",
            ));
        }
        axes.push(MatrixAxis {
            key: kv.key.clone(),
            values,
        });
    }
    Ok(axes)
}

fn parse_output(section: &RawSection) -> Result<OutputSpec, ScenarioError> {
    let mut out = OutputSpec::default();
    let mut golden_seen = false;
    let mut no_wall_seen = false;
    let mut tables_seen = false;
    for kv in &section.kvs {
        match kv.key.as_str() {
            "golden" => {
                reject_dup(golden_seen, kv, "[output] golden")?;
                golden_seen = true;
                out.golden = Some(kv.value.clone());
            }
            "no-wall" => {
                reject_dup(no_wall_seen, kv, "[output] no-wall")?;
                no_wall_seen = true;
                out.no_wall = parse_bool(section, kv)?;
            }
            "tables" => {
                reject_dup(tables_seen, kv, "[output] tables")?;
                tables_seen = true;
                let list: Vec<String> = split_list(&kv.value).map(str::to_owned).collect();
                if list.is_empty() {
                    return Err(err(
                        kv.line,
                        qualified(section, &kv.key),
                        "expected at least one table name",
                    ));
                }
                out.tables = TableFilter(Some(list));
            }
            other => {
                return Err(err(
                    kv.line,
                    qualified(section, other),
                    "unknown key in [output]",
                ))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn join_f64(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn join_u64(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

impl ScenarioSpec {
    /// Renders the canonical `.scn` text of this spec. `parse(render(s))
    /// == s` for every valid spec (pinned by a proptest), so re-rendering
    /// a hand-written file normalizes it without changing its meaning.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario {}\n", self.name));
        if let Some(title) = &self.title {
            out.push_str(&format!("title = {title}\n"));
        }
        out.push_str(&format!("campaign = {}\n", self.campaign));

        out.push_str("\n[world]\n");
        match &self.world {
            WorldSpec::Presets(presets) => {
                out.push_str("kind = preset\n");
                out.push_str(&format!(
                    "presets = {}\n",
                    presets
                        .iter()
                        .map(|p| p.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            WorldSpec::Pairwise(w) => {
                out.push_str("kind = pairwise\n");
                out.push_str(&format!("nodes = {}\n", w.nodes));
                out.push_str(&format!("span-days = {}\n", w.span_days));
                out.push_str(&format!("mean-interval-secs = {}\n", w.mean_interval_secs));
                out.push_str(&format!("rate-shape = {}\n", w.rate_shape));
                out.push_str(&format!("world-seed = {}\n", w.world_seed));
            }
            WorldSpec::Sharded => out.push_str("kind = sharded\n"),
            WorldSpec::Registry => out.push_str("kind = registry\n"),
            WorldSpec::TraceFile { path, format } => {
                out.push_str("kind = trace\n");
                out.push_str(&format!("path = {path}\n"));
                if let Some(format) = format {
                    out.push_str(&format!("format = {format}\n"));
                }
            }
        }

        let run = &self.run;
        if run != &RunSpec::default() {
            out.push_str("\n[run]\n");
            if let Some(seeds) = &run.seeds {
                out.push_str(&format!("seeds = {}\n", join_u64(seeds)));
            }
            if let Some(schemes) = &run.schemes {
                out.push_str(&format!(
                    "schemes = {}\n",
                    schemes
                        .iter()
                        .map(|c| c.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            if let Some(oracle) = run.oracle {
                out.push_str(&format!("oracle = {}\n", oracle_name(oracle)));
            }
            if let Some(retry) = run.retry {
                out.push_str(&format!("retry = {}\n", retry.render()));
            }
            if let Some(threads) = run.threads {
                out.push_str(&format!("threads = {threads}\n"));
            }
            if let Some(mins) = run.window_mins {
                out.push_str(&format!("window-mins = {mins}\n"));
            }
            if let Some(legs) = &run.legs {
                out.push_str(&format!(
                    "legs = {}\n",
                    legs.iter().map(|l| l.name()).collect::<Vec<_>>().join(", ")
                ));
            }
        }

        if !self.faults.is_empty() {
            out.push_str("\n[faults]\n");
            for rung in &self.faults {
                out.push_str(&format!(
                    "rung = {} {} {} {}\n",
                    rung.name, rung.corruption, rung.crash_fraction, rung.outages
                ));
            }
        }

        if let Some(contention) = &self.contention {
            out.push_str("\n[contention]\n");
            if let Some(budget) = contention.budget {
                out.push_str(&format!("budget = {budget}\n"));
            }
            if !contention.loads.is_empty() {
                out.push_str(&format!(
                    "loads = {}\n",
                    contention
                        .loads
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            if !contention.priorities.is_empty() {
                out.push_str(&format!(
                    "priorities = {}\n",
                    contention
                        .priorities
                        .iter()
                        .map(|&p| priority_name(p))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }

        if let Some(link) = &self.link {
            out.push_str("\n[link]\n");
            out.push_str(&format!("bandwidth = {}\n", join_f64(&link.bandwidth)));
            if let Some(bytes) = link.refresh_bytes {
                out.push_str(&format!("refresh-bytes = {bytes}\n"));
            }
            if let Some(depth) = link.queue_depth {
                out.push_str(&format!("queue-depth = {depth}\n"));
            }
        }

        if !self.matrix.is_empty() {
            out.push_str("\n[matrix]\n");
            for axis in &self.matrix {
                out.push_str(&format!("{} = {}\n", axis.key, join_f64(&axis.values)));
            }
        }

        let output = &self.output;
        if output != &OutputSpec::default() {
            out.push_str("\n[output]\n");
            if let Some(golden) = &output.golden {
                out.push_str(&format!("golden = {golden}\n"));
            }
            if output.no_wall {
                out.push_str("no-wall = true\n");
            }
            if let Some(tables) = &output.tables.0 {
                out.push_str(&format!("tables = {}\n", tables.join(", ")));
            }
        }
        out
    }
}
