//! The scenario executor: dispatches a compiled [`CampaignPlan`] to the
//! experiment driver of its campaign kind, and hosts the shared binary
//! entry point ([`spec_main`]) every `exp_*` wrapper uses.

use std::process::exit;

use crate::experiments as e;
use crate::runner::{cli_init, CliOverrides};

use super::plan::{compile, CampaignPlan};
use super::spec::{parse, CampaignKind, ScenarioError};

/// Every committed spec, embedded so the `exp_*` binaries run their
/// scenario without touching the filesystem (`--spec FILE` overrides).
pub const EMBEDDED: &[(&str, &str)] = &[
    ("e01", include_str!("../../../../specs/e01.scn")),
    ("e02", include_str!("../../../../specs/e02.scn")),
    ("e03", include_str!("../../../../specs/e03.scn")),
    ("e04", include_str!("../../../../specs/e04.scn")),
    ("e05", include_str!("../../../../specs/e05.scn")),
    ("e06", include_str!("../../../../specs/e06.scn")),
    ("e07", include_str!("../../../../specs/e07.scn")),
    ("e08", include_str!("../../../../specs/e08.scn")),
    ("e09", include_str!("../../../../specs/e09.scn")),
    ("e10", include_str!("../../../../specs/e10.scn")),
    ("e11", include_str!("../../../../specs/e11.scn")),
    ("e12", include_str!("../../../../specs/e12.scn")),
    ("e13", include_str!("../../../../specs/e13.scn")),
    ("e14", include_str!("../../../../specs/e14.scn")),
    ("e15", include_str!("../../../../specs/e15.scn")),
    ("e16", include_str!("../../../../specs/e16.scn")),
    ("e17", include_str!("../../../../specs/e17.scn")),
    ("e18", include_str!("../../../../specs/e18.scn")),
    ("e19", include_str!("../../../../specs/e19.scn")),
];

/// The embedded spec text of the named scenario.
#[must_use]
pub fn embedded(id: &str) -> Option<&'static str> {
    EMBEDDED
        .iter()
        .find(|(name, _)| *name == id)
        .map(|&(_, text)| text)
}

/// Parses and compiles one spec document under the given overrides.
///
/// # Errors
///
/// Returns the first parse or plan [`ScenarioError`].
pub fn compile_str(text: &str, overrides: &CliOverrides) -> Result<CampaignPlan, ScenarioError> {
    compile(&parse(text)?, overrides)
}

/// Runs a compiled plan on the experiment driver of its campaign kind.
pub fn execute(plan: &CampaignPlan) {
    match plan.spec.campaign {
        CampaignKind::TraceStats => e::e01_trace_stats::run_plan(plan),
        CampaignKind::DelayValidation => e::e02_delay_validation::run_plan(plan),
        CampaignKind::FreshnessTime => e::e03_freshness_time::run_plan(plan),
        CampaignKind::FreshnessRequirement => e::e04_freshness_requirement::run_plan(plan),
        CampaignKind::RefreshPeriod => e::e05_refresh_period::run_plan(plan),
        CampaignKind::Overhead => e::e06_overhead::run_plan(plan),
        CampaignKind::CachingNodes => e::e07_caching_nodes::run_plan(plan),
        CampaignKind::Ablation => e::e08_ablation::run_plan(plan),
        CampaignKind::DataAccess => e::e09_data_access::run_plan(plan),
        CampaignKind::RoutingBaselines => e::e10_routing_baselines::run_plan(plan),
        CampaignKind::Robustness => e::e11_robustness::run_plan(plan),
        CampaignKind::LoadDistribution => e::e12_load_distribution::run_plan(plan),
        CampaignKind::FaultTolerance => e::e13_fault_tolerance::run_plan(plan),
        CampaignKind::JointWorld => e::e14_joint_world::run_plan(plan),
        CampaignKind::Scalability => e::e15_scalability::run_plan(plan),
        CampaignKind::RealTraces => e::e16_real_traces::run_plan(plan),
        CampaignKind::Chaos => e::e17_chaos::run_plan(plan),
        CampaignKind::Runtime => e::e18_runtime::run_plan(plan),
        CampaignKind::Bandwidth => e::e19_bandwidth::run_plan(plan),
    }
}

/// Compiles and runs one scenario from a spec file on disk.
///
/// # Errors
///
/// Returns the diagnostic, prefixed with the file path, when the file is
/// unreadable or the spec does not compile.
pub fn run_file(path: &str, overrides: &CliOverrides) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("{path}: {err}"))?;
    let plan = compile_str(&text, overrides).map_err(|err| format!("{path}: {err}"))?;
    execute(&plan);
    Ok(())
}

/// The shared entry point of every `exp_*` binary: parse the command line
/// strictly (exit 2 on bad flags), then either run `legacy` (the
/// hand-written code path, selected by `--legacy`) or compile and execute
/// the scenario — from `--spec FILE` when given, else the committed spec
/// embedded under `id`.
///
/// # Panics
///
/// Panics if `id` names no embedded spec (a harness bug, not user error).
pub fn spec_main(id: &str, legacy: fn()) {
    let overrides = cli_init();
    if overrides.legacy {
        legacy();
        return;
    }
    match &overrides.spec {
        Some(path) => {
            if let Err(msg) = run_file(path, overrides) {
                eprintln!("error: {msg}");
                exit(1);
            }
        }
        None => {
            let text = embedded(id).unwrap_or_else(|| panic!("no embedded spec `{id}`"));
            match compile_str(text, overrides) {
                Ok(plan) => execute(&plan),
                Err(err) => {
                    eprintln!("error: specs/{id}.scn: {err}");
                    exit(1);
                }
            }
        }
    }
}
