//! Property test: the parallel multi-seed runner produces results
//! bit-identical to a serial map over the same seeds, in seed order —
//! including the merged, CI-formatted report rows the experiments print.

use omn_bench::{fmt_ci, per_seed};
use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};
use proptest::prelude::*;

/// A small but real end-to-end freshness run for one seed; returns exact
/// bit patterns so any cross-thread nondeterminism is caught.
fn run_one(seed: u64) -> (u64, u64, u64) {
    let factory = RngFactory::new(seed);
    let trace = generate_pairwise(
        &PairwiseConfig::new(10, SimDuration::from_days(1.0)).mean_rate(1.0 / 1800.0),
        &factory,
    );
    let sim = FreshnessSimulator::new(FreshnessConfig {
        caching_nodes: 3,
        query_count: 20,
        ..FreshnessConfig::default()
    });
    let report = sim.run(&trace, SchemeChoice::Hierarchical, &factory);
    (
        report.mean_freshness.to_bits(),
        report.requirement_satisfaction.to_bits(),
        report.transmissions,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_run_matches_serial_bit_for_bit(
        seeds in proptest::collection::vec(0_u64..1000, 1..6),
    ) {
        let serial: Vec<(u64, u64, u64)> = seeds.iter().map(|&s| run_one(s)).collect();
        let parallel = per_seed(&seeds, run_one);
        prop_assert_eq!(&serial, &parallel);

        // The merged report row (what the experiment tables print) must
        // also be identical.
        let fresh_serial: Vec<f64> =
            serial.iter().map(|&(f, _, _)| f64::from_bits(f)).collect();
        let fresh_parallel: Vec<f64> =
            parallel.iter().map(|&(f, _, _)| f64::from_bits(f)).collect();
        prop_assert_eq!(fmt_ci(&fresh_serial, 6), fmt_ci(&fresh_parallel, 6));
    }
}
