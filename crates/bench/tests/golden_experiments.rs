//! Golden-value tests pinning the headline numbers of E2 (analysis vs
//! simulation), E3 (freshness over time), E14 (joint-world contention),
//! E15 (streaming scalability), E16 (real-trace ingestion and
//! calibration), E17 (chaos ladder), E18 (async-runtime
//! cross-validation) and E19 (bandwidth ladder) against committed golden
//! files, plus the streamed-vs-materialized identity check of the
//! pull-based driver.
//!
//! Each golden file's *name* comes from the committed scenario spec's
//! `[output] golden = …` field (resolved by
//! [`omn_bench::golden::golden_name`]), so the spec and the test can
//! never disagree about where a campaign's numbers are pinned.
//!
//! The pinned values are written with full bit patterns, so any change to
//! the simulation kernel, the RNG stream layout, or the schemes that
//! perturbs these runs fails loudly. To (re-)record the goldens after an
//! intentional change:
//!
//! ```text
//! OMN_BLESS_GOLDEN=1 cargo test -p omn-bench --test golden_experiments
//! ```
//!
//! When no golden file has been recorded yet the comparison is skipped
//! (with a note), but the always-on invariant assertions still run. Set
//! `OMN_REQUIRE_GOLDEN=1` (CI does) to turn a missing golden file into a
//! hard failure instead, so the suite can never pass vacuously.

use omn_bench::experiments::e14_joint_world::{joint_run, BUDGET, LOADS};
use omn_bench::experiments::e15_scalability::{run_point, shards_for};
use omn_bench::experiments::e16_real_traces::{repo_root, seed_point};
use omn_bench::experiments::e17_chaos::{chaos_run, default_ladder};
use omn_bench::experiments::e18_runtime::{assert_cross, cross_point};
use omn_bench::experiments::e19_bandwidth;
use omn_bench::experiments::{config_for, trace_for};
use omn_bench::golden::{check_golden, golden_name, line};
use omn_caching::policy::PolicyChoice;
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_contacts::{ContactGraph, TraceSource};
use omn_core::analysis;
use omn_core::joint::ContentionPriority;
use omn_core::protocol::ProtocolMode;
use omn_core::scheme::{HierarchicalConfig, HierarchicalScheme};
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

#[test]
fn e2_headline_numbers() {
    // Mirrors the E2 setup: pairwise-exponential trace where the
    // analytical assumptions hold by construction.
    let factory = RngFactory::new(17);
    let trace = generate_pairwise(
        &PairwiseConfig::new(40, SimDuration::from_days(8.0))
            .mean_rate(1.0 / 7200.0)
            .rate_shape(1.5),
        &factory,
    );
    let config = FreshnessConfig {
        caching_nodes: 8,
        refresh_period: SimDuration::from_hours(12.0),
        query_count: 0,
        ..FreshnessConfig::default()
    };
    let sim = FreshnessSimulator::new(config);
    let (source, members) = sim.select_roles(&trace);
    let graph = ContactGraph::from_trace(&trace);
    let mut scheme = HierarchicalScheme::new(HierarchicalConfig {
        replication: Some(config.requirement),
        ..HierarchicalConfig::default()
    });
    let report = sim.run_with_roles(&trace, source, &members, &mut scheme, &factory);
    let summary = analysis::analyze(
        scheme.hierarchy().expect("built"),
        scheme.plans(),
        &graph,
        config.refresh_period.as_secs(),
        config.requirement,
    );

    // Always-on invariants, independent of the recorded golden.
    assert!((0.0..=1.0).contains(&report.mean_freshness));
    assert!((0.0..=1.0).contains(&report.requirement_satisfaction));
    assert!((0.0..=1.0).contains(&summary.mean_freshness));
    assert!(report.transmissions > 0);
    assert!(report.version_count > 0);

    let mut out = String::new();
    line(&mut out, "sim_mean_freshness", report.mean_freshness);
    line(
        &mut out,
        "sim_requirement_satisfaction",
        report.requirement_satisfaction,
    );
    line(&mut out, "analysis_mean_freshness", summary.mean_freshness);
    line(
        &mut out,
        "analysis_within_deadline",
        summary.mean_within_deadline,
    );
    line(&mut out, "transmissions", report.transmissions as f64);
    check_golden(&golden_name("e02"), &out);
}

#[test]
fn e3_headline_numbers() {
    // One seed of the E3 configuration: the full-size conference trace,
    // hierarchical vs epidemic vs no-refresh.
    let preset = TracePreset::InfocomLike;
    let seed = 11;
    let trace = trace_for(preset, seed);
    let config = config_for(preset);
    let factory = RngFactory::new(seed);

    let run = |choice| FreshnessSimulator::new(config).run(&trace, choice, &factory);
    let hier = run(SchemeChoice::Hierarchical);
    let epi = run(SchemeChoice::Epidemic);
    let none = run(SchemeChoice::NoRefresh);

    // Always-on invariants: refreshing must beat not refreshing.
    for r in [&hier, &epi, &none] {
        assert!((0.0..=1.0).contains(&r.mean_freshness));
        assert!((0.0..=1.0).contains(&r.requirement_satisfaction));
    }
    assert!(hier.mean_freshness > none.mean_freshness);
    assert!(epi.mean_freshness > none.mean_freshness);
    assert!(hier.transmissions > 0);

    let mut out = String::new();
    line(&mut out, "hierarchical_mean_freshness", hier.mean_freshness);
    line(
        &mut out,
        "hierarchical_satisfaction",
        hier.requirement_satisfaction,
    );
    line(
        &mut out,
        "hierarchical_transmissions",
        hier.transmissions as f64,
    );
    line(&mut out, "epidemic_mean_freshness", epi.mean_freshness);
    line(&mut out, "no_refresh_mean_freshness", none.mean_freshness);
    check_golden(&golden_name("e03"), &out);
}

#[test]
fn e14_headline_numbers() {
    // One seed of the E14 configuration: the joint world under a tight
    // per-contact budget, sweeping the query load under query-first
    // priority (the contention-sensitive direction), plus a refresh-first
    // run at the heaviest load.
    let preset = TracePreset::InfocomLike;
    let seed = 11;

    let swept: Vec<_> = LOADS
        .iter()
        .map(|&load| {
            joint_run(
                preset,
                seed,
                load,
                Some(BUDGET),
                ContentionPriority::QueryFirst,
            )
        })
        .collect();
    let refresh_first = joint_run(
        preset,
        seed,
        LOADS[LOADS.len() - 1],
        Some(BUDGET),
        ContentionPriority::RefreshFirst,
    );

    // Always-on invariants, independent of the recorded golden.
    for r in swept.iter().chain([&refresh_first]) {
        assert!(
            r.max_contact_used <= BUDGET,
            "contact carried {} transfers over a budget of {BUDGET}",
            r.max_contact_used
        );
        assert!(r.access.satisfied_fresh <= r.access.satisfied);
    }
    // The monotone trade-off: under a fixed budget, raising the query load
    // consumes capacity refresh traffic needs, so mean cache freshness
    // does not increase, and neither does the fresh-access ratio between
    // the positive loads (at load 0 the ratio is trivially 0).
    for w in swept.windows(2) {
        let (lo, hi) = (&w[0], &w[1]);
        let (f_lo, f_hi) = (
            lo.mean_freshness().expect("items ran"),
            hi.mean_freshness().expect("items ran"),
        );
        assert!(
            f_hi <= f_lo,
            "freshness increased with query load: {f_lo} -> {f_hi}"
        );
        if lo.access.created > 0 {
            assert!(
                hi.fresh_access_ratio() <= lo.fresh_access_ratio(),
                "fresh-access ratio increased with query load: {} -> {}",
                lo.fresh_access_ratio(),
                hi.fresh_access_ratio()
            );
        }
    }
    // Refresh-first protects freshness relative to query-first at the same
    // load.
    let heaviest = swept.last().expect("loads");
    assert!(
        refresh_first.mean_freshness().expect("items ran")
            >= heaviest.mean_freshness().expect("items ran")
    );

    let mut out = String::new();
    for (r, &load) in swept.iter().zip(LOADS.iter()) {
        line(
            &mut out,
            &format!("query_first_load{load}_mean_freshness"),
            r.mean_freshness().expect("items ran"),
        );
        line(
            &mut out,
            &format!("query_first_load{load}_fresh_access"),
            r.fresh_access_ratio(),
        );
        line(
            &mut out,
            &format!("query_first_load{load}_deferred"),
            r.access.extras.get("budget-deferred-transmissions") as f64,
        );
    }
    line(
        &mut out,
        "refresh_first_load1200_mean_freshness",
        refresh_first.mean_freshness().expect("items ran"),
    );
    line(
        &mut out,
        "refresh_first_load1200_success",
        refresh_first.access.success_ratio(),
    );
    check_golden(&golden_name("e14"), &out);
}

#[test]
fn e15_headline_numbers() {
    // The smallest point of the E15 sweep, one seed per scheme. Wall-clock
    // is deliberately excluded: only simulation outputs are pinned.
    let nodes = 100;
    let seed = 11;
    let hier = run_point(nodes, SchemeChoice::Hierarchical, seed);
    let epi = run_point(nodes, SchemeChoice::Epidemic, seed);

    // Always-on invariants, independent of the recorded golden.
    for p in [&hier, &epi] {
        assert!((0.0..=1.0).contains(&p.report.mean_freshness));
        assert!(p.stats.contacts_total > 0);
        // The memory-model claim: the pull pipeline never holds more than
        // the generator's per-stream lookahead plus the driver's bounded
        // window — far below (and independent of) the stream volume.
        assert!(
            p.stats.peak_resident < p.stats.contacts_total,
            "peak residency {} is not below the stream volume {}",
            p.stats.peak_resident,
            p.stats.contacts_total
        );
        assert!(
            p.stats.peak_resident <= shards_for(nodes) + 8,
            "peak residency {} exceeds the O(shards) bound",
            p.stats.peak_resident
        );
    }
    // Both schemes pull the identical contact stream.
    assert_eq!(hier.stats.contacts_total, epi.stats.contacts_total);
    assert!(epi.report.transmissions > hier.report.transmissions);

    let mut out = String::new();
    line(&mut out, "hier_mean_freshness", hier.report.mean_freshness);
    line(
        &mut out,
        "hier_satisfaction",
        hier.report.requirement_satisfaction,
    );
    line(
        &mut out,
        "hier_transmissions",
        hier.report.transmissions as f64,
    );
    line(&mut out, "epi_mean_freshness", epi.report.mean_freshness);
    line(&mut out, "contacts_total", hier.stats.contacts_total as f64);
    line(&mut out, "peak_resident", hier.stats.peak_resident as f64);
    check_golden(&golden_name("e15"), &out);
}

#[test]
fn e16_headline_numbers() {
    // The vendored MIT Reality fixture, one seed: ingestion is pinned by
    // the registry checksum, so everything downstream — the fitted model,
    // the calibration check, and the freshness runs on the real and the
    // fitted-synthetic trace — is deterministic. Wall-clock throughput is
    // deliberately excluded.
    let specs = omn_traces::registry(&repo_root());
    let spec = specs
        .iter()
        .find(|s| s.name == "mit-reality")
        .expect("vendored reality fixture is registered");
    let ingested = spec.ingest().expect("fixture ingests cleanly");
    let cal = omn_traces::Calibration::fit(&ingested.trace);
    let point = seed_point(&ingested.trace, &cal, 11);

    // Always-on invariants, independent of the recorded golden.
    assert!(ingested.stats.merged > 0, "sighting runs must merge");
    assert_eq!(ingested.stats.dropped(), 0, "{:?}", ingested.stats);
    assert!(cal.mean_rate > 0.0 && cal.pair_coverage > 0.5);
    assert!(
        (0.2..=5.0).contains(&point.check.intensity_ratio),
        "calibrated intensity ratio {} is far from 1",
        point.check.intensity_ratio
    );
    for r in point.real.iter().chain(point.synth.iter()) {
        assert!((0.0..=1.0).contains(&r.mean_freshness));
        assert!((0.0..=1.0).contains(&r.requirement_satisfaction));
        assert!(r.transmissions > 0);
    }
    // Epidemic flooding is at least as fresh as the tree scheme on the
    // real trace, at higher overhead.
    assert!(point.real[1].mean_freshness >= point.real[0].mean_freshness);
    assert!(point.real[1].transmissions > point.real[0].transmissions);

    let mut out = String::new();
    line(&mut out, "real_contacts", ingested.trace.len() as f64);
    line(&mut out, "real_intensity", point.check.real_intensity);
    line(&mut out, "fitted_mean_rate", cal.mean_rate);
    line(&mut out, "fitted_rate_shape", cal.rate_shape);
    line(
        &mut out,
        "fitted_exp_ks",
        cal.ict_ks_exponential.expect("repeat pairs exist"),
    );
    line(&mut out, "synth_intensity", point.check.synth_intensity);
    line(
        &mut out,
        "ict_ks",
        point
            .check
            .ict_ks
            .expect("both traces have repeat meetings"),
    );
    line(
        &mut out,
        "real_hier_mean_freshness",
        point.real[0].mean_freshness,
    );
    line(
        &mut out,
        "real_epi_mean_freshness",
        point.real[1].mean_freshness,
    );
    line(
        &mut out,
        "real_hier_transmissions",
        point.real[0].transmissions as f64,
    );
    line(
        &mut out,
        "synth_hier_mean_freshness",
        point.synth[0].mean_freshness,
    );
    check_golden(&golden_name("e16"), &out);
}

#[test]
fn e17_headline_numbers() {
    // One seed of the E17 chaos ladder: every rung runs with the full
    // oracle suite in campaign mode, so the pinned numbers double as an
    // invariant audit — any change to the fault streams, the retry
    // policy's deterministic jitter, or the crash-recovery path perturbs
    // these runs and fails loudly.
    let preset = TracePreset::InfocomLike;
    let seed = 11;
    let runs: Vec<_> = default_ladder()
        .into_iter()
        .map(|rung| {
            let r = chaos_run(preset, seed, &rung);
            (rung, r)
        })
        .collect();

    // Always-on invariants, independent of the recorded golden.
    for (level, r) in &runs {
        assert!((0.0..=1.0).contains(&r.mean_freshness));
        assert!(
            r.oracle.is_clean(),
            "invariant violations at rung {}: {:?}",
            level.name,
            r.oracle
        );
        // Every corrupted transfer is a stale replay the receiver must
        // reject — none may ever be absorbed.
        assert_eq!(
            r.extras.get("corrupted-transfers"),
            r.extras.get("corrupted-rejections"),
            "a stale replay was absorbed at rung {}",
            level.name
        );
    }
    // The single-seed envelope endpoints: extreme chaos must not beat the
    // fault-free baseline (per-rung monotonicity is asserted over seed
    // means inside `e17_chaos::run`, where the noise averages out).
    let zero = &runs.first().expect("ladder is non-empty").1;
    let extreme = &runs.last().expect("ladder is non-empty").1;
    assert!(extreme.mean_freshness <= zero.mean_freshness);
    // The adversarial rungs actually fired all three fault kinds.
    assert!(extreme.extras.get("corrupted-transfers") > 0);
    assert!(extreme.extras.get("crash-rejoins") > 0);
    assert!(extreme.extras.get("rejoin-events") > extreme.extras.get("crash-rejoins"));

    let mut out = String::new();
    for (level, r) in &runs {
        line(
            &mut out,
            &format!("{}_mean_freshness", level.name),
            r.mean_freshness,
        );
        line(
            &mut out,
            &format!("{}_corrupted_rejections", level.name),
            r.extras.get("corrupted-rejections") as f64,
        );
        line(
            &mut out,
            &format!("{}_crash_rejoins", level.name),
            r.extras.get("crash-rejoins") as f64,
        );
        line(
            &mut out,
            &format!("{}_oracle_violations", level.name),
            r.oracle.total() as f64,
        );
    }
    check_golden(&golden_name("e17"), &out);
}

#[test]
fn e18_headline_numbers() {
    // One seed of the E18 cross-validation: the async node runtime in
    // lockstep mode against the DES, for both locally-decidable protocol
    // modes. The pinned values are the *runtime's* numbers; the always-on
    // assertion is that they coincide exactly with the DES, so the golden
    // doubles as a pin on both executions. Wall-clock and the firehose
    // throughput sweep are deliberately excluded — only deterministic
    // observables are recorded.
    let seed = 11;
    let mut out = String::new();
    for (mode, name) in [
        (ProtocolMode::HierTree, "tree"),
        (ProtocolMode::Epidemic, "epidemic"),
    ] {
        let point = cross_point(seed, mode);
        assert_cross(&point, &format!("golden seed {seed} {name}"));
        line(
            &mut out,
            &format!("{name}_mean_freshness"),
            point.rt.mean_freshness,
        );
        line(
            &mut out,
            &format!("{name}_transmissions"),
            point.rt.transmissions as f64,
        );
        line(
            &mut out,
            &format!("{name}_replicas"),
            point.rt.replicas as f64,
        );
        line(
            &mut out,
            &format!("{name}_frames_received"),
            point.rt.messages_received as f64,
        );
        line(
            &mut out,
            &format!("{name}_version_count"),
            point.rt.version_count as f64,
        );
    }
    check_golden(&golden_name("e18"), &out);
}

#[test]
fn e19_headline_numbers() {
    // One seed of the E19 bandwidth ladder under LRU at the E14 cache
    // capacity, plus one EWMA point under eviction pressure. The
    // always-on assertions are the campaign's two contracts: the
    // unlimited rung is bit-identical to E14's slot-counting run (no
    // byte ever denied, no frame ever queued, no extra randomness), and
    // every finite rung respects its byte capacities with a clean
    // bandwidth oracle.
    let preset = TracePreset::InfocomLike;
    let seed = 11;
    let run = |bw: f64, policy, capacity| {
        e19_bandwidth::bandwidth_run(
            preset,
            seed,
            e19_bandwidth::LOAD,
            Some(e19_bandwidth::BUDGET),
            bw,
            e19_bandwidth::REFRESH_BYTES,
            e19_bandwidth::QUEUE_DEPTH,
            policy,
            capacity,
            6,
            12.0,
        )
    };

    let ladder: Vec<_> = e19_bandwidth::BANDWIDTHS
        .iter()
        .map(|&bw| (bw, run(bw, PolicyChoice::Lru, None)))
        .collect();

    // Contract 1: the unlimited rung reproduces slot counting exactly.
    let slot_only = joint_run(
        preset,
        seed,
        e19_bandwidth::LOAD,
        Some(e19_bandwidth::BUDGET),
        ContentionPriority::QueryFirst,
    );
    let (_, unlimited) = ladder.last().expect("ladder is non-empty");
    assert_eq!(
        unlimited.mean_freshness().expect("items ran").to_bits(),
        slot_only.mean_freshness().expect("items ran").to_bits(),
        "the unlimited rung diverged from E14's slot counting"
    );
    assert_eq!(
        unlimited.access.success_ratio().to_bits(),
        slot_only.access.success_ratio().to_bits()
    );
    assert_eq!(
        unlimited.access.extras.get("byte-deferred-transmissions"),
        0,
        "an unlimited link byte-denied a hop"
    );
    let stats = unlimited.link.expect("link model attached");
    assert_eq!(stats.enqueued_msgs, 0, "an unlimited link queued a frame");

    // Contract 2: every rung is oracle-clean, and starving the link can
    // only hurt: the bottom rung must not beat the unlimited one.
    for (bw, r) in &ladder {
        assert!(
            r.oracle.is_clean(),
            "oracle violations at {bw} B/s: {:?}",
            r.oracle
        );
        assert!(r.access.satisfied_fresh <= r.access.satisfied);
    }
    let (_, starved) = ladder.first().expect("ladder is non-empty");
    assert!(
        starved.mean_freshness().expect("items ran")
            <= unlimited.mean_freshness().expect("items ran")
    );
    assert!(starved.access.success_ratio() <= unlimited.access.success_ratio());

    let ewma = run(
        e19_bandwidth::BANDWIDTHS[2],
        PolicyChoice::Ewma,
        Some(e19_bandwidth::POLICY_CAPACITY),
    );
    assert!(ewma.oracle.is_clean());

    let mut out = String::new();
    for (bw, r) in &ladder {
        let label = if *bw == 0.0 {
            "unlimited".to_owned()
        } else {
            format!("bw{bw}")
        };
        line(
            &mut out,
            &format!("{label}_mean_freshness"),
            r.mean_freshness().expect("items ran"),
        );
        line(
            &mut out,
            &format!("{label}_success"),
            r.access.success_ratio(),
        );
        line(
            &mut out,
            &format!("{label}_byte_deferred"),
            r.access.extras.get("byte-deferred-transmissions") as f64,
        );
        let stats = r.link.expect("link model attached");
        line(
            &mut out,
            &format!("{label}_queued"),
            stats.enqueued_msgs as f64,
        );
        line(
            &mut out,
            &format!("{label}_peak_bytes"),
            r.max_contact_bytes as f64,
        );
    }
    line(
        &mut out,
        "ewma_capacity2_mean_freshness",
        ewma.mean_freshness().expect("items ran"),
    );
    line(
        &mut out,
        "ewma_capacity2_success",
        ewma.access.success_ratio(),
    );
    check_golden(&golden_name("e19"), &out);
}

#[test]
fn streamed_run_matches_materialized_run() {
    // The tentpole identity: driving a simulation from a streamed
    // `TraceSource` must be bit-identical to the materialized
    // `run_with_roles` path on the same trace — same roles, same scheme,
    // same RNG factory.
    let factory = RngFactory::new(17);
    let trace = generate_pairwise(
        &PairwiseConfig::new(40, SimDuration::from_days(8.0))
            .mean_rate(1.0 / 7200.0)
            .rate_shape(1.5),
        &factory,
    );
    let config = FreshnessConfig {
        caching_nodes: 8,
        refresh_period: SimDuration::from_hours(12.0),
        query_count: 120,
        ..FreshnessConfig::default()
    };
    let sim = FreshnessSimulator::new(config);
    let (source, members) = sim.select_roles(&trace);
    let oracle = ContactGraph::from_trace(&trace);

    let mut scheme_a = sim.make_scheme(SchemeChoice::Hierarchical);
    let materialized = sim.run_with_roles(&trace, source, &members, scheme_a.as_mut(), &factory);
    let mut scheme_b = sim.make_scheme(SchemeChoice::Hierarchical);
    let (streamed, stats) = sim.run_streamed(
        TraceSource::new(&trace),
        &oracle,
        source,
        &members,
        scheme_b.as_mut(),
        &factory,
    );

    assert_eq!(stats.contacts_total, trace.len());
    assert_eq!(
        materialized.mean_freshness.to_bits(),
        streamed.mean_freshness.to_bits()
    );
    assert_eq!(
        materialized.requirement_satisfaction.to_bits(),
        streamed.requirement_satisfaction.to_bits()
    );
    assert_eq!(
        materialized.mean_availability.to_bits(),
        streamed.mean_availability.to_bits()
    );
    assert_eq!(materialized.transmissions, streamed.transmissions);
    assert_eq!(materialized.replicas, streamed.replicas);
    assert_eq!(materialized.version_count, streamed.version_count);
    assert_eq!(materialized.queries_served, streamed.queries_served);
    assert_eq!(materialized.queries_fresh, streamed.queries_fresh);
    assert_eq!(
        materialized.per_node_transmissions,
        streamed.per_node_transmissions
    );
}
