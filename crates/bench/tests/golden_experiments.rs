//! Golden-value tests pinning the headline numbers of E2 (analysis vs
//! simulation) and E3 (freshness over time) against committed golden
//! files.
//!
//! The pinned values are written with full bit patterns, so any change to
//! the simulation kernel, the RNG stream layout, or the schemes that
//! perturbs these runs fails loudly. To (re-)record the goldens after an
//! intentional change:
//!
//! ```text
//! OMN_BLESS_GOLDEN=1 cargo test -p omn-bench --test golden_experiments
//! ```
//!
//! When no golden file has been recorded yet the comparison is skipped
//! (with a note), but the always-on invariant assertions still run.

use std::fmt::Write as _;
use std::path::PathBuf;

use omn_bench::experiments::{config_for, trace_for};
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_contacts::ContactGraph;
use omn_core::analysis;
use omn_core::scheme::{HierarchicalConfig, HierarchicalScheme};
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_sim::{RngFactory, SimDuration};

/// One pinned scalar: label, human-readable value, exact bit pattern.
fn line(out: &mut String, label: &str, v: f64) {
    writeln!(out, "{label} {v:.12} bits={:016x}", v.to_bits()).unwrap();
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `rendered` against the committed golden file, or records it
/// when `OMN_BLESS_GOLDEN` is set.
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("OMN_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    match std::fs::read_to_string(&path) {
        Ok(expected) => assert_eq!(
            expected, rendered,
            "golden mismatch for {name}; if the change is intentional, \
             re-record with OMN_BLESS_GOLDEN=1"
        ),
        Err(_) => eprintln!("note: golden file {name} not recorded yet (OMN_BLESS_GOLDEN=1 to pin)"),
    }
}

#[test]
fn e2_headline_numbers() {
    // Mirrors the E2 setup: pairwise-exponential trace where the
    // analytical assumptions hold by construction.
    let factory = RngFactory::new(17);
    let trace = generate_pairwise(
        &PairwiseConfig::new(40, SimDuration::from_days(8.0))
            .mean_rate(1.0 / 7200.0)
            .rate_shape(1.5),
        &factory,
    );
    let config = FreshnessConfig {
        caching_nodes: 8,
        refresh_period: SimDuration::from_hours(12.0),
        query_count: 0,
        ..FreshnessConfig::default()
    };
    let sim = FreshnessSimulator::new(config);
    let (source, members) = sim.select_roles(&trace);
    let graph = ContactGraph::from_trace(&trace);
    let mut scheme = HierarchicalScheme::new(HierarchicalConfig {
        replication: Some(config.requirement),
        ..HierarchicalConfig::default()
    });
    let report = sim.run_with_roles(&trace, source, &members, &mut scheme, &factory);
    let summary = analysis::analyze(
        scheme.hierarchy().expect("built"),
        scheme.plans(),
        &graph,
        config.refresh_period.as_secs(),
        config.requirement,
    );

    // Always-on invariants, independent of the recorded golden.
    assert!((0.0..=1.0).contains(&report.mean_freshness));
    assert!((0.0..=1.0).contains(&report.requirement_satisfaction));
    assert!((0.0..=1.0).contains(&summary.mean_freshness));
    assert!(report.transmissions > 0);
    assert!(report.version_count > 0);

    let mut out = String::new();
    line(&mut out, "sim_mean_freshness", report.mean_freshness);
    line(&mut out, "sim_requirement_satisfaction", report.requirement_satisfaction);
    line(&mut out, "analysis_mean_freshness", summary.mean_freshness);
    line(&mut out, "analysis_within_deadline", summary.mean_within_deadline);
    line(&mut out, "transmissions", report.transmissions as f64);
    check_golden("e2_headline.txt", &out);
}

#[test]
fn e3_headline_numbers() {
    // One seed of the E3 configuration: the full-size conference trace,
    // hierarchical vs epidemic vs no-refresh.
    let preset = TracePreset::InfocomLike;
    let seed = 11;
    let trace = trace_for(preset, seed);
    let config = config_for(preset);
    let factory = RngFactory::new(seed);

    let run = |choice| FreshnessSimulator::new(config).run(&trace, choice, &factory);
    let hier = run(SchemeChoice::Hierarchical);
    let epi = run(SchemeChoice::Epidemic);
    let none = run(SchemeChoice::NoRefresh);

    // Always-on invariants: refreshing must beat not refreshing.
    for r in [&hier, &epi, &none] {
        assert!((0.0..=1.0).contains(&r.mean_freshness));
        assert!((0.0..=1.0).contains(&r.requirement_satisfaction));
    }
    assert!(hier.mean_freshness > none.mean_freshness);
    assert!(epi.mean_freshness > none.mean_freshness);
    assert!(hier.transmissions > 0);

    let mut out = String::new();
    line(&mut out, "hierarchical_mean_freshness", hier.mean_freshness);
    line(&mut out, "hierarchical_satisfaction", hier.requirement_satisfaction);
    line(&mut out, "hierarchical_transmissions", hier.transmissions as f64);
    line(&mut out, "epidemic_mean_freshness", epi.mean_freshness);
    line(&mut out, "no_refresh_mean_freshness", none.mean_freshness);
    check_golden("e3_headline.txt", &out);
}
