//! Front-end and planner tests for the scenario compiler: line/field
//! diagnostics on broken specs, planner validation, and the canonical
//! parse → render → parse round-trip (pinned by a proptest).

use omn_bench::scenario::{compile, parse, CampaignKind, ScenarioError, ScenarioSpec};
use omn_bench::CliOverrides;
use proptest::prelude::*;

fn parse_err(text: &str) -> ScenarioError {
    parse(text).expect_err("spec should be rejected")
}

fn compile_err(text: &str) -> ScenarioError {
    let spec = parse(text).expect("spec should parse");
    compile(&spec, &CliOverrides::default()).expect_err("spec should fail to compile")
}

#[test]
fn missing_header_is_line_zero() {
    // A comment-only file has no offending line, so the diagnostic is
    // positioned at line 0 (whole file) and renders without a prefix.
    let err = parse_err("# nothing but a comment\n");
    assert_eq!(err.line, 0);
    assert_eq!(err.field, "scenario");
    assert!(err.message.contains("missing `scenario <name>` header"));
    assert_eq!(err.to_string(), format!("scenario: {}", err.message));
}

#[test]
fn non_header_first_line_cites_line_one() {
    let err = parse_err("title = no header\n");
    assert_eq!(err.line, 1);
    assert_eq!(err.field, "scenario");
    assert!(err.message.contains("must start with `scenario <name>`"));
}

#[test]
fn unknown_run_key_names_line_and_field() {
    let err = parse_err(
        "scenario t\n\
         campaign = chaos\n\
         \n\
         [run]\n\
         frobnicate = 1\n",
    );
    assert_eq!(err.line, 5);
    assert_eq!(err.field, "[run] frobnicate");
    assert!(err.message.contains("unknown key in [run]"));
    assert_eq!(
        err.to_string(),
        "line 5: [run] frobnicate: unknown key in [run]"
    );
}

#[test]
fn bad_matrix_value_names_line_and_field() {
    let err = parse_err(
        "scenario t\n\
         campaign = fault-tolerance\n\
         \n\
         [matrix]\n\
         loss = 0.1, wat\n",
    );
    assert_eq!(err.line, 5);
    assert_eq!(err.field, "[matrix] loss");
    assert!(err.message.contains("expected a number, got `wat`"));
}

#[test]
fn duplicate_matrix_axis_rejected() {
    let err = parse_err(
        "scenario t\n\
         campaign = fault-tolerance\n\
         \n\
         [matrix]\n\
         loss = 0.1\n\
         loss = 0.2\n",
    );
    assert_eq!(err.line, 6);
    assert_eq!(err.field, "[matrix] loss");
    assert!(err.message.contains("duplicate matrix axis"));
}

#[test]
fn conflicting_world_sections_cite_the_extra_key() {
    // `kind = preset` plus a trace-world `path` key: one world per
    // scenario, and the diagnostic points at the conflicting line.
    let err = parse_err(
        "scenario t\n\
         campaign = trace-stats\n\
         \n\
         [world]\n\
         kind = preset\n\
         presets = infocom-like\n\
         path = datasets/reality.csv\n",
    );
    assert_eq!(err.line, 7);
    assert_eq!(err.field, "[world] path/format");
    assert!(err.message.contains("conflicts with `kind = preset`"));
}

#[test]
fn fault_rung_probability_is_validated() {
    let err = parse_err(
        "scenario t\n\
         campaign = chaos\n\
         \n\
         [faults]\n\
         rung = broken 1.5 0 0\n",
    );
    assert_eq!(err.line, 5);
    assert_eq!(err.field, "[faults] rung");
    assert!(err
        .message
        .contains("corruption must be a probability in [0, 1]"));
}

#[test]
fn planner_rejects_wrong_world_for_campaign() {
    let err = compile_err(
        "scenario t\n\
         campaign = delay-validation\n\
         \n\
         [world]\n\
         kind = sharded\n",
    );
    assert!(err.message.contains("needs a"));
    assert!(err.message.contains("sharded"));
}

#[test]
fn planner_rejects_axis_not_allowed_for_campaign() {
    let err = compile_err(
        "scenario t\n\
         campaign = trace-stats\n\
         \n\
         [world]\n\
         kind = preset\n\
         presets = infocom-like\n\
         \n\
         [matrix]\n\
         loss = 0.1\n",
    );
    assert_eq!(err.field, "[matrix] loss");
}

#[test]
fn planner_requires_nodes_axis_for_scalability() {
    let err = compile_err(
        "scenario t\n\
         campaign = scalability\n\
         \n\
         [world]\n\
         kind = sharded\n",
    );
    assert!(err.message.contains("needs a `nodes` axis"));
}

#[test]
fn planner_requires_fault_ladder_for_chaos() {
    let err = compile_err(
        "scenario t\n\
         campaign = chaos\n\
         \n\
         [world]\n\
         kind = preset\n\
         presets = infocom-like\n",
    );
    assert!(err.message.contains("needs a fault ladder"));
}

#[test]
fn planner_requires_link_section_for_bandwidth() {
    let err = compile_err(
        "scenario t\n\
         campaign = bandwidth\n\
         \n\
         [world]\n\
         kind = preset\n\
         presets = infocom-like\n",
    );
    assert_eq!(err.field, "[link]");
    assert!(err.message.contains("needs a [link] section"));
}

#[test]
fn planner_rejects_link_on_other_campaigns() {
    let err = compile_err(
        "scenario t\n\
         campaign = trace-stats\n\
         \n\
         [world]\n\
         kind = preset\n\
         presets = infocom-like\n\
         \n\
         [link]\n\
         bandwidth = 4, 0\n",
    );
    assert_eq!(err.field, "[link]");
    assert!(err.message.contains("only `bandwidth` does"));
}

#[test]
fn planner_rejects_legs_on_other_campaigns() {
    let err = compile_err(
        "scenario t\n\
         campaign = trace-stats\n\
         \n\
         [world]\n\
         kind = preset\n\
         presets = infocom-like\n\
         \n\
         [run]\n\
         legs = lockstep\n",
    );
    assert_eq!(err.field, "[run] legs");
    assert!(err.message.contains("only `runtime` does"));
}

#[test]
fn negative_bandwidth_is_rejected_at_parse() {
    let err = parse_err(
        "scenario t\n\
         campaign = bandwidth\n\
         \n\
         [link]\n\
         bandwidth = -3\n",
    );
    assert_eq!(err.line, 5);
    assert_eq!(err.field, "[link] bandwidth");
    assert!(err.message.contains("non-negative"));
}

#[test]
fn unknown_leg_is_rejected_at_parse() {
    let err = parse_err(
        "scenario t\n\
         campaign = runtime\n\
         \n\
         [run]\n\
         legs = lockstep, warp\n",
    );
    assert_eq!(err.line, 5);
    assert_eq!(err.field, "[run] legs");
    assert!(err.message.contains("unknown leg `warp`"));
}

#[test]
fn cli_seed_override_beats_the_spec() {
    let spec = parse(
        "scenario t\n\
         campaign = trace-stats\n\
         \n\
         [world]\n\
         kind = preset\n\
         presets = infocom-like\n\
         \n\
         [run]\n\
         seeds = 1, 2, 3\n",
    )
    .expect("parses");
    let plan = compile(&spec, &CliOverrides::default()).expect("compiles");
    assert_eq!(plan.seeds(), &[1, 2, 3]);
    let overridden = CliOverrides {
        seeds: Some(vec![7, 9]),
        ..CliOverrides::default()
    };
    let plan = compile(&spec, &overridden).expect("compiles");
    assert_eq!(plan.seeds(), &[7, 9]);
}

// --- parse → render → parse round-trip ---------------------------------

const CAMPAIGNS: [&str; 19] = [
    "trace-stats",
    "delay-validation",
    "freshness-time",
    "freshness-requirement",
    "refresh-period",
    "overhead",
    "caching-nodes",
    "ablation",
    "data-access",
    "routing-baselines",
    "robustness",
    "load-distribution",
    "fault-tolerance",
    "joint-world",
    "scalability",
    "real-traces",
    "chaos",
    "runtime",
    "bandwidth",
];

const WORLDS: [&str; 5] = [
    "[world]\nkind = registry\n",
    "[world]\nkind = preset\npresets = reality-like, infocom-like\n",
    "[world]\nkind = pairwise\nnodes = 40\nspan-days = 8\nmean-interval-secs = 7200\n\
     rate-shape = 1.5\nworld-seed = 17\n",
    "[world]\nkind = sharded\n",
    "[world]\nkind = trace\npath = datasets/reality.csv\nformat = reality\n",
];

const RETRIES: [&str; 4] = [
    "",
    "retry = off\n",
    "retry = fixed(3)\n",
    "retry = exponential(4, 2h)\n",
];

const ORACLES: [&str; 4] = [
    "",
    "oracle = off\n",
    "oracle = campaign\n",
    "oracle = strict\n",
];

const LEGS: [&str; 4] = [
    "",
    "legs = lockstep\n",
    "legs = firehose\n",
    "legs = lockstep, firehose\n",
];

const LINKS: [&str; 3] = [
    "",
    "[link]\nbandwidth = 1, 16, 0\n",
    "[link]\nbandwidth = 4.5\nrefresh-bytes = 128\nqueue-depth = 32\n",
];

/// Builds a syntactically valid spec from generated parts. The parts are
/// drawn independently, so this covers world kinds × run keys × matrix
/// shapes far beyond the committed specs.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    campaign: &str,
    world: &str,
    retry: &str,
    oracle: &str,
    legs: &str,
    link: &str,
    seeds: &[u64],
    threads: usize,
    axes: &[(String, Vec<u64>)],
    rungs: usize,
) -> String {
    let mut text = String::new();
    text.push_str("# generated by the round-trip proptest\n");
    text.push_str("scenario roundtrip\n");
    text.push_str("title = generated round-trip scenario\n");
    text.push_str(&format!("campaign = {campaign}\n"));
    text.push_str(world);
    if !seeds.is_empty()
        || !retry.is_empty()
        || !oracle.is_empty()
        || !legs.is_empty()
        || threads > 0
    {
        text.push_str("[run]\n");
        if !seeds.is_empty() {
            let list: Vec<String> = seeds.iter().map(u64::to_string).collect();
            text.push_str(&format!("seeds = {}\n", list.join(", ")));
        }
        text.push_str(retry);
        text.push_str(oracle);
        text.push_str(legs);
        if threads > 0 {
            text.push_str(&format!("threads = {threads}\n"));
        }
    }
    if rungs > 0 {
        text.push_str("[faults]\n");
        for i in 0..rungs {
            let f = i as f64 / rungs as f64;
            text.push_str(&format!("rung = r{i} {f} {f} {i}\n"));
        }
    }
    text.push_str(link);
    if !axes.is_empty() {
        text.push_str("[matrix]\n");
        for (key, values) in axes {
            let list: Vec<String> = values.iter().map(u64::to_string).collect();
            text.push_str(&format!("{key} = {}\n", list.join(", ")));
        }
    }
    text
}

fn roundtrip(text: &str) -> Result<(), String> {
    let spec1: ScenarioSpec = parse(text).map_err(|e| format!("first parse: {e}"))?;
    let rendered = spec1.render();
    let spec2 = parse(&rendered).map_err(|e| format!("reparse of render: {e}\n{rendered}"))?;
    if spec1 != spec2 {
        return Err(format!(
            "parse(render(spec)) != spec\n--- rendered:\n{rendered}"
        ));
    }
    if spec2.render() != rendered {
        return Err("render is not a fixed point after one round".to_owned());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse → render → parse is the identity on the typed spec, and
    /// render is a fixed point, for arbitrary generated specs.
    #[test]
    fn parse_render_parse_is_idempotent(
        campaign_i in 0usize..19,
        world_i in 0usize..5,
        retry_i in 0usize..4,
        oracle_i in 0usize..4,
        legs_i in 0usize..4,
        link_i in 0usize..3,
        seeds in prop::collection::vec(1u64..10_000, 0..4),
        threads in 0usize..5,
        axis_count in 0usize..3,
        axis_vals in prop::collection::vec(1u64..1000, 1..4),
        rungs in 0usize..4,
    ) {
        let axes: Vec<(String, Vec<u64>)> = (0..axis_count)
            .map(|i| (format!("axis-{i}"), axis_vals.clone()))
            .collect();
        let text = build_spec(
            CAMPAIGNS[campaign_i],
            WORLDS[world_i],
            RETRIES[retry_i],
            ORACLES[oracle_i],
            LEGS[legs_i],
            LINKS[link_i],
            &seeds,
            threads,
            &axes,
            rungs,
        );
        prop_assert!(roundtrip(&text).is_ok(), "{}", roundtrip(&text).unwrap_err());
    }
}

/// The committed specs also round-trip (they are what the proptest is
/// protecting).
#[test]
fn committed_specs_roundtrip() {
    for (name, text) in omn_bench::scenario::EMBEDDED {
        roundtrip(text).unwrap_or_else(|msg| panic!("specs/{name}.scn: {msg}"));
    }
}

/// Every campaign kind has a kebab-cased name that parses back.
#[test]
fn campaign_names_are_exhaustive() {
    assert_eq!(CampaignKind::ALL.len(), CAMPAIGNS.len());
}
