//! Pins the committed scenario specs to the legacy hand-written
//! campaigns: for every experiment, the `Params` compiled from
//! `specs/eNN.scn` (under default CLI overrides) must equal the legacy
//! constants — so `exp_eNN` and `omn-scn run specs/eNN.scn` describe the
//! same campaign, and the byte-identity the CI spec-equivalence job
//! checks is structural, not coincidental.
//!
//! The compiled plan summaries are additionally pinned as golden files
//! (`tests/golden/plan_summaries.txt`); re-record after an intentional
//! spec change with `OMN_BLESS_GOLDEN=1`.

use std::path::PathBuf;

use omn_bench::experiments as e;
use omn_bench::scenario::{compile, parse, CampaignPlan, EMBEDDED};
use omn_bench::CliOverrides;

fn plan_for(id: &str) -> CampaignPlan {
    let text = EMBEDDED
        .iter()
        .find(|(name, _)| *name == id)
        .map(|&(_, text)| text)
        .unwrap_or_else(|| panic!("no embedded spec `{id}`"));
    let spec = parse(text).unwrap_or_else(|err| panic!("specs/{id}.scn: {err}"));
    compile(&spec, &CliOverrides::default()).unwrap_or_else(|err| panic!("specs/{id}.scn: {err}"))
}

macro_rules! spec_matches_legacy {
    ($test:ident, $id:literal, $module:ident) => {
        #[test]
        fn $test() {
            let plan = plan_for($id);
            assert_eq!(
                e::$module::Params::from_plan(&plan),
                e::$module::Params::legacy(),
                "specs/{}.scn compiles to different parameters than the \
                 legacy campaign",
                $id
            );
        }
    };
}

spec_matches_legacy!(e01_spec_matches_legacy, "e01", e01_trace_stats);
spec_matches_legacy!(e02_spec_matches_legacy, "e02", e02_delay_validation);
spec_matches_legacy!(e03_spec_matches_legacy, "e03", e03_freshness_time);
spec_matches_legacy!(e04_spec_matches_legacy, "e04", e04_freshness_requirement);
spec_matches_legacy!(e05_spec_matches_legacy, "e05", e05_refresh_period);
spec_matches_legacy!(e06_spec_matches_legacy, "e06", e06_overhead);
spec_matches_legacy!(e07_spec_matches_legacy, "e07", e07_caching_nodes);
spec_matches_legacy!(e08_spec_matches_legacy, "e08", e08_ablation);
spec_matches_legacy!(e09_spec_matches_legacy, "e09", e09_data_access);
spec_matches_legacy!(e10_spec_matches_legacy, "e10", e10_routing_baselines);
spec_matches_legacy!(e11_spec_matches_legacy, "e11", e11_robustness);
spec_matches_legacy!(e12_spec_matches_legacy, "e12", e12_load_distribution);
spec_matches_legacy!(e13_spec_matches_legacy, "e13", e13_fault_tolerance);
spec_matches_legacy!(e14_spec_matches_legacy, "e14", e14_joint_world);
spec_matches_legacy!(e15_spec_matches_legacy, "e15", e15_scalability);
spec_matches_legacy!(e16_spec_matches_legacy, "e16", e16_real_traces);
spec_matches_legacy!(e17_spec_matches_legacy, "e17", e17_chaos);
spec_matches_legacy!(e18_spec_matches_legacy, "e18", e18_runtime);
spec_matches_legacy!(e19_spec_matches_legacy, "e19", e19_bandwidth);

/// CLI overrides thread through the plan into every experiment's params.
#[test]
fn overrides_reach_params_through_the_plan() {
    let text = EMBEDDED
        .iter()
        .find(|(name, _)| *name == "e15")
        .map(|&(_, text)| text)
        .expect("e15 embedded");
    let spec = parse(text).expect("parses");
    let overrides = CliOverrides {
        seeds: Some(vec![5]),
        nodes: Some(vec![100, 200]),
        threads: Some(3),
        no_wall: true,
        ..CliOverrides::default()
    };
    let plan = compile(&spec, &overrides).expect("compiles");
    let params = e::e15_scalability::Params::from_plan(&plan);
    assert_eq!(params.seeds, vec![5]);
    assert_eq!(params.nodes, vec![100, 200]);
    assert_eq!(params.threads, 3);
    assert!(!params.show_wall);
}

/// The deterministic plan summaries of every committed spec, pinned as
/// one golden file.
#[test]
fn plan_summaries_golden() {
    let mut out = String::new();
    for (id, _) in EMBEDDED {
        out.push_str(&plan_for(id).render_summary());
        out.push('\n');
    }
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/plan_summaries.txt");
    if std::env::var_os("OMN_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, &out).expect("write golden");
        return;
    }
    match std::fs::read_to_string(&path) {
        Ok(expected) => assert_eq!(
            expected, out,
            "plan summaries changed; if intentional, re-record with \
             OMN_BLESS_GOLDEN=1"
        ),
        Err(_) if std::env::var_os("OMN_REQUIRE_GOLDEN").is_some() => panic!(
            "golden file plan_summaries.txt is missing and OMN_REQUIRE_GOLDEN \
             is set; record it with OMN_BLESS_GOLDEN=1 and commit it"
        ),
        Err(_) => eprintln!(
            "note: golden file plan_summaries.txt not recorded yet \
             (OMN_BLESS_GOLDEN=1 to pin)"
        ),
    }
}
