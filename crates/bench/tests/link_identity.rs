//! Bit-identity of the link subsystem's degenerate configurations.
//!
//! The link model's contract is that it is *pay-for-what-you-use*: an
//! unlimited link (no byte capacity) and a zero-size message world must
//! both degrade bit-identically to the legacy slot-counting semantics —
//! same headline numbers, same RNG draws, empty transmission queues.
//! These properties hold over *arbitrary* seeds, loads and budgets, not
//! just the pinned golden configurations, so they are checked here with
//! proptest; the finite-bandwidth run at the bottom pins the queue-bound
//! and per-frame byte-accounting invariants end to end.

use omn_bench::experiments::e14_joint_world::joint_run_with;
use omn_bench::experiments::e19_bandwidth::bandwidth_run;
use omn_bench::experiments::{config_for, trace_for};
use omn_caching::policy::PolicyChoice;
use omn_caching::query::QueryWorkload;
use omn_caching::{CachingConfig, Catalog, MessageSizes};
use omn_contacts::synth::presets::TracePreset;
use omn_core::joint::{ContentionPriority, JointConfig, JointReport, JointSimulator};
use omn_core::sim::{FreshnessConfig, RefreshLink, SchemeChoice};
use omn_sim::{LinkConfig, RngFactory, SimDuration};
use proptest::prelude::*;

const PRESET: TracePreset = TracePreset::InfocomLike;

/// Every statistic the slot-counting world produces, as exact bits.
fn headline(r: &JointReport) -> (u64, u64, u64, u64, u64, u64, u32) {
    (
        r.mean_freshness().unwrap_or(0.0).to_bits(),
        r.fresh_access_ratio().to_bits(),
        r.access.success_ratio().to_bits(),
        r.access.mean_delay().unwrap_or(0.0).to_bits(),
        r.access.extras.get("budget-deferred-transmissions"),
        r.access.extras.get("byte-deferred-transmissions"),
        r.max_contact_used,
    )
}

/// One joint run with every message zero-length under a *finite* link:
/// the byte axis is live but can never deny anything.
fn zero_size_run(seed: u64, load: usize, budget: u32, bandwidth: f64) -> JointReport {
    let factory = RngFactory::new(seed);
    let trace = trace_for(PRESET, seed);
    let base = config_for(PRESET);
    let catalog = Catalog::uniform(&trace, 6, base.refresh_period, &factory);
    let queries = QueryWorkload::zipf(&trace, &catalog, load, 1.0, &factory);
    JointSimulator::new(JointConfig {
        caching: CachingConfig {
            query_deadline: SimDuration::from_hours(12.0),
            sizes: MessageSizes::ZERO,
            ..CachingConfig::default()
        },
        freshness: Some(FreshnessConfig {
            query_count: 100,
            link: Some(RefreshLink {
                refresh_bytes: 0,
                queue_depth: 8,
            }),
            ..base
        }),
        scheme: SchemeChoice::Hierarchical,
        contact_budget: Some(budget),
        link: Some(LinkConfig::with_bandwidth(bandwidth).queue_depth(8)),
        priority: ContentionPriority::QueryFirst,
        policy: PolicyChoice::Lru,
        demote_stale: true,
        faults: None,
    })
    .run(&trace, &catalog, &queries, &factory)
}

proptest! {
    // Each case is two full joint runs; a handful of cases over the
    // whole parameter space is the point, not volume.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An unlimited link — whatever the frame size or queue depth — is
    /// bit-identical to the slot-counting world: no byte is ever denied,
    /// no frame is ever queued, no extra randomness is drawn.
    #[test]
    fn unlimited_link_matches_slot_counting(
        seed in 0u64..10_000,
        load in 50usize..300,
        budget in 1u32..4,
        refresh_bytes in 1u64..4096,
        queue_depth in 1usize..128,
    ) {
        let with_link = bandwidth_run(
            PRESET, seed, load, Some(budget), 0.0, refresh_bytes, queue_depth,
            PolicyChoice::Lru, None, 6, 12.0,
        );
        let slot_only = joint_run_with(
            PRESET, seed, load, Some(budget), ContentionPriority::QueryFirst, 6, 12.0,
        );
        prop_assert_eq!(headline(&with_link), headline(&slot_only));
        let stats = with_link.link.expect("link model attached");
        prop_assert_eq!(stats.enqueued_msgs, 0);
        prop_assert_eq!(stats.dropped_msgs, 0);
    }

    /// Zero-size messages under a finite link are also bit-identical to
    /// slot counting: a zero-byte transfer can never exceed the remaining
    /// capacity, so the byte axis never engages even when configured.
    #[test]
    fn zero_size_messages_match_slot_counting(
        seed in 0u64..10_000,
        load in 50usize..300,
        budget in 1u32..4,
        bandwidth in proptest::sample::select(vec![0.25, 1.0, 16.0]),
    ) {
        let zero = zero_size_run(seed, load, budget, bandwidth);
        let slot_only = joint_run_with(
            PRESET, seed, load, Some(budget), ContentionPriority::QueryFirst, 6, 12.0,
        );
        prop_assert_eq!(headline(&zero), headline(&slot_only));
        let stats = zero.link.expect("link model attached");
        prop_assert_eq!(stats.enqueued_msgs, 0);
    }
}

/// A finite-bandwidth run honors the queue bound end to end and accounts
/// every queued byte as whole refresh frames.
#[test]
fn finite_bandwidth_respects_queue_bound_and_frame_accounting() {
    const REFRESH_BYTES: u64 = 256;
    const QUEUE_DEPTH: usize = 4;
    let r = bandwidth_run(
        PRESET,
        11,
        600,
        Some(2),
        4.0,
        REFRESH_BYTES,
        QUEUE_DEPTH,
        PolicyChoice::Lru,
        None,
        6,
        12.0,
    );
    let s = r.link.expect("link model attached");
    assert!(s.enqueued_msgs > 0, "the 4 B/s rung must queue frames");
    assert!(s.max_depth <= QUEUE_DEPTH as u64);
    // Every queued, drained, dropped and discarded message is one whole
    // refresh frame.
    assert_eq!(s.enqueued_bytes, s.enqueued_msgs * REFRESH_BYTES);
    assert_eq!(s.drained_bytes, s.drained_msgs * REFRESH_BYTES);
    assert_eq!(s.dropped_bytes, s.dropped_msgs * REFRESH_BYTES);
    assert_eq!(s.discarded_bytes, s.discarded_msgs * REFRESH_BYTES);
    // Conservation: nothing drains or is discarded that was not accepted.
    assert!(s.drained_msgs + s.discarded_msgs <= s.enqueued_msgs);
    // The contact byte peak respects capacity = bandwidth × duration for
    // the longest contact observed in the trace.
    assert!(r.max_contact_bytes > 0);
}
