//! Criterion micro-benchmarks for the performance-critical paths:
//! the event queue, centrality computation, hierarchy builders, the
//! replication planner, and end-to-end simulations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use omn_caching::ncl::{select_ncls, NclConfig};
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_contacts::{Centrality, ContactGraph, NodeId};
use omn_core::freshness::FreshnessRequirement;
use omn_core::hierarchy::{HierarchyStrategy, RefreshHierarchy};
use omn_core::replication::ReplicationPlanner;
use omn_core::sim::{FreshnessConfig, FreshnessSimulator, SchemeChoice};
use omn_net::routing::Epidemic;
use omn_net::{workload, NetworkSimulator, SimConfig};
use omn_sim::{EventQueue, RngFactory, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_10k", |b| {
        b.iter_batched(
            || {
                let times: Vec<SimTime> = (0..10_000)
                    .map(|i| SimTime::from_secs(f64::from((i * 7919) % 10_000)))
                    .collect();
                times
            },
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.into_iter().enumerate() {
                    q.schedule(t, i);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
}

fn dense_graph(n: usize) -> ContactGraph {
    let mut g = ContactGraph::new(n);
    let mut rng_state = 0x12345u64;
    for i in 0..n {
        for j in (i + 1)..n {
            rng_state = omn_sim::split_mix64(rng_state);
            let r = (rng_state % 1000) as f64 / 1e6 + 1e-5;
            g.set_rate(NodeId(i as u32), NodeId(j as u32), r);
        }
    }
    g
}

fn bench_centrality(c: &mut Criterion) {
    let g = dense_graph(97);
    c.bench_function("centrality/betweenness_97", |b| {
        b.iter(|| g.centrality_scores(Centrality::Betweenness));
    });
    c.bench_function("centrality/closeness_97", |b| {
        b.iter(|| g.centrality_scores(Centrality::Closeness));
    });
    c.bench_function("ncl/select_8_of_97", |b| {
        b.iter(|| select_ncls(&g, &NclConfig::new(8).min_separation(100.0)));
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let g = dense_graph(97);
    let members: Vec<NodeId> = (1..33).map(NodeId).collect();
    c.bench_function("hierarchy/greedy_sed_32_members", |b| {
        b.iter_batched(
            || RngFactory::new(1).stream("h"),
            |mut rng| {
                RefreshHierarchy::build(
                    NodeId(0),
                    &members,
                    &g,
                    HierarchyStrategy::GreedySed { fanout: Some(3) },
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("hierarchy/random_32_members", |b| {
        b.iter_batched(
            || RngFactory::new(1).stream("h"),
            |mut rng| {
                RefreshHierarchy::build(
                    NodeId(0),
                    &members,
                    &g,
                    HierarchyStrategy::Random { fanout: Some(3) },
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_replication(c: &mut Criterion) {
    let g = dense_graph(97);
    let members: Vec<NodeId> = (1..17).map(NodeId).collect();
    let mut rng = RngFactory::new(1).stream("h");
    let h = RefreshHierarchy::build(
        NodeId(0),
        &members,
        &g,
        HierarchyStrategy::GreedySed { fanout: Some(3) },
        &mut rng,
    );
    let planner = ReplicationPlanner::new(
        FreshnessRequirement::new(0.9, SimDuration::from_hours(3.0)),
        3,
    );
    c.bench_function("replication/plan_hierarchy_16_members_97_nodes", |b| {
        b.iter(|| planner.plan_hierarchy(&h, &g));
    });
}

fn bench_simulations(c: &mut Criterion) {
    let factory = RngFactory::new(5);
    let trace = TracePreset::InfocomLike.generate_small(&factory);

    c.bench_function("sim/freshness_hierarchical_small_trace", |b| {
        let sim = FreshnessSimulator::new(FreshnessConfig {
            caching_nodes: 5,
            query_count: 50,
            ..FreshnessConfig::default()
        });
        b.iter(|| sim.run(&trace, SchemeChoice::Hierarchical, &factory));
    });

    let routing_trace = generate_pairwise(
        &PairwiseConfig::new(20, SimDuration::from_days(1.0)).mean_rate(1.0 / 1800.0),
        &factory,
    );
    let demands = workload::uniform_unicast(&routing_trace, 50, &factory).unwrap();
    c.bench_function("sim/routing_epidemic_20_nodes", |b| {
        b.iter(|| {
            NetworkSimulator::new(SimConfig::default()).run(
                &routing_trace,
                &mut Epidemic::new(),
                &demands,
            )
        });
    });

    c.bench_function("synth/infocom_like_small", |b| {
        b.iter(|| TracePreset::InfocomLike.generate_small(&factory));
    });

    c.bench_function("temporal/earliest_arrivals_small_trace", |b| {
        b.iter(|| {
            omn_contacts::temporal::earliest_arrivals(
                &trace,
                omn_contacts::NodeId(0),
                omn_sim::SimTime::ZERO,
            )
        });
    });
}

fn bench_delay_models(c: &mut Criterion) {
    use omn_core::delay::DelayModel;
    let hop = |d: f64, r1: f64, r2: f64| {
        DelayModel::min_of(vec![
            DelayModel::exponential(d),
            DelayModel::hypoexponential(vec![r1, r2]),
        ])
    };
    let deep = DelayModel::sum_of(vec![
        hop(0.1, 0.3, 0.3),
        hop(0.05, 0.2, 0.4),
        hop(0.08, 0.3, 0.2),
    ]);
    c.bench_function("delay/sum_of_minima_cdf", |b| {
        b.iter(|| deep.cdf(25.0));
    });
    c.bench_function("delay/expected_capped", |b| {
        b.iter(|| deep.expected_capped(100.0));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_centrality, bench_hierarchy,
              bench_replication, bench_simulations, bench_delay_models
}
criterion_main!(benches);
