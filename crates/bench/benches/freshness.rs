//! End-to-end Criterion benchmark: one fixed-seed freshness-maintenance
//! run on the full-size conference-like trace — the workload every
//! experiment in the campaign repeats per seed, and the path the unified
//! event kernel (Engine + ContactDriver + World) must keep fast.

use criterion::{criterion_group, criterion_main, Criterion};

use omn_bench::experiments::{config_for, trace_for};
use omn_contacts::synth::presets::TracePreset;
use omn_core::sim::{FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

fn bench_freshness_run(c: &mut Criterion) {
    let preset = TracePreset::InfocomLike;
    let seed = 11;
    let trace = trace_for(preset, seed);
    let config = config_for(preset);
    let factory = RngFactory::new(seed);

    c.bench_function("freshness/infocom_like_hierarchical_full", |b| {
        b.iter(|| {
            FreshnessSimulator::new(config).run(&trace, SchemeChoice::Hierarchical, &factory)
        });
    });

    c.bench_function("freshness/infocom_like_epidemic_full", |b| {
        b.iter(|| FreshnessSimulator::new(config).run(&trace, SchemeChoice::Epidemic, &factory));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_freshness_run
}
criterion_main!(benches);
