//! End-to-end Criterion benchmark: one fixed-seed freshness-maintenance
//! run on the full-size conference-like trace — the workload every
//! experiment in the campaign repeats per seed, and the path the unified
//! event kernel (Engine + ContactDriver + World) must keep fast.

use criterion::{criterion_group, criterion_main, Criterion};

use omn_bench::experiments::e15_scalability::scale_config;
use omn_bench::experiments::{config_for, trace_for};
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::synth::sharded::{ParallelShardedSource, ShardedCommunitySource};
use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_contacts::ContactSource;
use omn_core::sim::{FreshnessSimulator, SchemeChoice};
use omn_sim::{OracleMode, RngFactory, SimDuration};
use omn_traces::haggle::{write_haggle, HaggleFormat};
use omn_traces::{IdPolicy, IngestConfig, TraceReader};

fn bench_freshness_run(c: &mut Criterion) {
    let preset = TracePreset::InfocomLike;
    let seed = 11;
    let trace = trace_for(preset, seed);
    let config = config_for(preset);
    let factory = RngFactory::new(seed);

    c.bench_function("freshness/infocom_like_hierarchical_full", |b| {
        b.iter(|| {
            FreshnessSimulator::new(config).run(&trace, SchemeChoice::Hierarchical, &factory)
        });
    });

    c.bench_function("freshness/infocom_like_epidemic_full", |b| {
        b.iter(|| FreshnessSimulator::new(config).run(&trace, SchemeChoice::Epidemic, &factory));
    });
}

fn bench_oracle_overhead(c: &mut Criterion) {
    // The always-on-oracles claim: running the full invariant-oracle suite
    // must cost well under 5% of a full run. Two identical runs differ
    // only in oracle mode; both land in the bench_trend baseline, so the
    // ratio stays auditable run over run.
    let preset = TracePreset::InfocomLike;
    let seed = 11;
    let trace = trace_for(preset, seed);
    let factory = RngFactory::new(seed);
    let mut on = config_for(preset);
    on.oracle_mode = OracleMode::Campaign;
    let mut off = config_for(preset);
    off.oracle_mode = OracleMode::Off;

    c.bench_function("freshness/oracles_campaign", |b| {
        b.iter(|| FreshnessSimulator::new(on).run(&trace, SchemeChoice::Hierarchical, &factory));
    });
    c.bench_function("freshness/oracles_off", |b| {
        b.iter(|| FreshnessSimulator::new(off).run(&trace, SchemeChoice::Hierarchical, &factory));
    });
}

fn bench_sharded_stream(c: &mut Criterion) {
    // The E15 substrate: drain a 1000-node sharded community stream
    // through the k-way merge — the generation cost every scalability
    // point pays per contact.
    let cfg = scale_config(1000);
    let factory = RngFactory::new(11);
    c.bench_function("contacts/sharded_stream_1000_nodes_1_day", |b| {
        b.iter(|| {
            let mut source = ShardedCommunitySource::new(&cfg, &factory);
            let mut n = 0usize;
            while source.next_contact().is_some() {
                n += 1;
            }
            n
        });
    });
}

fn bench_sharded_window_barrier(c: &mut Criterion) {
    // The intra-seed sharded engine: drain the same 1000-node stream
    // through the window-barrier parallel merge (two generator threads,
    // default span/64 window). Compared against
    // `contacts/sharded_stream_1000_nodes_1_day` in bench_trend, this is
    // the per-contact price of the barrier pipeline — it must stay
    // within the same order as the serial merge.
    let cfg = scale_config(1000);
    let factory = RngFactory::new(11);
    c.bench_function("engine/sharded_window_barrier", |b| {
        b.iter(|| {
            let mut source = ParallelShardedSource::new(&cfg, &factory, 2);
            let mut n = 0usize;
            while source.next_contact().is_some() {
                n += 1;
            }
            n
        });
    });
}

fn bench_trace_parse(c: &mut Criterion) {
    // The E16 ingestion path: parse + normalize an in-memory ~1 MiB Haggle
    // dump (deterministic synthetic contents, so the byte volume is fixed
    // and the mean time converts directly to MB/s).
    let config = PairwiseConfig::new(30, SimDuration::from_days(1.5))
        .mean_rate(1.0 / 3600.0)
        .mean_contact_duration(SimDuration::from_secs(120.0));
    let trace = generate_pairwise(&config, &RngFactory::new(11));
    let mut dump = Vec::new();
    write_haggle(&trace, &mut dump).expect("in-memory write");
    let mb = dump.len() as f64 / 1e6;
    println!(
        "traces/haggle_parse_1mb input: {:.2} MB, {} contacts",
        mb,
        trace.len()
    );

    c.bench_function("traces/haggle_parse_1mb", |b| {
        b.iter(|| {
            let cfg = IngestConfig::new(trace.node_count(), trace.span()).ids(IdPolicy::Dense);
            let mut reader = TraceReader::new(dump.as_slice(), HaggleFormat::new(), cfg);
            let mut n = 0usize;
            while reader.next_contact().is_some() {
                n += 1;
            }
            assert!(reader.error().is_none());
            n
        });
    });
}

fn bench_scenario_compile(c: &mut Criterion) {
    // The scenario compiler front-end + planner over the full committed
    // E1–E19 spec set: parse every embedded `.scn` and expand its matrix
    // into a campaign plan. This is pure string/struct work on the
    // harness's startup path — it must stay far below a single seed's
    // simulation cost (microseconds, not milliseconds).
    use omn_bench::scenario::{compile, parse, EMBEDDED};
    use omn_bench::CliOverrides;

    let overrides = CliOverrides::default();
    c.bench_function("scenario/compile_all_specs", |b| {
        b.iter(|| {
            let mut points = 0usize;
            for (_, text) in EMBEDDED {
                let spec = parse(text).expect("embedded spec parses");
                let plan = compile(&spec, &overrides).expect("embedded spec compiles");
                points += plan.points.len();
            }
            points
        });
    });
}

fn bench_byte_budget(c: &mut Criterion) {
    // One joint run under a biting byte budget (the E19 16 B/s rung at a
    // moderate query load): sized transfers, per-contact byte capacities
    // and the refresh transmission queues all on the hot path. Keeps the
    // link model's cost relative to the slot-counting world on the
    // trend radar.
    use omn_bench::experiments::e19_bandwidth::bandwidth_run;
    use omn_caching::policy::PolicyChoice;

    c.bench_function("link/byte_budget", |b| {
        b.iter(|| {
            bandwidth_run(
                TracePreset::InfocomLike,
                11,
                300,
                Some(2),
                16.0,
                256,
                64,
                PolicyChoice::Lru,
                None,
                6,
                12.0,
            )
        });
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    // The E18 wire path: every exchange between async node tasks encodes
    // a protocol message into a serialized omn-net frame and decodes it
    // on arrival, so this round trip is paid twice per message — at the
    // 10^4-node firehose scale, millions of times per simulated day.
    use omn_contacts::NodeId;
    use omn_core::protocol::{PeerSummary, ProtocolMsg};
    use omn_node::codec;
    use std::hint::black_box;

    let summary = ProtocolMsg::Summary(PeerSummary {
        node: NodeId(7),
        is_member: true,
        cache: Some(41),
        carried: Some(40),
    });
    let refresh = ProtocolMsg::Refresh { version: 42 };
    let at = omn_sim::SimTime::from_secs(86_400.0);

    c.bench_function("node/message_encode_decode", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for msg in [&summary, &refresh] {
                let bytes = codec::encode(black_box(9), NodeId(3), NodeId(7), at, msg);
                let (_, _, decoded) = codec::decode(black_box(&bytes)).expect("round trip");
                n += usize::from(decoded == *msg);
            }
            n
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_freshness_run, bench_oracle_overhead, bench_sharded_stream, bench_sharded_window_barrier, bench_trace_parse, bench_scenario_compile, bench_byte_budget, bench_wire_codec
}
criterion_main!(benches);
