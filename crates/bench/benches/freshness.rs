//! End-to-end Criterion benchmark: one fixed-seed freshness-maintenance
//! run on the full-size conference-like trace — the workload every
//! experiment in the campaign repeats per seed, and the path the unified
//! event kernel (Engine + ContactDriver + World) must keep fast.

use criterion::{criterion_group, criterion_main, Criterion};

use omn_bench::experiments::e15_scalability::scale_config;
use omn_bench::experiments::{config_for, trace_for};
use omn_contacts::synth::presets::TracePreset;
use omn_contacts::synth::sharded::ShardedCommunitySource;
use omn_contacts::ContactSource;
use omn_core::sim::{FreshnessSimulator, SchemeChoice};
use omn_sim::RngFactory;

fn bench_freshness_run(c: &mut Criterion) {
    let preset = TracePreset::InfocomLike;
    let seed = 11;
    let trace = trace_for(preset, seed);
    let config = config_for(preset);
    let factory = RngFactory::new(seed);

    c.bench_function("freshness/infocom_like_hierarchical_full", |b| {
        b.iter(|| {
            FreshnessSimulator::new(config).run(&trace, SchemeChoice::Hierarchical, &factory)
        });
    });

    c.bench_function("freshness/infocom_like_epidemic_full", |b| {
        b.iter(|| FreshnessSimulator::new(config).run(&trace, SchemeChoice::Epidemic, &factory));
    });
}

fn bench_sharded_stream(c: &mut Criterion) {
    // The E15 substrate: drain a 1000-node sharded community stream
    // through the k-way merge — the generation cost every scalability
    // point pays per contact.
    let cfg = scale_config(1000);
    let factory = RngFactory::new(11);
    c.bench_function("contacts/sharded_stream_1000_nodes_1_day", |b| {
        b.iter(|| {
            let mut source = ShardedCommunitySource::new(&cfg, &factory);
            let mut n = 0usize;
            while source.next_contact().is_some() {
                n += 1;
            }
            n
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_freshness_run, bench_sharded_stream
}
criterion_main!(benches);
