//! Wire format for unicast messages: a length-prefixed binary frame that
//! carries a [`Message`] header plus an opaque payload.
//!
//! The async node runtime (`omn-node`) serializes protocol messages into
//! the payload and ships frames over real byte streams; the format is
//! therefore fully deterministic and self-delimiting:
//!
//! ```text
//! u32  body length (bytes after this field, little-endian)
//! u64  message id
//! u32  src node        u32  dst node
//! u64  declared size (bytes)
//! u64  created (f64 bits — exact round-trip)
//! u8   ttl flag        [u64 ttl (f64 bits) if flag = 1]
//! u32  payload length  [payload bytes]
//! ```
//!
//! All decode failures are typed [`WireError`]s — a malformed peer frame
//! must never panic the runtime.

use std::fmt;

use omn_contacts::NodeId;
use omn_sim::{SimDuration, SimTime};

use crate::message::{Message, MessageId};

/// Upper bound on a frame body, guarding length-prefix corruption from
/// allocating unbounded memory.
pub const MAX_FRAME_BODY: usize = 16 * 1024 * 1024;

/// Why a frame could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The declared body length exceeds [`MAX_FRAME_BODY`].
    Oversized {
        /// Declared body length.
        declared: usize,
    },
    /// The frame body disagrees with its own structure (bad flag byte,
    /// inner length overrun, trailing garbage, invalid header field).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { declared } => {
                write!(f, "frame body of {declared} bytes exceeds {MAX_FRAME_BODY}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One on-the-wire frame: a message header and its opaque payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The routed message header.
    pub message: Message,
    /// Opaque application payload (the node runtime puts the freshness
    /// protocol's serialized `ProtocolMsg` here).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame.
    #[must_use]
    pub fn new(message: Message, payload: Vec<u8>) -> Frame {
        Frame { message, payload }
    }

    /// Appends the encoded frame to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let m = &self.message;
        let body_at = buf.len();
        buf.extend_from_slice(&[0u8; 4]); // length back-patched below
        buf.extend_from_slice(&m.id().0.to_le_bytes());
        buf.extend_from_slice(&m.src().0.to_le_bytes());
        buf.extend_from_slice(&m.dst().0.to_le_bytes());
        buf.extend_from_slice(&m.size().to_le_bytes());
        buf.extend_from_slice(&m.created().as_secs().to_bits().to_le_bytes());
        match m.ttl() {
            Some(ttl) => {
                buf.push(1);
                buf.extend_from_slice(&ttl.as_secs().to_bits().to_le_bytes());
            }
            None => buf.push(0),
        }
        let payload_len =
            u32::try_from(self.payload.len()).expect("payload fits the u32 length field");
        buf.extend_from_slice(&payload_len.to_le_bytes());
        buf.extend_from_slice(&self.payload);
        let body_len = u32::try_from(buf.len() - body_at - 4).expect("frame body fits u32");
        buf[body_at..body_at + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// The encoded frame as a fresh buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.payload.len());
        self.encode(&mut buf);
        buf
    }

    /// Decodes one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only a partial frame (read more
    /// bytes and retry), or `Ok(Some((frame, consumed)))` on success.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the frame is structurally invalid; the stream
    /// should be torn down, since resynchronization is impossible.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        let Some(len_bytes) = buf.get(..4) else {
            return Ok(None);
        };
        let body_len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
        if body_len > MAX_FRAME_BODY {
            return Err(WireError::Oversized { declared: body_len });
        }
        let Some(body) = buf.get(4..4 + body_len) else {
            return Ok(None);
        };
        let mut r = Reader { body, at: 0 };
        let id = MessageId(r.u64("message id")?);
        let src = NodeId(r.u32("src")?);
        let dst = NodeId(r.u32("dst")?);
        let size = r.u64("size")?;
        let created = SimTime::from_secs(r.f64("created")?);
        let ttl = match r.u8("ttl flag")? {
            0 => None,
            1 => Some(SimDuration::from_secs(r.f64("ttl")?)),
            _ => return Err(WireError::Malformed("ttl flag")),
        };
        let payload_len = r.u32("payload length")? as usize;
        let payload = r.bytes(payload_len, "payload")?.to_vec();
        if r.at != body.len() {
            return Err(WireError::Malformed("trailing bytes in body"));
        }
        if src == dst {
            return Err(WireError::Malformed("src == dst"));
        }
        if size == 0 {
            return Err(WireError::Malformed("zero size"));
        }
        if !created.as_secs().is_finite() || created.as_secs() < 0.0 {
            return Err(WireError::Malformed("created time"));
        }
        if let Some(ttl) = ttl {
            if !ttl.as_secs().is_finite() || ttl.as_secs() < 0.0 {
                return Err(WireError::Malformed("ttl"));
            }
        }
        let message = Message::new(id, src, dst, size, created, ttl);
        Ok(Some((Frame { message, payload }, 4 + body_len)))
    }
}

struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let slice = self
            .body
            .get(self.at..self.at.checked_add(n).ok_or(WireError::Malformed(what))?)
            .ok_or(WireError::Malformed(what))?;
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.bytes(4, what)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.bytes(8, what)?.try_into().expect("8-byte slice"),
        ))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(ttl: Option<f64>, payload: &[u8]) -> Frame {
        Frame::new(
            Message::new(
                MessageId(42),
                NodeId(3),
                NodeId(9),
                128,
                SimTime::from_secs(0.1 + 0.2), // not exactly representable
                ttl.map(SimDuration::from_secs),
            ),
            payload.to_vec(),
        )
    }

    #[test]
    fn round_trip_exact() {
        for f in [
            frame(None, b""),
            frame(Some(3600.5), b"hello"),
            frame(Some(0.0), &[0u8; 1000]),
        ] {
            let bytes = f.to_bytes();
            let (back, used) = Frame::decode(&bytes).unwrap().unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back, f);
            // f64 fields survive bit-for-bit.
            assert_eq!(
                back.message.created().as_secs().to_bits(),
                f.message.created().as_secs().to_bits()
            );
        }
    }

    #[test]
    fn partial_input_wants_more() {
        let bytes = frame(Some(1.0), b"abc").to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None, "cut={cut}");
        }
    }

    #[test]
    fn back_to_back_frames_stream() {
        let a = frame(None, b"first");
        let b = frame(Some(5.0), b"second");
        let mut buf = a.to_bytes();
        b.encode(&mut buf);
        let (fa, used) = Frame::decode(&buf).unwrap().unwrap();
        assert_eq!(fa, a);
        let (fb, used_b) = Frame::decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(fb, b);
        assert_eq!(used + used_b, buf.len());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            Frame::decode(&buf),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn corrupt_flag_and_headers_are_typed_errors() {
        let mut bytes = frame(None, b"x").to_bytes();
        // The ttl flag byte sits after 4 (len) + 8 + 4 + 4 + 8 + 8 bytes.
        bytes[4 + 32] = 7;
        assert_eq!(Frame::decode(&bytes), Err(WireError::Malformed("ttl flag")));

        // src == dst must not panic Message::new.
        let mut bytes = frame(None, b"x").to_bytes();
        let src = bytes[4 + 8..4 + 12].to_vec();
        bytes[4 + 12..4 + 16].copy_from_slice(&src);
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::Malformed("src == dst"))
        );

        // Truncated body length claims more payload than present.
        let mut bytes = frame(None, b"xyz").to_bytes();
        let last = bytes.len() - 1;
        bytes[last - 6] = 200; // payload length field low byte
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
    }
}
