//! Trace-driven unicast delivery simulation.
//!
//! The simulator is driven by the shared `omn-sim` event kernel: a
//! [`ContactDriver`] primes an [`Engine`] with one event per contact,
//! demand creations are first-class scheduled events, and the engine
//! delivers everything in `(time, class)` order — demands created exactly
//! at a contact's start instant are injected before the contact is
//! processed, matching the classic `created <= now` drain. When a
//! [`FaultConfig`] is set, contacts whose endpoints are churned out are
//! suppressed entirely, truncated contacts are sighted by the protocol
//! (predictability updates) but carry no data, and each attempted transfer
//! may be lost: a lost hop still counts as a transmission and consumes
//! contact bandwidth (the send happened), but moves no message copy.

use std::collections::{HashMap, HashSet};

use omn_contacts::faults::FaultConfig;
use omn_contacts::{ContactDriver, ContactFate, ContactSource, ContactTrace, NodeId};
use omn_sim::metrics::{Registry, SampleHistogram};
use omn_sim::{Engine, EventClass, LinkConfig, RngFactory, SimDuration, SimTime, SimWorld, World};

use crate::buffer::{DropPolicy, MessageBuffer};
use crate::message::{Message, MessageId};
use crate::routing::{RoutingProtocol, TransferDecision};
use crate::workload::UnicastDemand;

/// Charges one transmitted payload against the contact's remaining byte
/// capacity (checked to fit before the transfer) and the run's byte
/// counter.
fn spend_bytes(byte_budget: &mut Option<u64>, bytes_transmitted: &mut u64, size: u64) {
    if let Some(r) = byte_budget.as_mut() {
        *r = r.saturating_sub(size);
    }
    *bytes_transmitted += size;
}

/// Demand injections fire before any contact at the same instant.
const CLASS_DEMAND: EventClass = EventClass(20);
/// Contacts are processed after same-instant demand injections.
const CLASS_CONTACT: EventClass = EventClass(60);

/// Everything the delivery simulator schedules on the engine.
#[derive(Debug, Clone, Copy)]
enum NetEvent {
    /// Inject the demand at this index into its source's buffer.
    Demand(usize),
    /// Process the contact at this index in the trace.
    Contact(usize),
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Per-node buffer capacity in messages.
    pub buffer_capacity: usize,
    /// Behavior when a buffer is full.
    pub drop_policy: DropPolicy,
    /// Message TTL; `None` means messages never expire.
    pub ttl: Option<SimDuration>,
    /// Message payload size in bytes (uniform).
    pub message_size: u64,
    /// Maximum successful transfers per contact (bandwidth proxy);
    /// `None` means unconstrained.
    pub max_transfers_per_contact: Option<usize>,
    /// Byte-denominated link model: each contact carries at most
    /// `bandwidth × duration` bytes of message payload, and a message that
    /// does not fit the remainder stays buffered at its carrier for the
    /// next contact. `None` (or an unlimited [`LinkConfig`]) imposes no
    /// byte limit — bit-identical to the slot-counting semantics.
    pub link: Option<LinkConfig>,
    /// Optional fault injection (transmission loss, contact truncation,
    /// churn, departures) applied through the shared [`ContactDriver`].
    /// `None` runs fault-free and consumes no fault randomness.
    pub faults: Option<FaultConfig>,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            buffer_capacity: 256,
            drop_policy: DropPolicy::DropOldest,
            ttl: None,
            message_size: 1024,
            max_transfers_per_contact: None,
            link: None,
            faults: None,
        }
    }
}

/// Results of a delivery simulation.
#[derive(Debug, Clone)]
pub struct DeliveryReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Messages created.
    pub created: usize,
    /// Messages delivered (first copy reaching the destination).
    pub delivered: usize,
    /// Message transfers attempted (copies + handoffs + deliveries).
    /// Failed hops are included: the send happened even if the receive
    /// did not.
    pub transmissions: u64,
    /// Buffer evictions under [`DropPolicy::DropOldest`].
    pub evictions: u64,
    /// Copies dropped by TTL expiry.
    pub expired: u64,
    /// Payload bytes that went on the air (lost hops included — the send
    /// happened).
    pub bytes_transmitted: u64,
    /// Delivery delays in seconds.
    pub delays: SampleHistogram,
    /// Fault counters (`down-contacts`, `blocked-contacts`,
    /// `failed-transmissions`); empty on fault-free runs.
    pub extras: Registry,
}

impl DeliveryReport {
    /// Delivered / created, or 0 when nothing was created.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.created == 0 {
            0.0
        } else {
            self.delivered as f64 / self.created as f64
        }
    }

    /// Mean delivery delay in seconds over delivered messages.
    #[must_use]
    pub fn mean_delay(&self) -> Option<f64> {
        self.delays.mean()
    }

    /// Transmissions per delivered message (∞-free: `None` when nothing
    /// was delivered).
    #[must_use]
    pub fn overhead_ratio(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.transmissions as f64 / self.delivered as f64)
    }
}

/// A trace-driven unicast delivery simulator.
///
/// Each contact is treated as one atomic exchange opportunity at its start
/// time (the standard simplification for contact traces whose durations far
/// exceed per-message transfer times); the optional
/// [`SimConfig::max_transfers_per_contact`] models limited bandwidth.
///
/// Destinations consume messages: a delivered message is not re-forwarded,
/// and a carrier meeting the destination of an already-delivered message
/// drops its copy (implicit immunity).
#[derive(Debug, Clone, Copy)]
pub struct NetworkSimulator {
    config: SimConfig,
}

impl NetworkSimulator {
    /// Creates a simulator with the given configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> NetworkSimulator {
        NetworkSimulator { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `protocol` over `trace` with the given demands (must be sorted
    /// by creation time, as produced by [`crate::workload::uniform_unicast`]).
    ///
    /// Equivalent to [`NetworkSimulator::run_seeded`] with a fixed default
    /// factory; fault-free configurations draw no randomness, so the fixed
    /// seed is inert for them.
    ///
    /// # Panics
    ///
    /// Panics if a demand references a node outside the trace or demands
    /// are not sorted by creation time.
    #[must_use]
    pub fn run<P: RoutingProtocol + ?Sized>(
        &self,
        trace: &ContactTrace,
        protocol: &mut P,
        demands: &[UnicastDemand],
    ) -> DeliveryReport {
        self.run_seeded(trace, protocol, demands, &RngFactory::new(0))
    }

    /// Runs `protocol` over `trace`, seeding the fault plan (if
    /// [`SimConfig::faults`] is set) from `factory`'s dedicated fault
    /// streams.
    ///
    /// # Panics
    ///
    /// Panics if a demand references a node outside the trace or demands
    /// are not sorted by creation time.
    #[must_use]
    pub fn run_seeded<P: RoutingProtocol + ?Sized>(
        &self,
        trace: &ContactTrace,
        protocol: &mut P,
        demands: &[UnicastDemand],
        factory: &RngFactory,
    ) -> DeliveryReport {
        let n = trace.node_count();
        assert!(
            demands.windows(2).all(|w| w[0].created <= w[1].created),
            "demands must be sorted by creation time"
        );
        let mut buffers: Vec<MessageBuffer> = (0..n)
            .map(|_| MessageBuffer::new(self.config.buffer_capacity, self.config.drop_policy))
            .collect();
        let mut delivered: HashMap<MessageId, SimTime> = HashMap::new();
        let mut report = DeliveryReport {
            protocol: protocol.name(),
            created: demands.len(),
            delivered: 0,
            transmissions: 0,
            evictions: 0,
            expired: 0,
            bytes_transmitted: 0,
            delays: SampleHistogram::new(),
            extras: Registry::new(),
        };

        let mut driver = ContactDriver::new(trace, self.config.faults, factory);
        let mut world = SimWorld::new(n, *factory);
        let mut engine: Engine<NetEvent> = Engine::new();
        let last_contact_start = driver.last_contact_start();
        let in_contact_range = |t: SimTime| last_contact_start.is_some_and(|last| t <= last);

        // Demands created after the final contact can never be forwarded;
        // they count as created but are never injected (exactly the set the
        // old per-contact drain loop left behind).
        for (i, d) in demands.iter().enumerate() {
            if in_contact_range(d.created) {
                engine.schedule_at_class(d.created, CLASS_DEMAND, NetEvent::Demand(i));
            }
        }
        driver.begin(&mut engine, CLASS_CONTACT, NetEvent::Contact);

        let mut next_id = 0u64;
        let mut failed_transmissions = 0u64;
        let mut byte_deferred = 0u64;

        while let Some(ev) = engine.next_event() {
            world.advance_to(ev.time);
            match ev.payload {
                NetEvent::Demand(i) => {
                    let d = demands[i];
                    assert!(
                        d.src.index() < n && d.dst.index() < n,
                        "demand references node outside trace"
                    );
                    let msg = Message::new(
                        MessageId(next_id),
                        d.src,
                        d.dst,
                        self.config.message_size,
                        d.created,
                        self.config.ttl,
                    );
                    next_id += 1;
                    buffers[d.src.index()].insert(msg, protocol.initial_tokens(), d.created);
                }

                NetEvent::Contact(ci) => {
                    let now = ev.time;
                    driver.advance(ci, &mut engine, CLASS_CONTACT, NetEvent::Contact);
                    let (a, b) = driver.contact(ci).pair();
                    let fate = driver.fate(ci, now);
                    if fate == ContactFate::Down {
                        // The radios never meet: no TTL accounting, no
                        // protocol sighting, no exchange.
                        world.metrics_mut().add("down-contacts", 1);
                        continue;
                    }
                    report.expired += buffers[a.index()].purge_expired(now) as u64;
                    report.expired += buffers[b.index()].purge_expired(now) as u64;
                    protocol.on_contact(a, b, now);
                    if fate == ContactFate::Blocked {
                        // Sighted (predictability updated above) but
                        // truncated before any data could move.
                        world.metrics_mut().add("blocked-contacts", 1);
                        continue;
                    }

                    let mut budget = self.config.max_transfers_per_contact.unwrap_or(usize::MAX);
                    let mut byte_budget = self
                        .config
                        .link
                        .and_then(|l| l.capacity_for(driver.contact(ci).duration()));
                    // Messages received during this very contact must not be
                    // forwarded back within it (prevents same-contact
                    // ping-pong of handoff protocols).
                    let mut received_now: HashSet<(NodeId, MessageId)> = HashSet::new();
                    for (carrier, peer) in [(a, b), (b, a)] {
                        if budget == 0 {
                            break;
                        }
                        self.exchange(
                            carrier,
                            peer,
                            now,
                            protocol,
                            &mut buffers,
                            &mut delivered,
                            &mut report,
                            &mut budget,
                            &mut byte_budget,
                            &mut received_now,
                            &mut driver,
                            &mut failed_transmissions,
                            &mut byte_deferred,
                        );
                    }
                }
            }
        }

        for buf in &mut buffers {
            report.evictions += buf.take_evictions();
        }
        if failed_transmissions > 0 {
            world
                .metrics_mut()
                .add("failed-transmissions", failed_transmissions);
        }
        if byte_deferred > 0 {
            world
                .metrics_mut()
                .add("byte-deferred-transmissions", byte_deferred);
        }
        report.extras = world.into_metrics();
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn exchange<P: RoutingProtocol + ?Sized, S: ContactSource>(
        &self,
        carrier: NodeId,
        peer: NodeId,
        now: SimTime,
        protocol: &mut P,
        buffers: &mut [MessageBuffer],
        delivered: &mut HashMap<MessageId, SimTime>,
        report: &mut DeliveryReport,
        budget: &mut usize,
        byte_budget: &mut Option<u64>,
        received_now: &mut HashSet<(NodeId, MessageId)>,
        driver: &mut ContactDriver<S>,
        failed_transmissions: &mut u64,
        byte_deferred: &mut u64,
    ) {
        for id in buffers[carrier.index()].ids() {
            if *budget == 0 {
                return;
            }
            if received_now.contains(&(carrier, id)) {
                continue;
            }
            let Some(entry) = buffers[carrier.index()].get(id).copied() else {
                continue;
            };
            let dst = entry.message.dst();

            // A payload that does not fit the contact's remaining byte
            // capacity stays buffered at its carrier for the next contact
            // — denied before the routing decision, so no protocol state
            // mutates and no loss randomness is drawn.
            if byte_budget.is_some_and(|r| entry.message.size() > r) {
                *byte_deferred += 1;
                continue;
            }

            if delivered.contains_key(&id) {
                // Implicit immunity: a carrier learns of delivery when it
                // meets the destination, and drops its copy.
                if peer == dst {
                    buffers[carrier.index()].remove(id);
                }
                continue;
            }
            if peer != dst && buffers[peer.index()].contains(id) {
                continue;
            }

            let mut entry_mut = entry;
            let decision = protocol.decide(carrier, peer, &mut entry_mut, now);
            // Persist token mutations made by the protocol.
            if let Some(e) = buffers[carrier.index()].get_mut(id) {
                e.tokens = entry_mut.tokens;
            }

            // A lost hop counts as a transmission and consumes budget (the
            // send happened over the air), but moves no copy: the receiver
            // gets nothing and the carrier keeps its buffer entry.
            match decision {
                TransferDecision::Skip => {}
                TransferDecision::Replicate { peer_tokens } => {
                    if peer == dst {
                        report.transmissions += 1;
                        *budget -= 1;
                        spend_bytes(
                            byte_budget,
                            &mut report.bytes_transmitted,
                            entry.message.size(),
                        );
                        if driver.transfer_fails() {
                            *failed_transmissions += 1;
                        } else {
                            delivered.insert(id, now);
                            report.delivered += 1;
                            report
                                .delays
                                .record(now.saturating_since(entry.message.created()).as_secs());
                            buffers[carrier.index()].remove(id);
                        }
                    } else if driver.transfer_fails() {
                        report.transmissions += 1;
                        *failed_transmissions += 1;
                        *budget -= 1;
                        spend_bytes(
                            byte_budget,
                            &mut report.bytes_transmitted,
                            entry.message.size(),
                        );
                    } else if buffers[peer.index()].insert(entry.message, peer_tokens, now) {
                        received_now.insert((peer, id));
                        report.transmissions += 1;
                        *budget -= 1;
                        spend_bytes(
                            byte_budget,
                            &mut report.bytes_transmitted,
                            entry.message.size(),
                        );
                    }
                }
                TransferDecision::Handoff => {
                    if peer == dst {
                        report.transmissions += 1;
                        *budget -= 1;
                        spend_bytes(
                            byte_budget,
                            &mut report.bytes_transmitted,
                            entry.message.size(),
                        );
                        if driver.transfer_fails() {
                            *failed_transmissions += 1;
                        } else {
                            delivered.insert(id, now);
                            report.delivered += 1;
                            report
                                .delays
                                .record(now.saturating_since(entry.message.created()).as_secs());
                            buffers[carrier.index()].remove(id);
                        }
                    } else if driver.transfer_fails() {
                        report.transmissions += 1;
                        *failed_transmissions += 1;
                        *budget -= 1;
                        spend_bytes(
                            byte_budget,
                            &mut report.bytes_transmitted,
                            entry.message.size(),
                        );
                    } else if buffers[peer.index()].insert(entry.message, entry_mut.tokens, now) {
                        buffers[carrier.index()].remove(id);
                        received_now.insert((peer, id));
                        report.transmissions += 1;
                        *budget -= 1;
                        spend_bytes(
                            byte_budget,
                            &mut report.bytes_transmitted,
                            entry.message.size(),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{DirectDelivery, Epidemic, Prophet, SprayAndWait};
    use crate::workload::uniform_unicast;
    use omn_contacts::faults::DowntimeConfig;
    use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
    use omn_contacts::{Contact, TraceBuilder};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn c(a: u32, b: u32, s: f64, e: f64) -> Contact {
        Contact::new(NodeId(a), NodeId(b), t(s), t(e)).unwrap()
    }

    /// 0 meets 1 at t=10, 1 meets 2 at t=20: a relay chain.
    fn chain_trace() -> ContactTrace {
        TraceBuilder::new(3)
            .contact(c(0, 1, 10.0, 11.0))
            .contact(c(1, 2, 20.0, 21.0))
            .build()
            .unwrap()
    }

    fn demand(src: u32, dst: u32, created: f64) -> UnicastDemand {
        UnicastDemand {
            created: t(created),
            src: NodeId(src),
            dst: NodeId(dst),
        }
    }

    #[test]
    fn byte_capacity_defers_messages_to_later_contacts() {
        // Node 0 holds three 1024-byte messages for node 1. Each 10-second
        // contact at 204.8 B/s carries 2048 bytes → two messages, and the
        // third waits in 0's buffer for the next contact.
        let trace = TraceBuilder::new(2)
            .contact(c(0, 1, 10.0, 20.0))
            .contact(c(0, 1, 100.0, 110.0))
            .build()
            .unwrap();
        let config = SimConfig {
            link: Some(LinkConfig::with_bandwidth(204.8)),
            ..SimConfig::default()
        };
        let report = NetworkSimulator::new(config).run(
            &trace,
            &mut DirectDelivery::new(),
            &[demand(0, 1, 0.0), demand(0, 1, 0.0), demand(0, 1, 0.0)],
        );
        assert_eq!(report.delivered, 3);
        assert_eq!(report.bytes_transmitted, 3 * 1024);
        assert_eq!(report.extras.get("byte-deferred-transmissions"), 1);
        // Two messages land at t=10, the deferred one at t=100.
        assert!((report.delays.mean().unwrap() - (10.0 + 10.0 + 100.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unlimited_link_is_bit_identical_to_no_link() {
        let demands = [demand(0, 2, 0.0), demand(0, 2, 1.0)];
        let plain = NetworkSimulator::new(SimConfig::default()).run(
            &chain_trace(),
            &mut Epidemic::new(),
            &demands,
        );
        let linked = NetworkSimulator::new(SimConfig {
            link: Some(LinkConfig::unlimited()),
            ..SimConfig::default()
        })
        .run(&chain_trace(), &mut Epidemic::new(), &demands);
        assert_eq!(plain.delivered, linked.delivered);
        assert_eq!(plain.transmissions, linked.transmissions);
        assert_eq!(plain.delays, linked.delays);
        assert_eq!(linked.extras.get("byte-deferred-transmissions"), 0);
        assert_eq!(linked.bytes_transmitted, linked.transmissions * 1024);
    }

    #[test]
    fn epidemic_uses_relay_chain() {
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &chain_trace(),
            &mut Epidemic::new(),
            &[demand(0, 2, 0.0)],
        );
        assert_eq!(report.delivered, 1);
        assert_eq!(report.delivery_ratio(), 1.0);
        // Copy to 1 at t=10, delivery 1→2 at t=20.
        assert_eq!(report.transmissions, 2);
        assert!((report.mean_delay().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn direct_delivery_cannot_relay() {
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &chain_trace(),
            &mut DirectDelivery::new(),
            &[demand(0, 2, 0.0)],
        );
        assert_eq!(report.delivered, 0);
        assert_eq!(report.transmissions, 0);
        assert_eq!(report.overhead_ratio(), None);
    }

    #[test]
    fn direct_delivery_on_direct_contact() {
        let trace = TraceBuilder::new(2)
            .contact(c(0, 1, 5.0, 6.0))
            .build()
            .unwrap();
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &trace,
            &mut DirectDelivery::new(),
            &[demand(0, 1, 0.0)],
        );
        assert_eq!(report.delivered, 1);
        assert_eq!(report.transmissions, 1);
        assert!((report.mean_delay().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn spray_two_copies_relays_once() {
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &chain_trace(),
            &mut SprayAndWait::new(2),
            &[demand(0, 2, 0.0)],
        );
        // 0 sprays one token-copy to 1 at t=10 (L=2 → give 1); 1 is then in
        // wait phase and delivers to 2 at t=20.
        assert_eq!(report.delivered, 1);
        assert_eq!(report.transmissions, 2);
    }

    #[test]
    fn spray_one_copy_degenerates_to_direct() {
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &chain_trace(),
            &mut SprayAndWait::new(1),
            &[demand(0, 2, 0.0)],
        );
        assert_eq!(report.delivered, 0);
    }

    #[test]
    fn prophet_forwards_toward_familiar_nodes() {
        // History: 1 repeatedly meets 2. Then 0 (carrying a message for 2)
        // meets 1, which has higher predictability for 2 → replicate; then
        // 1 meets 2 → deliver.
        let trace = TraceBuilder::new(3)
            .contact(c(1, 2, 0.0, 1.0))
            .contact(c(1, 2, 5.0, 6.0))
            .contact(c(0, 1, 10.0, 11.0))
            .contact(c(1, 2, 20.0, 21.0))
            .build()
            .unwrap();
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &trace,
            &mut Prophet::new(),
            &[demand(0, 2, 8.0)],
        );
        assert_eq!(report.delivered, 1);
        assert!((report.mean_delay().unwrap() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn first_contact_walks_the_chain() {
        use crate::routing::FirstContact;
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &chain_trace(),
            &mut FirstContact::new(),
            &[demand(0, 2, 0.0)],
        );
        // Handoff 0→1 at t=10, then 1→2 (destination) at t=20.
        assert_eq!(report.delivered, 1);
        assert_eq!(report.transmissions, 2);
    }

    #[test]
    fn first_contact_keeps_exactly_one_copy() {
        use crate::routing::FirstContact;
        // Star contacts around node 0: the single copy ping-pongs but
        // never multiplies; transmissions equal the number of handoffs.
        let trace = TraceBuilder::new(4)
            .contact(c(0, 1, 1.0, 2.0))
            .contact(c(1, 0, 3.0, 4.0))
            .contact(c(0, 2, 5.0, 6.0))
            .contact(c(2, 3, 7.0, 8.0))
            .build()
            .unwrap();
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &trace,
            &mut FirstContact::new(),
            &[demand(0, 3, 0.0)],
        );
        assert_eq!(report.delivered, 1);
        // 0→1, 1→0, 0→2, 2→3: four handoffs for one delivery.
        assert_eq!(report.transmissions, 4);
    }

    #[test]
    fn ttl_expires_undelivered_messages() {
        let config = SimConfig {
            ttl: Some(SimDuration::from_secs(5.0)),
            ..SimConfig::default()
        };
        let report = NetworkSimulator::new(config).run(
            &chain_trace(),
            &mut Epidemic::new(),
            &[demand(0, 2, 0.0)],
        );
        // Message expires at t=5, before the first contact at t=10.
        assert_eq!(report.delivered, 0);
        assert!(report.expired >= 1);
    }

    #[test]
    fn bandwidth_budget_limits_transfers() {
        // Node 0 has 3 messages for node 1; a single contact with budget 1
        // delivers only one.
        let trace = TraceBuilder::new(2)
            .contact(c(0, 1, 10.0, 11.0))
            .build()
            .unwrap();
        let config = SimConfig {
            max_transfers_per_contact: Some(1),
            ..SimConfig::default()
        };
        let demands = [demand(0, 1, 0.0), demand(0, 1, 1.0), demand(0, 1, 2.0)];
        let report = NetworkSimulator::new(config).run(&trace, &mut Epidemic::new(), &demands);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.transmissions, 1);
    }

    #[test]
    fn immunity_drops_carrier_copies_after_delivery() {
        // 0→1 contact delivers; later 2 (also carrying a copy) meets 1 and
        // drops its stale copy without a transmission.
        let trace = TraceBuilder::new(3)
            .contact(c(0, 2, 1.0, 2.0)) // epidemic copies to 2
            .contact(c(0, 1, 10.0, 11.0)) // delivery by 0
            .contact(c(1, 2, 20.0, 21.0)) // 2 meets dst: drop, no tx
            .build()
            .unwrap();
        let report = NetworkSimulator::new(SimConfig::default()).run(
            &trace,
            &mut Epidemic::new(),
            &[demand(0, 1, 0.0)],
        );
        assert_eq!(report.delivered, 1);
        // tx: copy to 2, delivery to 1. The t=20 contact adds nothing.
        assert_eq!(report.transmissions, 2);
    }

    #[test]
    fn deterministic_runs() {
        let f = RngFactory::new(4);
        let trace = generate_pairwise(
            &PairwiseConfig::new(12, SimDuration::from_days(1.0)).mean_rate(1.0 / 1800.0),
            &f,
        );
        let demands = uniform_unicast(&trace, 40, &f).unwrap();
        let sim = NetworkSimulator::new(SimConfig::default());
        let r1 = sim.run(&trace, &mut Epidemic::new(), &demands);
        let r2 = sim.run(&trace, &mut Epidemic::new(), &demands);
        assert_eq!(r1.delivered, r2.delivered);
        assert_eq!(r1.transmissions, r2.transmissions);
    }

    fn fault_scenario() -> (ContactTrace, Vec<UnicastDemand>) {
        let f = RngFactory::new(9);
        let trace = generate_pairwise(
            &PairwiseConfig::new(16, SimDuration::from_days(2.0)).mean_rate(1.0 / 3600.0),
            &f,
        );
        let demands = uniform_unicast(&trace, 60, &f).unwrap();
        (trace, demands)
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_no_plan() {
        let (trace, demands) = fault_scenario();
        let base =
            NetworkSimulator::new(SimConfig::default()).run(&trace, &mut Epidemic::new(), &demands);
        let config = SimConfig {
            faults: Some(FaultConfig::default()),
            ..SimConfig::default()
        };
        let zeroed = NetworkSimulator::new(config).run_seeded(
            &trace,
            &mut Epidemic::new(),
            &demands,
            &RngFactory::new(77),
        );
        assert_eq!(base.delivered, zeroed.delivered);
        assert_eq!(base.transmissions, zeroed.transmissions);
        assert_eq!(base.evictions, zeroed.evictions);
        assert_eq!(base.expired, zeroed.expired);
        assert_eq!(base.delays, zeroed.delays);
        assert_eq!(zeroed.extras.get("down-contacts"), 0);
        assert_eq!(zeroed.extras.get("blocked-contacts"), 0);
        assert_eq!(zeroed.extras.get("failed-transmissions"), 0);
    }

    #[test]
    fn total_transmission_loss_delivers_nothing() {
        let (trace, demands) = fault_scenario();
        let config = SimConfig {
            faults: Some(FaultConfig {
                transmission_loss: 1.0,
                ..FaultConfig::default()
            }),
            ..SimConfig::default()
        };
        let report = NetworkSimulator::new(config).run_seeded(
            &trace,
            &mut Epidemic::new(),
            &demands,
            &RngFactory::new(77),
        );
        assert_eq!(report.delivered, 0);
        assert!(report.transmissions > 0);
        assert_eq!(
            report.extras.get("failed-transmissions"),
            report.transmissions
        );
    }

    #[test]
    fn churn_suppresses_contacts() {
        let (trace, demands) = fault_scenario();
        let config = SimConfig {
            faults: Some(FaultConfig {
                downtime: Some(DowntimeConfig {
                    node_fraction: 1.0,
                    mean_uptime: SimDuration::from_hours(4.0),
                    mean_downtime: SimDuration::from_hours(4.0),
                    exempt: None,
                }),
                ..FaultConfig::default()
            }),
            ..SimConfig::default()
        };
        let faulted = NetworkSimulator::new(config).run_seeded(
            &trace,
            &mut Epidemic::new(),
            &demands,
            &RngFactory::new(77),
        );
        assert!(faulted.extras.get("down-contacts") > 0);
        assert!(faulted.delivered <= faulted.created);
        assert_eq!(faulted.delays.len(), faulted.delivered);
    }
}
