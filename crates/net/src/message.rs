//! Unicast messages.

use std::fmt;

use omn_contacts::NodeId;
use omn_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Unique identifier of a unicast message.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An immutable unicast message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    id: MessageId,
    src: NodeId,
    dst: NodeId,
    size: u64,
    created: SimTime,
    ttl: Option<SimDuration>,
}

impl Message {
    /// Creates a message.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or `size == 0`.
    #[must_use]
    pub fn new(
        id: MessageId,
        src: NodeId,
        dst: NodeId,
        size: u64,
        created: SimTime,
        ttl: Option<SimDuration>,
    ) -> Message {
        assert!(src != dst, "Message::new: src == dst");
        assert!(size > 0, "Message::new: zero size");
        Message {
            id,
            src,
            dst,
            size,
            created,
            ttl,
        }
    }

    /// The message id.
    #[must_use]
    pub fn id(&self) -> MessageId {
        self.id
    }

    /// The originating node.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The destination node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Payload size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Creation time.
    #[must_use]
    pub fn created(&self) -> SimTime {
        self.created
    }

    /// Time-to-live, if bounded.
    #[must_use]
    pub fn ttl(&self) -> Option<SimDuration> {
        self.ttl
    }

    /// True if the message has expired at `now`.
    #[must_use]
    pub fn is_expired(&self, now: SimTime) -> bool {
        match self.ttl {
            Some(ttl) => now.saturating_since(self.created) > ttl,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn accessors() {
        let m = Message::new(
            MessageId(1),
            NodeId(0),
            NodeId(5),
            1024,
            t(10.0),
            Some(SimDuration::from_secs(100.0)),
        );
        assert_eq!(m.id(), MessageId(1));
        assert_eq!(m.src(), NodeId(0));
        assert_eq!(m.dst(), NodeId(5));
        assert_eq!(m.size(), 1024);
        assert_eq!(m.created(), t(10.0));
        assert_eq!(m.id().to_string(), "m1");
    }

    #[test]
    fn expiry() {
        let m = Message::new(
            MessageId(1),
            NodeId(0),
            NodeId(1),
            1,
            t(10.0),
            Some(SimDuration::from_secs(100.0)),
        );
        assert!(!m.is_expired(t(10.0)));
        assert!(!m.is_expired(t(110.0)));
        assert!(m.is_expired(t(110.1)));
        let eternal = Message::new(MessageId(2), NodeId(0), NodeId(1), 1, t(0.0), None);
        assert!(!eternal.is_expired(t(1e9)));
    }

    #[test]
    #[should_panic(expected = "src == dst")]
    fn rejects_self_message() {
        let _ = Message::new(MessageId(1), NodeId(3), NodeId(3), 1, t(0.0), None);
    }

    #[test]
    #[should_panic(expected = "zero size")]
    fn rejects_zero_size() {
        let _ = Message::new(MessageId(1), NodeId(0), NodeId(1), 0, t(0.0), None);
    }
}
