//! Opportunistic networking substrate.
//!
//! This crate implements the classic delay-tolerant routing layer that the
//! cooperative caching and cache-freshness systems sit above, and that the
//! routing-baseline experiment (E10) compares directly:
//!
//! * [`Message`] / [`MessageBuffer`] — unicast messages with TTLs and
//!   bounded per-node buffers with drop policies.
//! * [`routing`] — the [`RoutingProtocol`] trait and five classic
//!   protocols: [`routing::Epidemic`], [`routing::DirectDelivery`],
//!   [`routing::FirstContact`], [`routing::SprayAndWait`] (binary), and
//!   [`routing::Prophet`].
//! * [`NetworkSimulator`] — a trace-driven delivery simulator that runs a
//!   workload of unicast messages through a protocol and reports delivery
//!   ratio, delay, and overhead.
//! * [`wire`] — the length-prefixed binary frame format the async node
//!   runtime (`omn-node`) ships over real byte channels; every decode
//!   failure is a typed [`WireError`], never a panic.
//!
//! # Example
//!
//! ```
//! use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
//! use omn_net::routing::Epidemic;
//! use omn_net::{NetworkSimulator, SimConfig, workload};
//! use omn_sim::{RngFactory, SimDuration};
//!
//! let factory = RngFactory::new(1);
//! let trace = generate_pairwise(
//!     &PairwiseConfig::new(16, SimDuration::from_days(1.0)).mean_rate(1.0 / 1800.0),
//!     &factory,
//! );
//! let workload = workload::uniform_unicast(&trace, 50, &factory).unwrap();
//! let report = NetworkSimulator::new(SimConfig::default())
//!     .run(&trace, &mut Epidemic::new(), &workload);
//! assert!(report.delivery_ratio() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod message;
pub mod routing;
mod sim;
pub mod wire;
pub mod workload;

pub use buffer::{BufferEntry, DropPolicy, MessageBuffer};
pub use message::{Message, MessageId};
pub use routing::{RoutingProtocol, TransferDecision};
pub use sim::{DeliveryReport, NetworkSimulator, SimConfig};
pub use wire::{Frame, WireError};
pub use workload::{UnicastDemand, WorkloadError};
