//! PRoPHET: probabilistic routing using the history of encounters
//! (Lindgren, Doria, Schelén).

use std::collections::HashMap;

use omn_contacts::NodeId;
use omn_sim::SimTime;

use crate::buffer::BufferEntry;

use super::{RoutingProtocol, TransferDecision};

/// PRoPHET parameters, with the defaults from the original paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProphetParams {
    /// Additive predictability boost per encounter (`P_init`).
    pub p_init: f64,
    /// Transitivity scaling constant (`β`).
    pub beta: f64,
    /// Aging base per time unit (`γ`).
    pub gamma: f64,
    /// The time unit for aging, in seconds.
    pub aging_unit_secs: f64,
}

impl Default for ProphetParams {
    fn default() -> ProphetParams {
        ProphetParams {
            p_init: 0.75,
            beta: 0.25,
            gamma: 0.98,
            aging_unit_secs: 3600.0,
        }
    }
}

/// PRoPHET routing: each node maintains a *delivery predictability*
/// `P(self, dst)` per destination, updated on encounters, aged over time,
/// and propagated transitively. A carrier replicates a message to a peer
/// whose predictability for the destination exceeds its own.
#[derive(Debug, Clone)]
pub struct Prophet {
    params: ProphetParams,
    /// `pred[(x, y)]` = P held *by node x* for destination y.
    pred: HashMap<(NodeId, NodeId), f64>,
    /// Last time a node's table was aged.
    last_aged: HashMap<NodeId, SimTime>,
}

impl Prophet {
    /// Creates the protocol with default parameters.
    #[must_use]
    pub fn new() -> Prophet {
        Prophet::with_params(ProphetParams::default())
    }

    /// Creates the protocol with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside its valid range
    /// (`p_init, beta, gamma ∈ (0, 1]`, positive aging unit).
    #[must_use]
    pub fn with_params(params: ProphetParams) -> Prophet {
        assert!(params.p_init > 0.0 && params.p_init <= 1.0, "bad p_init");
        assert!(params.beta > 0.0 && params.beta <= 1.0, "bad beta");
        assert!(params.gamma > 0.0 && params.gamma <= 1.0, "bad gamma");
        assert!(params.aging_unit_secs > 0.0, "bad aging unit");
        Prophet {
            params,
            pred: HashMap::new(),
            last_aged: HashMap::new(),
        }
    }

    /// The delivery predictability node `holder` currently has for
    /// destination `dst` (unaged view; aging happens on contact).
    #[must_use]
    pub fn predictability(&self, holder: NodeId, dst: NodeId) -> f64 {
        if holder == dst {
            return 1.0;
        }
        self.pred.get(&(holder, dst)).copied().unwrap_or(0.0)
    }

    fn age_table(&mut self, node: NodeId, now: SimTime) {
        let last = self.last_aged.insert(node, now).unwrap_or(SimTime::ZERO);
        let units = now.saturating_since(last).as_secs() / self.params.aging_unit_secs;
        if units <= 0.0 {
            return;
        }
        let factor = self.params.gamma.powf(units);
        for ((holder, _), p) in self.pred.iter_mut() {
            if *holder == node {
                *p *= factor;
            }
        }
    }

    fn destinations_known_by(&self, node: NodeId) -> Vec<(NodeId, f64)> {
        self.pred
            .iter()
            .filter(|((holder, _), _)| *holder == node)
            .map(|((_, dst), p)| (*dst, *p))
            .collect()
    }
}

impl Default for Prophet {
    fn default() -> Prophet {
        Prophet::new()
    }
}

impl RoutingProtocol for Prophet {
    fn name(&self) -> &'static str {
        "prophet"
    }

    fn on_contact(&mut self, a: NodeId, b: NodeId, now: SimTime) {
        self.age_table(a, now);
        self.age_table(b, now);

        // Direct encounter update, both directions.
        for (x, y) in [(a, b), (b, a)] {
            let p = self.pred.entry((x, y)).or_insert(0.0);
            *p += (1.0 - *p) * self.params.p_init;
        }

        // Transitivity: through the peer's table.
        for (x, y) in [(a, b), (b, a)] {
            let p_xy = self.predictability(x, y);
            for (dst, p_yd) in self.destinations_known_by(y) {
                if dst == x {
                    continue;
                }
                let bound = p_xy * p_yd * self.params.beta;
                let p = self.pred.entry((x, dst)).or_insert(0.0);
                if bound > *p {
                    *p = bound;
                }
            }
        }
    }

    fn decide(
        &mut self,
        carrier: NodeId,
        peer: NodeId,
        entry: &mut BufferEntry,
        _now: SimTime,
    ) -> TransferDecision {
        let dst = entry.message.dst();
        if peer == dst {
            return TransferDecision::Handoff;
        }
        if self.predictability(peer, dst) > self.predictability(carrier, dst) {
            TransferDecision::Replicate { peer_tokens: 0 }
        } else {
            TransferDecision::Skip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::testutil::entry;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn encounter_raises_predictability() {
        let mut p = Prophet::new();
        assert_eq!(p.predictability(NodeId(0), NodeId(1)), 0.0);
        p.on_contact(NodeId(0), NodeId(1), t(0.0));
        assert!((p.predictability(NodeId(0), NodeId(1)) - 0.75).abs() < 1e-12);
        p.on_contact(NodeId(0), NodeId(1), t(1.0));
        // 0.75 + 0.25*0.75 = 0.9375, minus one second of aging.
        assert!((p.predictability(NodeId(0), NodeId(1)) - 0.9375).abs() < 1e-4);
    }

    #[test]
    fn self_predictability_is_one() {
        let p = Prophet::new();
        assert_eq!(p.predictability(NodeId(3), NodeId(3)), 1.0);
    }

    #[test]
    fn aging_decays_predictability() {
        let mut p = Prophet::new();
        p.on_contact(NodeId(0), NodeId(1), t(0.0));
        let before = p.predictability(NodeId(0), NodeId(1));
        // One aging unit later, a contact with an unrelated node triggers
        // table aging for node 0.
        p.on_contact(NodeId(0), NodeId(2), t(3600.0));
        let after = p.predictability(NodeId(0), NodeId(1));
        assert!(after < before, "{after} !< {before}");
        assert!((after - before * 0.98).abs() < 1e-9);
    }

    #[test]
    fn transitivity_propagates() {
        let mut p = Prophet::new();
        // 1 knows 2 well.
        p.on_contact(NodeId(1), NodeId(2), t(0.0));
        // 0 meets 1: picks up transitive predictability for 2.
        p.on_contact(NodeId(0), NodeId(1), t(1.0));
        let p02 = p.predictability(NodeId(0), NodeId(2));
        assert!(p02 > 0.0);
        // bound = P(0,1)*P(1,2)*beta, with P values slightly aged.
        assert!(p02 <= 0.75 * 0.75 * 0.25 + 1e-9);
    }

    #[test]
    fn forwards_up_the_gradient_only() {
        let mut p = Prophet::new();
        // Peer 1 has met destination 5; carrier 0 has not.
        p.on_contact(NodeId(1), NodeId(5), t(0.0));
        let mut e = entry(0, 5, 0);
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), &mut e, t(1.0)),
            TransferDecision::Replicate { peer_tokens: 0 }
        );
        // Reverse direction: 1 would not hand to 0.
        assert_eq!(
            p.decide(NodeId(1), NodeId(0), &mut e, t(1.0)),
            TransferDecision::Skip
        );
        // Meeting the destination: handoff.
        assert_eq!(
            p.decide(NodeId(0), NodeId(5), &mut e, t(1.0)),
            TransferDecision::Handoff
        );
    }

    #[test]
    #[should_panic(expected = "bad gamma")]
    fn rejects_bad_params() {
        let _ = Prophet::with_params(ProphetParams {
            gamma: 1.5,
            ..ProphetParams::default()
        });
    }
}
