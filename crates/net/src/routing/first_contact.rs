//! First Contact routing: single copy, handed to whoever is met first.

use omn_contacts::NodeId;
use omn_sim::SimTime;

use crate::buffer::BufferEntry;

use super::{RoutingProtocol, TransferDecision};

/// First Contact routing (Jain, Fall, Patra): a single message copy is
/// handed off to the first node encountered, performing a random walk over
/// the contact process until it stumbles on the destination.
///
/// The canonical single-copy *forwarding* baseline: overhead proportional
/// to the walk length, no replication at all, delivery usually worse than
/// [`super::DirectDelivery`]'s patience on sparse traces but better when
/// the source itself rarely meets the destination.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstContact;

impl FirstContact {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> FirstContact {
        FirstContact
    }
}

impl RoutingProtocol for FirstContact {
    fn name(&self) -> &'static str {
        "first-contact"
    }

    fn decide(
        &mut self,
        _carrier: NodeId,
        peer: NodeId,
        entry: &mut BufferEntry,
        _now: SimTime,
    ) -> TransferDecision {
        let _ = entry;
        let _ = peer;
        // Hand off to whoever we meet — including (trivially) the
        // destination.
        TransferDecision::Handoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::testutil::entry;

    #[test]
    fn always_hands_off() {
        let mut p = FirstContact::new();
        let mut e = entry(0, 5, 0);
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), &mut e, SimTime::ZERO),
            TransferDecision::Handoff
        );
        assert_eq!(
            p.decide(NodeId(1), NodeId(5), &mut e, SimTime::ZERO),
            TransferDecision::Handoff
        );
        assert_eq!(p.name(), "first-contact");
    }
}
