//! Direct delivery: only the source carries the message.

use omn_contacts::NodeId;
use omn_sim::SimTime;

use crate::buffer::BufferEntry;

use super::{RoutingProtocol, TransferDecision};

/// Direct delivery: a message is transferred only when the carrier meets
/// the destination itself.
///
/// One transmission per delivered message — the overhead lower bound — at
/// the cost of the worst delay and delivery ratio. The standard pessimistic
/// baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectDelivery;

impl DirectDelivery {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> DirectDelivery {
        DirectDelivery
    }
}

impl RoutingProtocol for DirectDelivery {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn decide(
        &mut self,
        _carrier: NodeId,
        peer: NodeId,
        entry: &mut BufferEntry,
        _now: SimTime,
    ) -> TransferDecision {
        if peer == entry.message.dst() {
            TransferDecision::Handoff
        } else {
            TransferDecision::Skip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::testutil::entry;

    #[test]
    fn transfers_only_to_destination() {
        let mut p = DirectDelivery::new();
        let mut e = entry(0, 5, 0);
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), &mut e, SimTime::ZERO),
            TransferDecision::Skip
        );
        assert_eq!(
            p.decide(NodeId(0), NodeId(5), &mut e, SimTime::ZERO),
            TransferDecision::Handoff
        );
    }
}
