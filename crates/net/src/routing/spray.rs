//! Binary Spray-and-Wait (Spyropoulos et al.).

use omn_contacts::NodeId;
use omn_sim::SimTime;

use crate::buffer::BufferEntry;

use super::{RoutingProtocol, TransferDecision};

/// Binary Spray-and-Wait: each message starts with `L` replication tokens.
/// A carrier holding more than one token gives `⌊tokens/2⌋` to any
/// encountered node without a copy (spray phase); a carrier down to one
/// token transfers only to the destination (wait phase).
///
/// Bounds the number of copies per message at `L` while keeping delay close
/// to epidemic for well-mixed mobility.
#[derive(Debug, Clone, Copy)]
pub struct SprayAndWait {
    initial_copies: u32,
}

impl SprayAndWait {
    /// Creates the protocol with `initial_copies = L` tokens per message.
    ///
    /// # Panics
    ///
    /// Panics if `initial_copies == 0`.
    #[must_use]
    pub fn new(initial_copies: u32) -> SprayAndWait {
        assert!(initial_copies > 0, "SprayAndWait: need at least one copy");
        SprayAndWait { initial_copies }
    }

    /// The configured copy budget `L`.
    #[must_use]
    pub fn initial_copies(&self) -> u32 {
        self.initial_copies
    }
}

impl RoutingProtocol for SprayAndWait {
    fn name(&self) -> &'static str {
        "spray-and-wait"
    }

    fn initial_tokens(&self) -> u32 {
        self.initial_copies
    }

    fn decide(
        &mut self,
        _carrier: NodeId,
        peer: NodeId,
        entry: &mut BufferEntry,
        _now: SimTime,
    ) -> TransferDecision {
        if peer == entry.message.dst() {
            return TransferDecision::Handoff;
        }
        if entry.tokens > 1 {
            let give = entry.tokens / 2;
            entry.tokens -= give;
            TransferDecision::Replicate { peer_tokens: give }
        } else {
            TransferDecision::Skip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::testutil::entry;

    #[test]
    fn binary_split() {
        let mut p = SprayAndWait::new(8);
        assert_eq!(p.initial_tokens(), 8);
        let mut e = entry(0, 5, 8);
        match p.decide(NodeId(0), NodeId(1), &mut e, SimTime::ZERO) {
            TransferDecision::Replicate { peer_tokens } => {
                assert_eq!(peer_tokens, 4);
                assert_eq!(e.tokens, 4);
            }
            other => panic!("expected replicate, got {other:?}"),
        }
        // Split again: 4 -> 2/2.
        match p.decide(NodeId(0), NodeId(2), &mut e, SimTime::ZERO) {
            TransferDecision::Replicate { peer_tokens } => {
                assert_eq!(peer_tokens, 2);
                assert_eq!(e.tokens, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn odd_tokens_keep_majority() {
        let mut p = SprayAndWait::new(5);
        let mut e = entry(0, 5, 5);
        match p.decide(NodeId(0), NodeId(1), &mut e, SimTime::ZERO) {
            TransferDecision::Replicate { peer_tokens } => {
                assert_eq!(peer_tokens, 2);
                assert_eq!(e.tokens, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wait_phase_only_delivers_to_destination() {
        let mut p = SprayAndWait::new(4);
        let mut e = entry(0, 5, 1);
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), &mut e, SimTime::ZERO),
            TransferDecision::Skip
        );
        assert_eq!(e.tokens, 1);
        assert_eq!(
            p.decide(NodeId(0), NodeId(5), &mut e, SimTime::ZERO),
            TransferDecision::Handoff
        );
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn rejects_zero_copies() {
        let _ = SprayAndWait::new(0);
    }
}
