//! Opportunistic routing protocols.
//!
//! All protocols implement [`RoutingProtocol`]: the simulator consults the
//! protocol at each contact, once per buffered message and direction, and
//! the protocol answers with a [`TransferDecision`].
//!
//! Provided protocols, in increasing sophistication:
//!
//! * [`DirectDelivery`] — the source holds the message until it meets the
//!   destination. One copy, minimal overhead, worst delay.
//! * [`FirstContact`] — single copy handed to whoever is met first: a
//!   random walk over the contact process.
//! * [`Epidemic`] — flood to every encountered node. Best possible delay
//!   under infinite resources, maximal overhead; the canonical upper bound.
//! * [`SprayAndWait`] — binary spray: `L` logical copies, each carrier
//!   hands half its tokens to nodes without a copy, then waits for the
//!   destination. Bounded overhead with near-epidemic delay.
//! * [`Prophet`] — forwards along the gradient of *delivery predictability*
//!   maintained from contact history (PRoPHET, Lindgren et al.).

mod direct;
mod epidemic;
mod first_contact;
mod prophet;
mod spray;

pub use direct::DirectDelivery;
pub use epidemic::Epidemic;
pub use first_contact::FirstContact;
pub use prophet::{Prophet, ProphetParams};
pub use spray::SprayAndWait;

use omn_contacts::NodeId;
use omn_sim::SimTime;

use crate::buffer::BufferEntry;

/// What to do with one buffered message when meeting a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDecision {
    /// Keep the message; transfer nothing.
    Skip,
    /// Give the peer a copy with the given replication tokens, keeping our
    /// own copy.
    Replicate {
        /// Tokens assigned to the peer's new copy.
        peer_tokens: u32,
    },
    /// Hand the message off to the peer (single-copy forwarding): the peer
    /// receives it with our remaining tokens and we drop ours.
    Handoff,
}

/// A DTN routing protocol.
///
/// Implementations are deterministic given the contact sequence: any
/// tie-breaking must not depend on hash-map iteration order (the simulator
/// presents messages in sorted-id order).
pub trait RoutingProtocol: std::fmt::Debug {
    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// Initial replication tokens assigned to a freshly created message at
    /// its source.
    fn initial_tokens(&self) -> u32 {
        0
    }

    /// Observes a contact between `a` and `b` at `now` (for protocols that
    /// learn from contact history). Called once per contact, before any
    /// transfer decisions.
    fn on_contact(&mut self, a: NodeId, b: NodeId, now: SimTime) {
        let _ = (a, b, now);
    }

    /// Decides what `carrier` does with `entry` when meeting `peer`
    /// (who does not yet hold a copy). May mutate the carrier's entry,
    /// e.g. to split replication tokens.
    fn decide(
        &mut self,
        carrier: NodeId,
        peer: NodeId,
        entry: &mut BufferEntry,
        now: SimTime,
    ) -> TransferDecision;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::message::{Message, MessageId};

    /// A buffer entry for protocol unit tests.
    pub(crate) fn entry(src: u32, dst: u32, tokens: u32) -> BufferEntry {
        BufferEntry {
            message: Message::new(
                MessageId(1),
                NodeId(src),
                NodeId(dst),
                100,
                SimTime::ZERO,
                None,
            ),
            tokens,
            received: SimTime::ZERO,
        }
    }
}
