//! Epidemic routing: flood to every encountered node.

use omn_contacts::NodeId;
use omn_sim::SimTime;

use crate::buffer::BufferEntry;

use super::{RoutingProtocol, TransferDecision};

/// Epidemic routing (Vahdat & Becker): every carrier replicates every
/// message to every encountered node that lacks a copy.
///
/// Delivers with the minimum possible delay when buffers and bandwidth are
/// unconstrained, at maximal transmission overhead. Used as the delay
/// lower-bound / overhead upper-bound baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Epidemic;

impl Epidemic {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Epidemic {
        Epidemic
    }
}

impl RoutingProtocol for Epidemic {
    fn name(&self) -> &'static str {
        "epidemic"
    }

    fn decide(
        &mut self,
        _carrier: NodeId,
        _peer: NodeId,
        _entry: &mut BufferEntry,
        _now: SimTime,
    ) -> TransferDecision {
        TransferDecision::Replicate { peer_tokens: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::testutil::entry;

    #[test]
    fn always_replicates() {
        let mut p = Epidemic::new();
        let mut e = entry(0, 5, 0);
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), &mut e, SimTime::ZERO),
            TransferDecision::Replicate { peer_tokens: 0 }
        );
        assert_eq!(p.name(), "epidemic");
        assert_eq!(p.initial_tokens(), 0);
    }
}
