//! Per-node message buffers with capacity limits, TTLs, and drop policies.

use std::collections::HashMap;

use omn_sim::SimTime;

use crate::message::{Message, MessageId};

/// What to do when a message arrives at a full buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Reject the incoming message.
    #[default]
    RejectNewest,
    /// Evict the oldest (by creation time) buffered message to make room.
    DropOldest,
}

/// One buffered copy of a message, with protocol-specific replication
/// tokens (used by Spray-and-Wait; other protocols ignore them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferEntry {
    /// The buffered message.
    pub message: Message,
    /// Remaining replication tokens for quota-based protocols.
    pub tokens: u32,
    /// When this copy arrived at the node.
    pub received: SimTime,
}

/// A bounded per-node message buffer.
///
/// Capacity is counted in messages. Expired messages are purged lazily by
/// [`MessageBuffer::purge_expired`] (the simulator calls it at each contact).
#[derive(Debug, Clone)]
pub struct MessageBuffer {
    capacity: usize,
    policy: DropPolicy,
    entries: HashMap<MessageId, BufferEntry>,
    evictions: u64,
}

impl MessageBuffer {
    /// Creates a buffer holding at most `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, policy: DropPolicy) -> MessageBuffer {
        assert!(capacity > 0, "MessageBuffer: zero capacity");
        MessageBuffer {
            capacity,
            policy,
            entries: HashMap::new(),
            evictions: 0,
        }
    }

    /// Number of buffered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the buffer holds a copy of `id`.
    #[must_use]
    pub fn contains(&self, id: MessageId) -> bool {
        self.entries.contains_key(&id)
    }

    /// The entry for `id`, if buffered.
    #[must_use]
    pub fn get(&self, id: MessageId) -> Option<&BufferEntry> {
        self.entries.get(&id)
    }

    /// Mutable access to the entry for `id` (e.g. to split spray tokens).
    #[must_use]
    pub fn get_mut(&mut self, id: MessageId) -> Option<&mut BufferEntry> {
        self.entries.get_mut(&id)
    }

    /// Inserts a copy. Returns `true` if the message is now buffered and
    /// `false` if it was rejected (full buffer under
    /// [`DropPolicy::RejectNewest`], or duplicate).
    ///
    /// Under [`DropPolicy::DropOldest`], the oldest message (by creation
    /// time) is evicted to make room; the eviction count is reported via the
    /// return of [`MessageBuffer::take_evictions`].
    pub fn insert(&mut self, message: Message, tokens: u32, now: SimTime) -> bool {
        if self.entries.contains_key(&message.id()) {
            return false;
        }
        if self.entries.len() >= self.capacity {
            match self.policy {
                DropPolicy::RejectNewest => return false,
                DropPolicy::DropOldest => {
                    if let Some(oldest) = self
                        .entries
                        .values()
                        .min_by(|x, y| {
                            (x.message.created(), x.message.id())
                                .cmp(&(y.message.created(), y.message.id()))
                        })
                        .map(|e| e.message.id())
                    {
                        self.entries.remove(&oldest);
                        self.evictions += 1;
                    }
                }
            }
        }
        self.entries.insert(
            message.id(),
            BufferEntry {
                message,
                tokens,
                received: now,
            },
        );
        true
    }

    /// Removes a message copy, returning it if present.
    pub fn remove(&mut self, id: MessageId) -> Option<BufferEntry> {
        self.entries.remove(&id)
    }

    /// Drops expired messages; returns how many were dropped.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| !e.message.is_expired(now));
        before - self.entries.len()
    }

    /// Message ids currently buffered, in deterministic (sorted) order.
    #[must_use]
    pub fn ids(&self) -> Vec<MessageId> {
        let mut ids: Vec<MessageId> = self.entries.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Iterates over buffered entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &BufferEntry> {
        self.entries.values()
    }

    /// Total evictions performed by [`DropPolicy::DropOldest`] so far, and
    /// resets the counter.
    pub fn take_evictions(&mut self) -> u64 {
        std::mem::take(&mut self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omn_contacts::NodeId;

    fn msg(id: u64, created: f64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(1),
            100,
            SimTime::from_secs(created),
            None,
        )
    }

    fn msg_ttl(id: u64, created: f64, ttl: f64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(1),
            100,
            SimTime::from_secs(created),
            Some(omn_sim::SimDuration::from_secs(ttl)),
        )
    }

    #[test]
    fn insert_and_query() {
        let mut b = MessageBuffer::new(4, DropPolicy::RejectNewest);
        assert!(b.insert(msg(1, 0.0), 0, SimTime::ZERO));
        assert!(b.contains(MessageId(1)));
        assert_eq!(b.len(), 1);
        // Duplicate rejected.
        assert!(!b.insert(msg(1, 0.0), 0, SimTime::ZERO));
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(MessageId(1)).unwrap().tokens, 0);
    }

    #[test]
    fn reject_newest_when_full() {
        let mut b = MessageBuffer::new(2, DropPolicy::RejectNewest);
        assert!(b.insert(msg(1, 0.0), 0, SimTime::ZERO));
        assert!(b.insert(msg(2, 1.0), 0, SimTime::ZERO));
        assert!(!b.insert(msg(3, 2.0), 0, SimTime::ZERO));
        assert_eq!(b.len(), 2);
        assert!(!b.contains(MessageId(3)));
    }

    #[test]
    fn drop_oldest_when_full() {
        let mut b = MessageBuffer::new(2, DropPolicy::DropOldest);
        assert!(b.insert(msg(1, 0.0), 0, SimTime::ZERO));
        assert!(b.insert(msg(2, 1.0), 0, SimTime::ZERO));
        assert!(b.insert(msg(3, 2.0), 0, SimTime::ZERO));
        assert!(!b.contains(MessageId(1)));
        assert!(b.contains(MessageId(2)));
        assert!(b.contains(MessageId(3)));
        assert_eq!(b.take_evictions(), 1);
        assert_eq!(b.take_evictions(), 0);
    }

    #[test]
    fn purge_expired() {
        let mut b = MessageBuffer::new(4, DropPolicy::RejectNewest);
        b.insert(msg_ttl(1, 0.0, 10.0), 0, SimTime::ZERO);
        b.insert(msg_ttl(2, 0.0, 100.0), 0, SimTime::ZERO);
        assert_eq!(b.purge_expired(SimTime::from_secs(50.0)), 1);
        assert!(!b.contains(MessageId(1)));
        assert!(b.contains(MessageId(2)));
    }

    #[test]
    fn ids_are_sorted() {
        let mut b = MessageBuffer::new(8, DropPolicy::RejectNewest);
        for id in [5u64, 1, 3] {
            b.insert(msg(id, 0.0), 0, SimTime::ZERO);
        }
        assert_eq!(b.ids(), vec![MessageId(1), MessageId(3), MessageId(5)]);
    }

    #[test]
    fn token_mutation() {
        let mut b = MessageBuffer::new(4, DropPolicy::RejectNewest);
        b.insert(msg(1, 0.0), 8, SimTime::ZERO);
        b.get_mut(MessageId(1)).unwrap().tokens = 4;
        assert_eq!(b.get(MessageId(1)).unwrap().tokens, 4);
    }

    #[test]
    fn remove_returns_entry() {
        let mut b = MessageBuffer::new(4, DropPolicy::RejectNewest);
        b.insert(msg(1, 0.0), 2, SimTime::ZERO);
        let e = b.remove(MessageId(1)).unwrap();
        assert_eq!(e.message.id(), MessageId(1));
        assert!(b.is_empty());
        assert!(b.remove(MessageId(1)).is_none());
    }
}
