//! Unicast traffic workloads.

use std::fmt;

use omn_contacts::{ContactTrace, NodeId};
use omn_sim::{RngFactory, SimTime};
use rand::Rng;

/// Why a workload could not be generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// The trace has too few nodes to draw distinct endpoints from.
    TooFewNodes {
        /// Nodes present in the trace.
        nodes: usize,
        /// Nodes required.
        required: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::TooFewNodes { nodes, required } => write!(
                f,
                "workload needs at least {required} nodes, trace has {nodes}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// One unicast demand: deliver a message from `src` to `dst`, created at
/// `created`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnicastDemand {
    /// Creation time.
    pub created: SimTime,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// Generates `count` unicast demands with creation times uniform over the
/// first 70% of the trace (leaving time for delivery) and uniformly random
/// distinct endpoints. Deterministic given the factory (stream
/// `"unicast-workload"`). Demands are returned sorted by creation time.
///
/// # Errors
///
/// Returns [`WorkloadError::TooFewNodes`] if the trace has fewer than two
/// nodes (no distinct endpoint pair exists).
pub fn uniform_unicast(
    trace: &ContactTrace,
    count: usize,
    factory: &RngFactory,
) -> Result<Vec<UnicastDemand>, WorkloadError> {
    let n = trace.node_count();
    if n < 2 {
        return Err(WorkloadError::TooFewNodes {
            nodes: n,
            required: 2,
        });
    }
    let mut rng = factory.stream("unicast-workload");
    let horizon = trace.span().as_secs() * 0.7;
    let mut demands: Vec<UnicastDemand> = (0..count)
        .map(|_| {
            let src = NodeId(rng.gen_range(0..n as u32));
            let dst = loop {
                let d = NodeId(rng.gen_range(0..n as u32));
                if d != src {
                    break d;
                }
            };
            UnicastDemand {
                created: SimTime::from_secs(rng.gen_range(0.0..horizon.max(f64::MIN_POSITIVE))),
                src,
                dst,
            }
        })
        .collect();
    demands.sort_by_key(|d| (d.created, d.src, d.dst));
    Ok(demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omn_contacts::TraceBuilder;

    fn trace(n: usize) -> ContactTrace {
        TraceBuilder::new(n)
            .span(SimTime::from_secs(1000.0))
            .build()
            .unwrap()
    }

    #[test]
    fn generates_requested_count_sorted() {
        let demands = uniform_unicast(&trace(10), 50, &RngFactory::new(1)).unwrap();
        assert_eq!(demands.len(), 50);
        for w in demands.windows(2) {
            assert!(w[0].created <= w[1].created);
        }
    }

    #[test]
    fn endpoints_are_distinct_and_in_range() {
        for d in uniform_unicast(&trace(5), 100, &RngFactory::new(2)).unwrap() {
            assert_ne!(d.src, d.dst);
            assert!(d.src.index() < 5 && d.dst.index() < 5);
            assert!(d.created.as_secs() <= 700.0);
        }
    }

    #[test]
    fn deterministic() {
        let t = trace(8);
        let f = RngFactory::new(3);
        assert_eq!(
            uniform_unicast(&t, 20, &f).unwrap(),
            uniform_unicast(&t, 20, &f).unwrap()
        );
    }

    #[test]
    fn rejects_tiny_network_with_typed_error() {
        let err = uniform_unicast(&trace(1), 1, &RngFactory::new(1)).unwrap_err();
        assert_eq!(
            err,
            WorkloadError::TooFewNodes {
                nodes: 1,
                required: 2
            }
        );
        assert!(err.to_string().contains("at least 2 nodes"));
    }
}
