//! Unicast traffic workloads.

use omn_contacts::{ContactTrace, NodeId};
use omn_sim::{RngFactory, SimTime};
use rand::Rng;

/// One unicast demand: deliver a message from `src` to `dst`, created at
/// `created`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnicastDemand {
    /// Creation time.
    pub created: SimTime,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// Generates `count` unicast demands with creation times uniform over the
/// first 70% of the trace (leaving time for delivery) and uniformly random
/// distinct endpoints. Deterministic given the factory (stream
/// `"unicast-workload"`). Demands are returned sorted by creation time.
///
/// # Panics
///
/// Panics if the trace has fewer than two nodes.
#[must_use]
pub fn uniform_unicast(
    trace: &ContactTrace,
    count: usize,
    factory: &RngFactory,
) -> Vec<UnicastDemand> {
    let n = trace.node_count();
    assert!(n >= 2, "uniform_unicast: need at least two nodes");
    let mut rng = factory.stream("unicast-workload");
    let horizon = trace.span().as_secs() * 0.7;
    let mut demands: Vec<UnicastDemand> = (0..count)
        .map(|_| {
            let src = NodeId(rng.gen_range(0..n as u32));
            let dst = loop {
                let d = NodeId(rng.gen_range(0..n as u32));
                if d != src {
                    break d;
                }
            };
            UnicastDemand {
                created: SimTime::from_secs(rng.gen_range(0.0..horizon.max(f64::MIN_POSITIVE))),
                src,
                dst,
            }
        })
        .collect();
    demands.sort_by_key(|d| (d.created, d.src, d.dst));
    demands
}

#[cfg(test)]
mod tests {
    use super::*;
    use omn_contacts::TraceBuilder;

    fn trace(n: usize) -> ContactTrace {
        TraceBuilder::new(n)
            .span(SimTime::from_secs(1000.0))
            .build()
            .unwrap()
    }

    #[test]
    fn generates_requested_count_sorted() {
        let demands = uniform_unicast(&trace(10), 50, &RngFactory::new(1));
        assert_eq!(demands.len(), 50);
        for w in demands.windows(2) {
            assert!(w[0].created <= w[1].created);
        }
    }

    #[test]
    fn endpoints_are_distinct_and_in_range() {
        for d in uniform_unicast(&trace(5), 100, &RngFactory::new(2)) {
            assert_ne!(d.src, d.dst);
            assert!(d.src.index() < 5 && d.dst.index() < 5);
            assert!(d.created.as_secs() <= 700.0);
        }
    }

    #[test]
    fn deterministic() {
        let t = trace(8);
        let f = RngFactory::new(3);
        assert_eq!(uniform_unicast(&t, 20, &f), uniform_unicast(&t, 20, &f));
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn rejects_tiny_network() {
        let _ = uniform_unicast(&trace(1), 1, &RngFactory::new(1));
    }
}
