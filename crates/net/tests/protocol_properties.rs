//! Cross-protocol property tests on random traces.

use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_net::routing::{DirectDelivery, Epidemic, Prophet, SprayAndWait};
use omn_net::{workload, NetworkSimulator, SimConfig};
use omn_sim::{RngFactory, SimDuration};
use proptest::prelude::*;

fn scenario(
    seed: u64,
    nodes: usize,
    msgs: usize,
) -> (omn_contacts::ContactTrace, Vec<omn_net::UnicastDemand>) {
    let f = RngFactory::new(seed);
    let trace = generate_pairwise(
        &PairwiseConfig::new(nodes, SimDuration::from_days(1.0)).mean_rate(1.0 / 3600.0),
        &f,
    );
    let demands = workload::uniform_unicast(&trace, msgs, &f).unwrap();
    (trace, demands)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Epidemic routing delivers at least as many messages as every other
    /// protocol, and at least as fast (per-message minimum-delay property),
    /// under unconstrained resources.
    #[test]
    fn epidemic_dominates_delivery(seed in any::<u64>()) {
        let (trace, demands) = scenario(seed, 14, 30);
        let sim = NetworkSimulator::new(SimConfig::default());
        let epidemic = sim.run(&trace, &mut Epidemic::new(), &demands);
        let direct = sim.run(&trace, &mut DirectDelivery::new(), &demands);
        let spray = sim.run(&trace, &mut SprayAndWait::new(4), &demands);
        let prophet = sim.run(&trace, &mut Prophet::new(), &demands);

        prop_assert!(epidemic.delivered >= direct.delivered);
        prop_assert!(epidemic.delivered >= spray.delivered);
        prop_assert!(epidemic.delivered >= prophet.delivered);
    }

    /// Direct delivery never transmits more than once per delivered message.
    #[test]
    fn direct_overhead_is_one(seed in any::<u64>()) {
        let (trace, demands) = scenario(seed, 12, 30);
        let sim = NetworkSimulator::new(SimConfig::default());
        let report = sim.run(&trace, &mut DirectDelivery::new(), &demands);
        prop_assert_eq!(report.transmissions, report.delivered as u64);
    }

    /// Spray-and-Wait transmissions are bounded by L per created message
    /// (each message spawns at most L copies, each costing one transfer).
    #[test]
    fn spray_overhead_is_bounded(seed in any::<u64>(), copies in 1u32..8) {
        let (trace, demands) = scenario(seed, 12, 30);
        let sim = NetworkSimulator::new(SimConfig::default());
        let report = sim.run(&trace, &mut SprayAndWait::new(copies), &demands);
        prop_assert!(
            report.transmissions <= u64::from(copies) * demands.len() as u64,
            "tx {} > L {} * msgs {}",
            report.transmissions,
            copies,
            demands.len()
        );
    }

    /// More spray copies never hurt delivery (monotonicity in the copy
    /// budget on identical traces and workloads).
    #[test]
    fn spray_monotone_in_copies(seed in any::<u64>()) {
        let (trace, demands) = scenario(seed, 14, 30);
        let sim = NetworkSimulator::new(SimConfig::default());
        let few = sim.run(&trace, &mut SprayAndWait::new(2), &demands);
        let many = sim.run(&trace, &mut SprayAndWait::new(16), &demands);
        prop_assert!(many.delivered >= few.delivered);
    }

    /// Delivery delays are non-negative and bounded by the trace span.
    #[test]
    fn delays_are_sane(seed in any::<u64>()) {
        let (trace, demands) = scenario(seed, 12, 30);
        let sim = NetworkSimulator::new(SimConfig::default());
        let report = sim.run(&trace, &mut Epidemic::new(), &demands);
        for &d in report.delays.samples() {
            prop_assert!(d >= 0.0);
            prop_assert!(d <= trace.span().as_secs());
        }
        prop_assert_eq!(report.delays.len(), report.delivered);
    }

    /// Tight bandwidth never increases delivery.
    #[test]
    fn bandwidth_limits_hurt(seed in any::<u64>()) {
        let (trace, demands) = scenario(seed, 12, 40);
        let free = NetworkSimulator::new(SimConfig::default())
            .run(&trace, &mut Epidemic::new(), &demands);
        let tight = NetworkSimulator::new(SimConfig {
            max_transfers_per_contact: Some(1),
            ..SimConfig::default()
        })
        .run(&trace, &mut Epidemic::new(), &demands);
        // Note: total *transmissions* can go either way — delayed delivery
        // under tight bandwidth postpones destination immunity, which can
        // cause extra copying. Delivery itself is monotone.
        prop_assert!(tight.delivered <= free.delivered);
    }
}
