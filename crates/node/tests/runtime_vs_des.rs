//! Runtime-vs-DES cross-validation (the E18 acceptance property, as a
//! tier-1 test on small worlds).
//!
//! The async node runtime in lockstep mode and the discrete-event
//! simulator drive the *same* sans-io protocol core from the same
//! contact trace, so every observable the paper's evaluation reads must
//! coincide exactly: the final per-node version vector, the
//! time-weighted freshness ratio (bit-identical — both sides perform the
//! identical tracker update sequence), transmission and replica counts,
//! and a clean invariant-oracle report.

use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_contacts::{ContactGraph, ContactTrace, TraceSource};
use omn_core::hierarchy::HierarchyStrategy;
use omn_core::protocol::ProtocolMode;
use omn_core::scheme::{EpidemicRefresh, HierarchicalConfig, HierarchicalScheme, PlanningMode};
use omn_core::sim::{FreshnessConfig, FreshnessReport, FreshnessSimulator};
use omn_core::RefreshHierarchy;
use omn_node::{run_firehose, run_lockstep, RuntimeConfig, RuntimeReport};
use omn_sim::{OracleMode, RngFactory, SimDuration};

const SEEDS: [u64; 3] = [11, 42, 1337];
const PERIOD_SECS: f64 = 6.0 * 3600.0;

fn small_world(seed: u64) -> (ContactTrace, RngFactory) {
    let factory = RngFactory::new(seed);
    let config = PairwiseConfig::new(24, SimDuration::from_days(2.0));
    (generate_pairwise(&config, &factory), factory)
}

fn des_config() -> FreshnessConfig {
    FreshnessConfig {
        refresh_period: SimDuration::from_secs(PERIOD_SECS),
        query_count: 0,
        lifetime: None,
        oracle_mode: OracleMode::Campaign,
        ..FreshnessConfig::default()
    }
}

fn runtime_config(mode: ProtocolMode) -> RuntimeConfig {
    RuntimeConfig {
        oracle_mode: OracleMode::Campaign,
        workers: 4,
        inbox_capacity: 64,
        ..RuntimeConfig::new(mode, SimDuration::from_secs(PERIOD_SECS))
    }
}

/// Every metric the cross-validation pins, compared exactly.
fn assert_reports_match(rt: &RuntimeReport, des: &FreshnessReport, label: &str) {
    assert_eq!(
        rt.final_member_versions, des.final_member_versions,
        "{label}: final per-node version vectors diverge"
    );
    assert_eq!(
        rt.mean_freshness.to_bits(),
        des.mean_freshness.to_bits(),
        "{label}: mean freshness diverges ({} vs {})",
        rt.mean_freshness,
        des.mean_freshness
    );
    assert_eq!(
        rt.version_count, des.version_count,
        "{label}: version counts diverge"
    );
    assert_eq!(
        rt.transmissions, des.transmissions,
        "{label}: transmission totals diverge"
    );
    assert_eq!(
        rt.per_node_transmissions, des.per_node_transmissions,
        "{label}: per-node transmission loads diverge"
    );
    assert_eq!(rt.replicas, des.replicas, "{label}: replica counts diverge");
    assert!(
        rt.oracle.is_clean(),
        "{label}: runtime oracle violations: {:?}",
        rt.oracle
    );
    assert!(
        des.oracle.is_clean(),
        "{label}: DES oracle violations: {:?}",
        des.oracle
    );
}

#[test]
fn tree_runtime_matches_des_on_pinned_seeds() {
    for seed in SEEDS {
        let (trace, factory) = small_world(seed);
        let sim = FreshnessSimulator::new(des_config());
        let (root, members) = sim.select_roles(&trace);

        let mut scheme = HierarchicalScheme::new(HierarchicalConfig {
            strategy: HierarchyStrategy::GreedySed { fanout: Some(3) },
            replication: None,
            max_relays: 3,
            rebuild_every: None,
            reparent: false,
            planning: PlanningMode::Oracle,
            resilience: None,
        });
        let des = sim.run_with_roles(&trace, root, &members, &mut scheme, &factory);

        // The runtime is handed the same tree the DES scheme builds at
        // on_start: same root, members, oracle graph, and strategy.
        let graph = ContactGraph::from_trace(&trace);
        let tree = RefreshHierarchy::build(
            root,
            &members,
            &graph,
            HierarchyStrategy::GreedySed { fanout: Some(3) },
            &mut factory.stream("scheme"),
        );
        let rt = run_lockstep(
            TraceSource::new(&trace),
            root,
            &members,
            Some(&tree),
            &runtime_config(ProtocolMode::HierTree),
            &factory,
        );
        assert_reports_match(&rt, &des, &format!("tree seed {seed}"));
        assert!(
            rt.decode_errors == 0,
            "seed {seed}: wire frames failed to decode"
        );
        assert_eq!(
            rt.messages_received, rt.transmissions,
            "seed {seed}: every sent frame must arrive in lockstep"
        );
        assert!(
            rt.transmissions == 0 || rt.bytes_sent > rt.transmissions,
            "seed {seed}: every wire frame carries more than one encoded byte"
        );
    }
}

#[test]
fn epidemic_runtime_matches_des_on_pinned_seeds() {
    for seed in SEEDS {
        let (trace, factory) = small_world(seed);
        let sim = FreshnessSimulator::new(des_config());
        let (root, members) = sim.select_roles(&trace);

        let mut scheme = EpidemicRefresh::new();
        let des = sim.run_with_roles(&trace, root, &members, &mut scheme, &factory);

        let rt = run_lockstep(
            TraceSource::new(&trace),
            root,
            &members,
            None,
            &runtime_config(ProtocolMode::Epidemic),
            &factory,
        );
        assert_reports_match(&rt, &des, &format!("epidemic seed {seed}"));

        // Relay-occupancy seconds sum f64 contributions in hash order on
        // the DES side, so the once-truncated totals may differ by one.
        let rt_secs = rt.extras.get("relay-copy-seconds") as i64;
        let des_secs = des.extras.get("relay-copy-seconds") as i64;
        assert!(
            (rt_secs - des_secs).abs() <= 1,
            "seed {seed}: relay occupancy diverges: {rt_secs} vs {des_secs}"
        );
    }
}

#[test]
fn firehose_mode_delivers_every_frame_and_measures_throughput() {
    let (trace, _) = small_world(3);
    let sim = FreshnessSimulator::new(des_config());
    let (root, members) = sim.select_roles(&trace);
    let report = run_firehose(
        TraceSource::new(&trace),
        root,
        &members,
        &runtime_config(ProtocolMode::Epidemic),
    );
    assert_eq!(report.nodes, 24);
    assert!(report.contacts > 0);
    assert!(report.births > 0);
    assert!(
        report.messages_sent > 0,
        "announced links must exchange frames"
    );
    assert_eq!(
        report.messages_received, report.messages_sent,
        "the quiesce rounds must drain every in-flight frame"
    );
    assert_eq!(report.decode_errors, 0);
}

#[test]
fn lockstep_runs_are_deterministic() {
    let (trace, factory) = small_world(7);
    let sim = FreshnessSimulator::new(des_config());
    let (root, members) = sim.select_roles(&trace);
    let run = || {
        run_lockstep(
            TraceSource::new(&trace),
            root,
            &members,
            None,
            &runtime_config(ProtocolMode::Epidemic),
            &factory,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_member_versions, b.final_member_versions);
    assert_eq!(a.mean_freshness.to_bits(), b.mean_freshness.to_bits());
    assert_eq!(a.transmissions, b.transmissions);
    assert_eq!(a.per_node_transmissions, b.per_node_transmissions);
    assert_eq!(a.replicas, b.replicas);
}
