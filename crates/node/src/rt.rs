//! A minimal multi-threaded async executor.
//!
//! The container this workspace builds in has no async runtime crate, so
//! `omn-node` brings its own: a classic wake-queue executor built from
//! `std::task::Wake`, a `Mutex`/`Condvar` injector queue, and a fixed pool
//! of worker threads. It supports exactly what the node runtime needs —
//! `spawn` + cooperative wakeups from the bounded channels in
//! [`chan`](crate::chan) — and nothing more (no IO reactor, no timers;
//! simulated time is driven by the link supervisor).

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Shared executor state: the ready queue and shutdown flag.
struct Shared {
    ready: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Locks the ready queue, recovering from a poisoned mutex: a worker
    /// that panicked inside a task poll never leaves the queue itself
    /// half-mutated (pushes and pops are single operations), so the
    /// remaining workers can keep scheduling the surviving tasks.
    fn ready(&self) -> MutexGuard<'_, VecDeque<Arc<Task>>> {
        self.ready.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One spawned task. `queued` deduplicates wakeups: a task is pushed onto
/// the ready queue at most once until a worker picks it up.
struct Task {
    future: Mutex<Option<BoxFuture>>,
    queued: AtomicBool,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            let shared = Arc::clone(&self.shared);
            shared.ready().push_back(self);
            shared.available.notify_one();
        }
    }
}

/// The executor: spawn futures, then [`Executor::shutdown`] to join the
/// workers once all communication has quiesced.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Executor {
    /// Starts a pool of `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Executor {
        let shared = Arc::new(Shared {
            ready: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("omn-node-worker-{i}"))
                    .spawn(move || worker(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, workers }
    }

    /// Spawns a future onto the pool.
    pub fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            queued: AtomicBool::new(false),
            shared: Arc::clone(&self.shared),
        });
        task.wake();
    }

    /// Stops the workers after the ready queue drains of running work and
    /// joins them. Tasks still pending on a channel are dropped in place
    /// (their futures are simply never polled again).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut ready = shared.ready();
            loop {
                if let Some(t) = ready.pop_front() {
                    break t;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                ready = shared
                    .available
                    .wait(ready)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Clear the dedup flag *before* polling: a wake that lands during
        // the poll re-queues the task (the second worker then briefly
        // blocks on the future mutex, which is fine).
        task.queued.store(false, Ordering::Release);
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        let mut slot = match task.future.lock() {
            Ok(slot) => slot,
            // The task panicked mid-poll on another worker: its future
            // is in an unknown state and must never be polled again.
            // Drop it in place; the rest of the pool keeps running.
            Err(poisoned) => {
                let mut slot = poisoned.into_inner();
                *slot = None;
                slot
            }
        };
        if let Some(fut) = slot.as_mut() {
            if let Poll::Ready(()) = fut.as_mut().poll(&mut cx) {
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn spawned_futures_run_to_completion() {
        let exec = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            exec.spawn(async move {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        exec.shutdown();
    }

    #[test]
    fn tasks_resume_after_cross_task_wakeups() {
        let exec = Executor::new(2);
        let (tx, rx) = crate::chan::channel::<u32>(4);
        let (done_tx, done_rx) = mpsc::channel();
        exec.spawn(async move {
            let mut sum = 0;
            let mut rx = rx;
            while let Some(v) = rx.recv().await {
                sum += v;
            }
            done_tx.send(sum).unwrap();
        });
        exec.spawn(async move {
            for v in 1..=100u32 {
                tx.send(v).await.unwrap();
            }
        });
        let sum = done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .unwrap();
        assert_eq!(sum, 5050);
        exec.shutdown();
    }
}
