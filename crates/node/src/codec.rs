//! Serialization of [`ProtocolMsg`] into `omn-net` wire frames.
//!
//! Every message a node task sends crosses its link as real bytes: the
//! protocol payload is tag-encoded, wrapped in an [`omn_net::Frame`] whose
//! [`Message`] header carries the sender, receiver, and send instant, and
//! decoded back on the receiving side. Decode failures are typed
//! ([`CodecError`]) and surface as counted drops, never panics.

use omn_contacts::NodeId;
use omn_core::protocol::{PeerSummary, ProtocolMsg};
use omn_net::{Frame, Message, MessageId, WireError};
use omn_sim::SimTime;

/// Payload tag for [`ProtocolMsg::Refresh`].
const TAG_REFRESH: u8 = 0;
/// Payload tag for [`ProtocolMsg::Summary`].
const TAG_SUMMARY: u8 = 1;

/// Why a received byte buffer could not be decoded into a protocol
/// message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The outer frame was malformed or oversized.
    Frame(WireError),
    /// The buffer held a frame prefix but not a whole frame.
    Truncated,
    /// Whole-frame decode left unconsumed trailing bytes.
    TrailingBytes,
    /// The payload tag is not part of the protocol.
    UnknownTag(u8),
    /// The payload body did not match its tag's layout.
    BadPayload,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Frame(e) => write!(f, "frame error: {e}"),
            CodecError::Truncated => write!(f, "buffer holds only a partial frame"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after frame"),
            CodecError::UnknownTag(t) => write!(f, "unknown protocol payload tag {t}"),
            CodecError::BadPayload => write!(f, "payload body does not match its tag"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> CodecError {
        CodecError::Frame(e)
    }
}

/// Encodes `msg` from `from` to `to` at simulated instant `at` into one
/// wire frame. `seq` becomes the frame's [`MessageId`] (unique per
/// sender).
#[must_use]
pub fn encode(seq: u64, from: NodeId, to: NodeId, at: SimTime, msg: &ProtocolMsg) -> Vec<u8> {
    let payload = encode_payload(msg);
    let size = payload.len().max(1) as u64;
    let message = Message::new(MessageId(seq), from, to, size, at, None);
    Frame::new(message, payload).to_bytes()
}

/// Decodes one whole frame: the sender, the simulated send instant, and
/// the protocol message.
pub fn decode(bytes: &[u8]) -> Result<(NodeId, SimTime, ProtocolMsg), CodecError> {
    let (frame, used) = Frame::decode(bytes)?.ok_or(CodecError::Truncated)?;
    if used != bytes.len() {
        return Err(CodecError::TrailingBytes);
    }
    let msg = decode_payload(&frame.payload)?;
    Ok((frame.message.src(), frame.message.created(), msg))
}

/// Decodes the protocol payload of an already-parsed frame (for
/// transports that do their own stream framing).
pub fn decode_frame(frame: &Frame) -> Result<ProtocolMsg, CodecError> {
    decode_payload(&frame.payload)
}

fn encode_payload(msg: &ProtocolMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    match *msg {
        ProtocolMsg::Refresh { version } => {
            out.push(TAG_REFRESH);
            out.extend_from_slice(&version.to_le_bytes());
        }
        ProtocolMsg::Summary(s) => {
            out.push(TAG_SUMMARY);
            out.extend_from_slice(&s.node.0.to_le_bytes());
            out.push(u8::from(s.is_member));
            push_opt_u64(&mut out, s.cache);
            push_opt_u64(&mut out, s.carried);
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Result<ProtocolMsg, CodecError> {
    let (&tag, body) = payload.split_first().ok_or(CodecError::BadPayload)?;
    match tag {
        TAG_REFRESH => {
            let version = u64::from_le_bytes(body.try_into().map_err(|_| CodecError::BadPayload)?);
            Ok(ProtocolMsg::Refresh { version })
        }
        TAG_SUMMARY => {
            let mut r = body;
            let node = NodeId(u32::from_le_bytes(
                take(&mut r, 4)?.try_into().expect("4 bytes"),
            ));
            let is_member = match take(&mut r, 1)?[0] {
                0 => false,
                1 => true,
                _ => return Err(CodecError::BadPayload),
            };
            let cache = take_opt_u64(&mut r)?;
            let carried = take_opt_u64(&mut r)?;
            if !r.is_empty() {
                return Err(CodecError::BadPayload);
            }
            Ok(ProtocolMsg::Summary(PeerSummary {
                node,
                is_member,
                cache,
                carried,
            }))
        }
        other => Err(CodecError::UnknownTag(other)),
    }
}

fn push_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn take<'a>(r: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if r.len() < n {
        return Err(CodecError::BadPayload);
    }
    let (head, tail) = r.split_at(n);
    *r = tail;
    Ok(head)
}

fn take_opt_u64(r: &mut &[u8]) -> Result<Option<u64>, CodecError> {
    match take(r, 1)?[0] {
        0 => Ok(None),
        1 => Ok(Some(u64::from_le_bytes(
            take(r, 8)?.try_into().expect("8 bytes"),
        ))),
        _ => Err(CodecError::BadPayload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn refresh_round_trips() {
        let msg = ProtocolMsg::Refresh { version: 42 };
        let bytes = encode(7, n(1), n(2), SimTime::from_secs(30.5), &msg);
        let (from, at, decoded) = decode(&bytes).unwrap();
        assert_eq!(from, n(1));
        assert_eq!(at, SimTime::from_secs(30.5));
        assert_eq!(decoded, msg);
    }

    #[test]
    fn summary_round_trips_with_and_without_fields() {
        for summary in [
            PeerSummary {
                node: n(9),
                is_member: true,
                cache: Some(3),
                carried: None,
            },
            PeerSummary {
                node: n(10),
                is_member: false,
                cache: None,
                carried: Some(11),
            },
            PeerSummary {
                node: n(0),
                is_member: false,
                cache: None,
                carried: None,
            },
        ] {
            let msg = ProtocolMsg::Summary(summary);
            let bytes = encode(1, n(3), n(4), SimTime::ZERO, &msg);
            let (_, _, decoded) = decode(&bytes).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn bad_tag_and_truncation_are_typed_errors() {
        let msg = ProtocolMsg::Refresh { version: 1 };
        let mut bytes = encode(1, n(1), n(2), SimTime::ZERO, &msg);
        assert_eq!(
            decode(&bytes[..bytes.len() - 1]),
            Err(CodecError::Truncated)
        );
        // Corrupt the payload tag (last 9 bytes are tag + version).
        let tag_at = bytes.len() - 9;
        bytes[tag_at] = 0xEE;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownTag(0xEE)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let msg = ProtocolMsg::Refresh { version: 1 };
        let mut bytes = encode(1, n(1), n(2), SimTime::ZERO, &msg);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes));
    }
}
