//! What a runtime run reports back.

use omn_contacts::NodeId;
use omn_core::protocol::ProtocolMode;
use omn_sim::metrics::{Registry, Timeline};
use omn_sim::OracleReport;

/// Per-node tallies a node task hands the supervisor at shutdown.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// The reporting node.
    pub node: NodeId,
    /// Its final cached version (members and the source).
    pub cache: Option<u64>,
    /// The version it still carried as a relay, if any.
    pub carried: Option<u64>,
    /// Wire frames this node serialized and sent.
    pub msgs_sent: u64,
    /// Encoded bytes this node put on the wire (frame headers included).
    pub bytes_sent: u64,
    /// Wire frames this node received and decoded.
    pub msgs_received: u64,
    /// Encoded bytes this node received (undecodable frames included —
    /// their bytes crossed the link).
    pub bytes_received: u64,
    /// Relay copies this node handed out.
    pub replicas_created: u64,
    /// Received frames that failed to decode (dropped, never panicked).
    pub decode_errors: u64,
    /// Exact integral counters (`Effect::Count`), by name.
    pub counts: Vec<(&'static str, u64)>,
    /// Fractional-second counters (`Effect::CountSecs`), by name; the
    /// supervisor sums these as `f64` across nodes and truncates once.
    pub count_secs: Vec<(&'static str, f64)>,
}

/// The lockstep runtime's run report: the same vocabulary as the DES
/// [`FreshnessReport`](omn_core::sim::FreshnessReport) for every metric
/// the E18 cross-validation compares.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Which protocol the nodes ran.
    pub mode: ProtocolMode,
    /// The source node.
    pub root: NodeId,
    /// The caching members.
    pub members: Vec<NodeId>,
    /// Versions born during the run (including the pre-placed version 0).
    pub version_count: u64,
    /// Time-weighted mean cache freshness ratio.
    pub mean_freshness: f64,
    /// Freshness ratio over time.
    pub freshness_timeline: Timeline,
    /// Total wire transmissions across all nodes.
    pub transmissions: u64,
    /// Transmissions attributed to each node as the sender, indexed by
    /// node id.
    pub per_node_transmissions: Vec<u64>,
    /// Relay copies handed to non-caching nodes.
    pub replicas: u64,
    /// Aggregated protocol counters (the DES extras vocabulary, e.g.
    /// `relay-copy-seconds`).
    pub extras: Registry,
    /// The cache version each member held at the end of the run, sorted
    /// by node id.
    pub final_member_versions: Vec<(NodeId, u64)>,
    /// Total frames received across all nodes.
    pub messages_received: u64,
    /// Total encoded bytes put on the wire across all nodes — the
    /// runtime's ground-truth measure of what a bandwidth-limited link
    /// would have to carry.
    pub bytes_sent: u64,
    /// Received frames dropped as undecodable.
    pub decode_errors: u64,
    /// Supervisor-side channel failures: a node task died or a handshake
    /// ack went missing, aborting the replay. 0 on a healthy run.
    pub channel_errors: u64,
    /// Invariant-oracle verdict for the run.
    pub oracle: OracleReport,
}

/// The firehose (throughput) runtime's report: message totals and wall
/// clock, no lockstep bookkeeping.
#[derive(Debug, Clone)]
pub struct FirehoseReport {
    /// Node-task count.
    pub nodes: usize,
    /// Link-up events dispatched.
    pub contacts: u64,
    /// Version births driven.
    pub births: u64,
    /// Wire frames sent across all nodes.
    pub messages_sent: u64,
    /// Wire frames received across all nodes.
    pub messages_received: u64,
    /// Encoded bytes put on the wire across all nodes.
    pub bytes_sent: u64,
    /// Received frames dropped as undecodable.
    pub decode_errors: u64,
    /// Supervisor-side channel failures (dead node tasks, lost acks).
    /// 0 on a healthy run.
    pub channel_errors: u64,
    /// Wall-clock time from first dispatch to full drain.
    pub elapsed: std::time::Duration,
}

impl FirehoseReport {
    /// Messages processed (received) per wall-clock second.
    #[must_use]
    pub fn msgs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.messages_received as f64 / secs
    }
}
