//! Loopback TCP transport (feature `net-loopback`): the same wire frames
//! the in-process runtime exchanges, shipped over real sockets.
//!
//! Scope: a framed stream codec over `TcpStream` for smoke-testing that
//! the byte format survives a real transport (partial reads, coalesced
//! writes). The lockstep and firehose runtimes stay on in-process
//! channels, where quiescence is provable; a socket deployment would
//! wrap [`FramedStream`] per link.

use std::io::{Read, Write};
use std::net::TcpStream;

use omn_contacts::NodeId;
use omn_core::protocol::ProtocolMsg;
use omn_net::Frame;
use omn_sim::SimTime;

use crate::codec::{self, CodecError};

/// A length-delimited frame codec over one TCP stream.
#[derive(Debug)]
pub struct FramedStream {
    stream: TcpStream,
    /// Bytes read but not yet decoded into a whole frame.
    buf: Vec<u8>,
}

impl FramedStream {
    /// Wraps a connected stream.
    #[must_use]
    pub fn new(stream: TcpStream) -> FramedStream {
        FramedStream {
            stream,
            buf: Vec::new(),
        }
    }

    /// Serializes and writes one protocol message.
    pub fn send(
        &mut self,
        seq: u64,
        from: NodeId,
        to: NodeId,
        at: SimTime,
        msg: &ProtocolMsg,
    ) -> std::io::Result<()> {
        let bytes = codec::encode(seq, from, to, at, msg);
        self.stream.write_all(&bytes)
    }

    /// Reads until one whole frame is buffered and decodes it. Returns
    /// `Ok(None)` on clean EOF at a frame boundary.
    pub fn recv(&mut self) -> std::io::Result<Option<(NodeId, SimTime, ProtocolMsg)>> {
        let mut chunk = [0u8; 4096];
        loop {
            match Frame::decode(&self.buf) {
                Ok(Some((frame, used))) => {
                    self.buf.drain(..used);
                    let msg = codec::decode_frame(&frame).map_err(to_io)?;
                    return Ok(Some((frame.message.src(), frame.message.created(), msg)));
                }
                Ok(None) => {}
                Err(e) => return Err(to_io(CodecError::Frame(e))),
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "socket closed mid-frame",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn to_io(e: CodecError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn frames_round_trip_over_loopback_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut framed = FramedStream::new(stream);
            let mut got = Vec::new();
            while let Some(item) = framed.recv().unwrap() {
                got.push(item);
            }
            got
        });
        let mut client = FramedStream::new(TcpStream::connect(addr).unwrap());
        let sent: Vec<ProtocolMsg> = (1..=50)
            .map(|v| ProtocolMsg::Refresh { version: v })
            .collect();
        for (i, msg) in sent.iter().enumerate() {
            client
                .send(i as u64, n(1), n(2), SimTime::from_secs(i as f64), msg)
                .unwrap();
        }
        drop(client);
        let got = server.join().unwrap();
        assert_eq!(got.len(), sent.len());
        for (i, (from, at, msg)) in got.iter().enumerate() {
            assert_eq!(*from, n(1));
            assert_eq!(*at, SimTime::from_secs(i as f64));
            assert_eq!(msg, &sent[i]);
        }
    }
}
