//! The node runtime: one async task per node around a [`NodeProtocol`],
//! real serialized wire frames between them, and a link supervisor that
//! replays any [`ContactSource`] as link up/down events.
//!
//! Two drive disciplines share the same node tasks:
//!
//! * [`run_lockstep`] — the cross-validation mode (E18). The supervisor
//!   quiesces the network around every link event with probe/flush
//!   handshakes, so the distributed execution visits exactly the global
//!   states the DES visits: identical per-node version vectors, identical
//!   freshness tracker updates, identical transmission counts, and the
//!   same invariant oracles attached ([`VersionOrderOracle`] & co. from
//!   `omn-core`, fed through [`SimWorld`]'s dispatch hooks).
//! * [`run_firehose`] — the throughput mode. Link-ups are announced to
//!   both endpoints (each wire-sends its [`PeerSummary`] to the peer, no
//!   supervisor probing) and the network runs free; the report is message
//!   totals and wall clock, for the 10⁴-node scaling figure.
//!
//! The lockstep handshake relies on channel FIFO order: after a
//! directional pass `x → y` acks, a `Flush` sent to `y` necessarily
//! follows any wire frame `x` queued to `y`, so `y`'s `FlushDone`
//! certifies the frame was absorbed and its events drained.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use omn_contacts::{ContactSource, LinkEventKind, LinkEvents, NodeId};
use omn_core::freshness::FreshnessTracker;
use omn_core::oracle::{BudgetOracle, TimerLivenessOracle, VersionOrderOracle};
use omn_core::protocol::{Effect, NodeProtocol, PeerSummary, ProtocolMode, ProtocolMsg, TimerKind};
use omn_core::{RefreshHierarchy, UpdateSchedule};
use omn_sim::metrics::Registry;
use omn_sim::{OracleMode, OracleObs, OracleSink, RngFactory, SimDuration, SimTime, SimWorld};

use crate::chan::{self, Receiver, Sender};
use crate::codec;
use crate::report::{FirehoseReport, NodeReport, RuntimeReport};
use crate::rt::Executor;

/// How the runtime is shaped.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Which protocol every node runs.
    pub mode: ProtocolMode,
    /// The source's periodic version-birth interval.
    pub refresh_period: SimDuration,
    /// Invariant-oracle handling (lockstep mode only).
    pub oracle_mode: OracleMode,
    /// Executor worker threads (0 = available parallelism).
    pub workers: usize,
    /// Per-node inbox capacity: backpressure on the supervisor's
    /// dispatch lane (peer wire frames ride the relaxed lane, so the
    /// driver can never outrun the network without wedging it).
    pub inbox_capacity: usize,
}

impl RuntimeConfig {
    /// A config with the defaults the E18 campaign uses.
    #[must_use]
    pub fn new(mode: ProtocolMode, refresh_period: SimDuration) -> RuntimeConfig {
        RuntimeConfig {
            mode,
            refresh_period,
            oracle_mode: OracleMode::from_env(),
            workers: 0,
            inbox_capacity: 1024,
        }
    }
}

/// A runtime-internal channel or handshake failure: a node task died (or
/// a channel closed) while the supervisor still needed it. The
/// supervisors recover by aborting the replay and reporting the tally in
/// [`RuntimeReport::channel_errors`] / [`FirehoseReport::channel_errors`]
/// instead of panicking mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// A node's inbox closed while the supervisor was dispatching to it.
    InboxClosed(NodeId),
    /// The shared ack channel closed before the expected reply arrived.
    AckChannelClosed,
    /// A node replied out of protocol: the wrong ack for the handshake
    /// step (named by the reply the supervisor was waiting for).
    UnexpectedAck(&'static str),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::InboxClosed(n) => write!(f, "inbox of node {n} closed"),
            RuntimeError::AckChannelClosed => write!(f, "ack channel closed"),
            RuntimeError::UnexpectedAck(step) => {
                write!(f, "unexpected ack while waiting for {step}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Everything a node task can be told.
enum NodeMsg {
    /// Lockstep: report your [`PeerSummary`] (acked with
    /// [`Ack::Summary`]).
    Probe,
    /// Lockstep: a link to `peer` came up; run your directional pass and
    /// wire any sends through `peer_tx` (acked with [`Ack::PassDone`]).
    LinkUp {
        t: SimTime,
        peer: PeerSummary,
        peer_tx: Sender<NodeMsg>,
    },
    /// Firehose: a link to `peer` came up; wire-send it your summary.
    Announce {
        t: SimTime,
        peer: NodeId,
        peer_tx: Sender<NodeMsg>,
    },
    /// A serialized frame from another node. `reply_tx` is the sender's
    /// inbox, for effects the frame provokes.
    Wire {
        bytes: Vec<u8>,
        reply_tx: Sender<NodeMsg>,
    },
    /// A timer this node asked for (or the supervisor drives) fired.
    Timer { t: SimTime, kind: TimerKind },
    /// Processed strictly after everything already queued; acked with
    /// [`Ack::FlushDone`].
    Flush,
    /// End of run at `t`: flush shutdown accounting and report (acked
    /// with [`Ack::Done`]).
    Shutdown { t: SimTime },
}

/// Out-of-band observations the lockstep supervisor consumes between
/// handshake steps (never in firehose mode).
enum Event {
    /// A node's cache took `version` (member absorbs and root births).
    CacheWrite { node: NodeId, version: u64 },
    /// A node asked for a timer.
    SetTimer {
        node: NodeId,
        at: SimTime,
        kind: TimerKind,
    },
}

/// Node-task replies on the shared ack channel.
enum Ack {
    Summary(PeerSummary),
    PassDone,
    FlushDone,
    Done(NodeReport),
}

/// One node task: the sans-io protocol plus the channel plumbing that
/// carries its effects.
struct NodeTask {
    proto: NodeProtocol,
    inbox: Receiver<NodeMsg>,
    /// This node's own inbox sender, stamped onto outgoing wire frames as
    /// the reply channel.
    self_tx: Sender<NodeMsg>,
    /// Lockstep event feed (`None` in firehose mode).
    events: Option<Sender<Event>>,
    acks: Sender<Ack>,
    seq: u64,
    sent: u64,
    bytes_sent: u64,
    received: u64,
    bytes_received: u64,
    replicas: u64,
    decode_errors: u64,
    counts: Vec<(&'static str, u64)>,
    count_secs: Vec<(&'static str, f64)>,
}

impl NodeTask {
    async fn run(mut self) {
        let effects = self.proto.on_start();
        self.apply(SimTime::ZERO, effects, None).await;
        loop {
            let Some(msg) = self.inbox.recv().await else {
                break;
            };
            match msg {
                NodeMsg::Probe => {
                    let _ = self.acks.send(Ack::Summary(self.proto.summary())).await;
                }
                NodeMsg::LinkUp { t, peer, peer_tx } => {
                    let effects = self.proto.on_contact_up(t, &peer);
                    self.apply(t, effects, Some(&peer_tx)).await;
                    let _ = self.acks.send(Ack::PassDone).await;
                }
                NodeMsg::Announce { t, peer, peer_tx } => {
                    let msg = ProtocolMsg::Summary(self.proto.summary());
                    self.wire_send(t, peer, &msg, &peer_tx);
                }
                NodeMsg::Wire { bytes, reply_tx } => {
                    self.received += 1;
                    self.bytes_received += bytes.len() as u64;
                    match codec::decode(&bytes) {
                        Ok((from, t, msg)) => {
                            let effects = self.proto.on_message(t, from, &msg);
                            self.apply(t, effects, Some(&reply_tx)).await;
                        }
                        Err(_) => self.decode_errors += 1,
                    }
                }
                NodeMsg::Timer { t, kind } => {
                    let effects = self.proto.on_timer(t, kind);
                    self.apply(t, effects, None).await;
                }
                NodeMsg::Flush => {
                    let _ = self.acks.send(Ack::FlushDone).await;
                }
                NodeMsg::Shutdown { t } => {
                    let effects = self.proto.on_shutdown(t);
                    self.apply(t, effects, None).await;
                    let report = NodeReport {
                        node: self.proto.id(),
                        cache: self.proto.cache_version(),
                        carried: self.proto.carried_version(),
                        msgs_sent: self.sent,
                        bytes_sent: self.bytes_sent,
                        msgs_received: self.received,
                        bytes_received: self.bytes_received,
                        replicas_created: self.replicas,
                        decode_errors: self.decode_errors,
                        counts: std::mem::take(&mut self.counts),
                        count_secs: std::mem::take(&mut self.count_secs),
                    };
                    let _ = self.acks.send(Ack::Done(report)).await;
                    break;
                }
            }
        }
    }

    async fn apply(&mut self, t: SimTime, effects: Vec<Effect>, peer_tx: Option<&Sender<NodeMsg>>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    // A Send effect is only honorable inside a link
                    // context; a protocol emitting one elsewhere is a
                    // bug, but dropping the frame and recording it keeps
                    // the rest of the network running.
                    let Some(tx) = peer_tx else {
                        bump(&mut self.counts, "send-effect-without-link", 1);
                        continue;
                    };
                    self.wire_send(t, to, &msg, tx);
                }
                Effect::CacheWrite { version } => {
                    if let Some(events) = &self.events {
                        let _ = events
                            .send(Event::CacheWrite {
                                node: self.proto.id(),
                                version,
                            })
                            .await;
                    }
                }
                Effect::ReplicaCreated => self.replicas += 1,
                Effect::SetTimer { at, kind } => {
                    if let Some(events) = &self.events {
                        let _ = events
                            .send(Event::SetTimer {
                                node: self.proto.id(),
                                at,
                                kind,
                            })
                            .await;
                    }
                }
                // The static-tree and epidemic modes never emit this;
                // runtimes for the distributed-maintenance variants would
                // record it.
                Effect::Reparent { .. } => {}
                Effect::Count { name, n } => bump(&mut self.counts, name, n),
                Effect::CountSecs { name, secs } => bump_secs(&mut self.count_secs, name, secs),
            }
        }
    }

    fn wire_send(&mut self, t: SimTime, to: NodeId, msg: &ProtocolMsg, peer_tx: &Sender<NodeMsg>) {
        let bytes = codec::encode(self.seq, self.proto.id(), to, t, msg);
        self.seq += 1;
        self.sent += 1;
        self.bytes_sent += bytes.len() as u64;
        // The relaxed lane keeps the wait-for graph acyclic: a node never
        // blocks on a peer's inbox while its own inbox backs up (two nodes
        // wiring frames at each other through full bounded inboxes would
        // deadlock). Boundedness comes from the supervisor's dispatch
        // lane, which *does* block on capacity.
        let _ = peer_tx.send_relaxed(NodeMsg::Wire {
            bytes,
            reply_tx: self.self_tx.clone(),
        });
    }
}

fn bump(counts: &mut Vec<(&'static str, u64)>, name: &'static str, n: u64) {
    if let Some(slot) = counts.iter_mut().find(|(k, _)| *k == name) {
        slot.1 += n;
    } else {
        counts.push((name, n));
    }
}

fn bump_secs(counts: &mut Vec<(&'static str, f64)>, name: &'static str, secs: f64) {
    if let Some(slot) = counts.iter_mut().find(|(k, _)| *k == name) {
        slot.1 += secs;
    } else {
        counts.push((name, secs));
    }
}

/// The spawned network: per-node inbox senders plus the shared ack and
/// event receivers the supervisor consumes.
struct Network {
    exec: Executor,
    inboxes: Vec<Sender<NodeMsg>>,
    acks: Receiver<Ack>,
    events: Option<Receiver<Event>>,
}

fn spawn_network(
    node_count: usize,
    root: NodeId,
    members: &HashSet<NodeId>,
    tree: Option<&RefreshHierarchy>,
    config: &RuntimeConfig,
    span: SimTime,
    lockstep: bool,
) -> Network {
    assert!(
        config.mode != ProtocolMode::HierTree || tree.is_some(),
        "HierTree mode needs a refresh tree"
    );
    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        config.workers
    };
    let exec = Executor::new(workers);
    let (ack_tx, ack_rx) = chan::channel::<Ack>(node_count.max(64));
    let (event_tx, event_rx) = chan::channel::<Event>(4096);
    let mut inboxes = Vec::with_capacity(node_count);
    let mut tasks = Vec::with_capacity(node_count);
    for i in 0..node_count {
        let id = NodeId(u32::try_from(i).expect("node id fits u32"));
        let mut proto = NodeProtocol::new(id, root, members.contains(&id), config.mode);
        if let Some(tree) = tree {
            if tree.contains(id) {
                proto.set_tree(tree.parent_of(id), tree.children_of(id).to_vec());
            }
        }
        if id == root && lockstep {
            // Firehose drives births from the supervisor's precomputed
            // schedule instead (no event channel to carry SetTimer).
            proto.set_schedule(config.refresh_period, span);
        }
        let (tx, rx) = chan::channel::<NodeMsg>(config.inbox_capacity);
        tasks.push(NodeTask {
            proto,
            inbox: rx,
            self_tx: tx.clone(),
            events: lockstep.then(|| event_tx.clone()),
            acks: ack_tx.clone(),
            seq: 0,
            sent: 0,
            bytes_sent: 0,
            received: 0,
            bytes_received: 0,
            replicas: 0,
            decode_errors: 0,
            counts: Vec::new(),
            count_secs: Vec::new(),
        });
        inboxes.push(tx);
    }
    for task in tasks {
        exec.spawn(task.run());
    }
    Network {
        exec,
        inboxes,
        acks: ack_rx,
        events: lockstep.then_some(event_rx),
    }
}

/// Lockstep supervisor state shared by the contact and birth handlers.
struct Lockstep {
    inboxes: Vec<Sender<NodeMsg>>,
    acks: Receiver<Ack>,
    events: Receiver<Event>,
    world: SimWorld,
    tracker: FreshnessTracker,
    member_versions: HashMap<NodeId, u64>,
    current_version: u64,
    /// Pending birth timers: `(at, node, version)`.
    wheel: BinaryHeap<Reverse<(SimTime, u32, u64)>>,
}

impl Lockstep {
    fn expect_flush_done(&mut self) -> Result<(), RuntimeError> {
        match self.acks.recv_blocking() {
            Some(Ack::FlushDone) => Ok(()),
            Some(_) => Err(RuntimeError::UnexpectedAck("FlushDone")),
            None => Err(RuntimeError::AckChannelClosed),
        }
    }

    /// Flushes `node` and absorbs the events its queued work produced.
    fn flush_and_drain(&mut self, node: NodeId) -> Result<(), RuntimeError> {
        self.inboxes[node.index()]
            .send_blocking(NodeMsg::Flush)
            .map_err(|_| RuntimeError::InboxClosed(node))?;
        self.expect_flush_done()?;
        self.drain_events();
        Ok(())
    }

    fn drain_events(&mut self) {
        while let Some(ev) = self.events.try_recv() {
            match ev {
                Event::CacheWrite { node, version } => {
                    // Members absorb into the tracked version vector (and
                    // the version-order oracle); the root's own births go
                    // through fire_birth.
                    if let Some(slot) = self.member_versions.get_mut(&node) {
                        *slot = version;
                        self.world.oracle_event(&OracleObs::Absorb {
                            node: u64::from(node.0),
                            version,
                        });
                    }
                }
                Event::SetTimer {
                    node,
                    at,
                    kind: TimerKind::VersionBirth(v),
                } => {
                    self.wheel.push(Reverse((at, node.0, v)));
                }
            }
        }
    }

    /// Fires every pending birth at or before `upto` (the DES orders
    /// births before contacts at equal instants).
    fn fire_births_through(&mut self, upto: SimTime) -> Result<(), RuntimeError> {
        while let Some(&Reverse((at, node, version))) = self.wheel.peek() {
            if at > upto {
                break;
            }
            self.wheel.pop();
            self.fire_birth(at, NodeId(node), version)?;
        }
        Ok(())
    }

    fn fire_birth(&mut self, at: SimTime, node: NodeId, version: u64) -> Result<(), RuntimeError> {
        self.world.advance_to(at);
        self.world.oracle_timer("birth");
        self.current_version = version;
        self.inboxes[node.index()]
            .send_blocking(NodeMsg::Timer {
                t: at,
                kind: TimerKind::VersionBirth(version),
            })
            .map_err(|_| RuntimeError::InboxClosed(node))?;
        self.flush_and_drain(node)?;
        // A birth always re-marks freshness, even when nothing changed —
        // the DES's on_birth discipline.
        self.tracker.set_fresh(self.fresh_count(), at);
        Ok(())
    }

    /// Replays one contact as two quiesced directional passes.
    fn contact(&mut self, at: SimTime, a: NodeId, b: NodeId) -> Result<(), RuntimeError> {
        if self.world.has_oracles() {
            self.world.advance_to(at);
            self.world.oracle_contact(u64::from(a.0), u64::from(b.0));
        }
        for (x, y) in [(a, b), (b, a)] {
            let summary = self.probe(y)?;
            self.inboxes[x.index()]
                .send_blocking(NodeMsg::LinkUp {
                    t: at,
                    peer: summary,
                    peer_tx: self.inboxes[y.index()].clone(),
                })
                .map_err(|_| RuntimeError::InboxClosed(x))?;
            match self.acks.recv_blocking() {
                Some(Ack::PassDone) => {}
                Some(_) => return Err(RuntimeError::UnexpectedAck("PassDone")),
                None => return Err(RuntimeError::AckChannelClosed),
            }
            // FIFO: y's inbox already holds any frame x wired to it, so
            // this flush certifies the absorb happened and is drained.
            self.flush_and_drain(y)?;
        }
        let fresh = self.fresh_count();
        if fresh != self.tracker.fresh_count() {
            self.tracker.set_fresh(fresh, at);
        }
        Ok(())
    }

    fn probe(&mut self, node: NodeId) -> Result<PeerSummary, RuntimeError> {
        self.inboxes[node.index()]
            .send_blocking(NodeMsg::Probe)
            .map_err(|_| RuntimeError::InboxClosed(node))?;
        match self.acks.recv_blocking() {
            Some(Ack::Summary(s)) => Ok(s),
            Some(_) => Err(RuntimeError::UnexpectedAck("Summary")),
            None => Err(RuntimeError::AckChannelClosed),
        }
    }

    fn fresh_count(&self) -> usize {
        self.member_versions
            .values()
            .filter(|&&v| v == self.current_version)
            .count()
    }
}

/// Runs the protocol on the async runtime in lockstep with simulated
/// time, reproducing the DES's observable run bit-for-bit (E18's
/// cross-validation leg).
///
/// `tree` is required in [`ProtocolMode::HierTree`] and must be the same
/// tree the DES's scheme builds (root, members, oracle contact graph).
///
/// Internal runtime failures (a node task dying mid-handshake, a closed
/// channel) abort the replay instead of panicking: the remaining events
/// are skipped and the failure count lands in
/// [`RuntimeReport::channel_errors`] (0 on a healthy run).
///
/// # Panics
///
/// Panics in [`OracleMode::Strict`] on the first invariant violation —
/// exactly like the DES.
#[must_use]
pub fn run_lockstep<S: ContactSource>(
    contacts: S,
    root: NodeId,
    members: &[NodeId],
    tree: Option<&RefreshHierarchy>,
    config: &RuntimeConfig,
    factory: &RngFactory,
) -> RuntimeReport {
    let node_count = contacts.node_count();
    let span = contacts.span();
    let member_set: HashSet<NodeId> = members.iter().copied().collect();
    let schedule = UpdateSchedule::periodic(config.refresh_period, span);

    let network = spawn_network(node_count, root, &member_set, tree, config, span, true);
    let Network {
        exec,
        inboxes,
        acks,
        events,
    } = network;

    let mut world = SimWorld::new(node_count, *factory);
    world.set_oracle_sink(OracleSink::new(config.oracle_mode));
    if config.oracle_mode != OracleMode::Off {
        world.install_oracle(Box::new(VersionOrderOracle::new()));
        world.install_oracle(Box::new(BudgetOracle::new()));
        world.install_oracle(Box::new(TimerLivenessOracle::new(
            schedule.version_count().saturating_sub(1),
        )));
    }

    let mut sup = Lockstep {
        inboxes,
        acks,
        events: events.expect("lockstep network has an event channel"),
        world,
        tracker: FreshnessTracker::new(members.len(), members.len(), SimTime::ZERO),
        member_versions: members.iter().map(|&m| (m, 0)).collect(),
        current_version: 0,
        wheel: BinaryHeap::new(),
    };

    let mut channel_errors = 0u64;

    // Start barrier: every task runs on_start before its first flush ack,
    // which seeds the timer wheel with the root's first birth.
    let mut started = 0usize;
    for i in 0..node_count {
        if sup.inboxes[i].send_blocking(NodeMsg::Flush).is_ok() {
            started += 1;
        } else {
            channel_errors += 1;
        }
    }
    for _ in 0..started {
        if sup.expect_flush_done().is_err() {
            channel_errors += 1;
            break;
        }
    }
    sup.drain_events();

    let mut link = LinkEvents::new(contacts);
    let mut aborted = false;
    while let Some(ev) = link.next_event() {
        let step = sup.fire_births_through(ev.at).and_then(|()| {
            if ev.kind == LinkEventKind::Up {
                sup.contact(ev.at, ev.pair.0, ev.pair.1)
            } else {
                Ok(())
            }
        });
        if step.is_err() {
            // The network is wedged (a task died mid-handshake); replay
            // cannot continue deterministically, so stop here and let
            // the report carry the error count.
            channel_errors += 1;
            aborted = true;
            break;
        }
    }
    // Births after the final contact still fire: they drive freshness
    // decay even though no node can react any more.
    if !aborted && sup.fire_births_through(span).is_err() {
        channel_errors += 1;
    }

    // Shutdown: collect per-node tallies, then drain any final events.
    let mut expected = 0usize;
    for i in 0..node_count {
        if sup.inboxes[i]
            .send_blocking(NodeMsg::Shutdown { t: span })
            .is_ok()
        {
            expected += 1;
        } else {
            channel_errors += 1;
        }
    }
    let mut reports: Vec<NodeReport> = Vec::with_capacity(expected);
    while reports.len() < expected {
        match sup.acks.recv_blocking() {
            Some(Ack::Done(r)) => reports.push(r),
            // A stray ack from an aborted handshake; skip it.
            Some(_) => channel_errors += 1,
            None => {
                channel_errors += 1;
                break;
            }
        }
    }
    sup.drain_events();
    exec.shutdown();

    let Lockstep {
        mut world,
        tracker,
        member_versions,
        ..
    } = sup;
    world.advance_to(span);
    world.oracle_end_of_run();
    let oracle = world.take_oracle_report();

    let mut extras = Registry::new();
    let mut secs_totals: HashMap<&'static str, f64> = HashMap::new();
    let mut per_node_transmissions = vec![0u64; node_count];
    let mut transmissions = 0;
    let mut replicas = 0;
    let mut messages_received = 0;
    let mut bytes_sent = 0;
    let mut decode_errors = 0;
    for r in &reports {
        transmissions += r.msgs_sent;
        per_node_transmissions[r.node.index()] = r.msgs_sent;
        replicas += r.replicas_created;
        messages_received += r.msgs_received;
        bytes_sent += r.bytes_sent;
        decode_errors += r.decode_errors;
        for &(name, n) in &r.counts {
            extras.add(name, n);
        }
        for &(name, secs) in &r.count_secs {
            *secs_totals.entry(name).or_insert(0.0) += secs;
        }
    }
    // Fractional counters truncate once, after summing across nodes —
    // the DES's end-of-run discipline.
    let mut secs_totals: Vec<_> = secs_totals.into_iter().collect();
    secs_totals.sort_unstable_by_key(|&(name, _)| name);
    for (name, secs) in secs_totals {
        extras.add(name, secs as u64);
    }

    let mut final_member_versions: Vec<(NodeId, u64)> = member_versions.into_iter().collect();
    final_member_versions.sort_unstable();
    let (mean_freshness, freshness_timeline) = tracker.finish(span);

    RuntimeReport {
        mode: config.mode,
        root,
        members: members.to_vec(),
        version_count: schedule.version_count(),
        mean_freshness,
        freshness_timeline,
        transmissions,
        per_node_transmissions,
        replicas,
        extras,
        final_member_versions,
        messages_received,
        bytes_sent,
        decode_errors,
        channel_errors,
        oracle,
    }
}

/// Runs the protocol free-running for throughput: link-ups are announced
/// to both endpoints, every exchange crosses the wire, and the report is
/// message totals over wall clock (E18's scaling leg).
///
/// Causality per announce is bounded (summary → refresh → absorb), so a
/// fixed number of flush-all rounds quiesces the network before
/// shutdown.
#[must_use]
pub fn run_firehose<S: ContactSource>(
    contacts: S,
    root: NodeId,
    members: &[NodeId],
    config: &RuntimeConfig,
) -> FirehoseReport {
    let node_count = contacts.node_count();
    let span = contacts.span();
    let member_set: HashSet<NodeId> = members.iter().copied().collect();
    let births: Vec<SimTime> = UpdateSchedule::periodic(config.refresh_period, span)
        .births()
        .iter()
        .copied()
        .skip(1)
        .collect();

    let network = spawn_network(node_count, root, &member_set, None, config, span, false);
    let Network {
        exec,
        inboxes,
        mut acks,
        events: _,
    } = network;

    let start = std::time::Instant::now();
    let mut link = LinkEvents::new(contacts);
    let mut next_birth = 0usize;
    let mut contact_count = 0u64;
    let mut channel_errors = 0u64;
    while let Some(ev) = link.next_event() {
        while next_birth < births.len() && births[next_birth] <= ev.at {
            if inboxes[root.index()]
                .send_blocking(NodeMsg::Timer {
                    t: births[next_birth],
                    kind: TimerKind::VersionBirth(next_birth as u64 + 1),
                })
                .is_err()
            {
                channel_errors += 1;
            }
            next_birth += 1;
        }
        if ev.kind == LinkEventKind::Up {
            contact_count += 1;
            for (x, y) in [(ev.pair.0, ev.pair.1), (ev.pair.1, ev.pair.0)] {
                if inboxes[x.index()]
                    .send_blocking(NodeMsg::Announce {
                        t: ev.at,
                        peer: y,
                        peer_tx: inboxes[y.index()].clone(),
                    })
                    .is_err()
                {
                    channel_errors += 1;
                }
            }
        }
    }
    while next_birth < births.len() {
        if inboxes[root.index()]
            .send_blocking(NodeMsg::Timer {
                t: births[next_birth],
                kind: TimerKind::VersionBirth(next_birth as u64 + 1),
            })
            .is_err()
        {
            channel_errors += 1;
        }
        next_birth += 1;
    }

    // Quiesce: each round's flush certifies one causality hop has fully
    // drained (announce → summary frame → refresh frame → absorb).
    for _ in 0..3 {
        let mut expected = 0usize;
        for tx in &inboxes {
            if tx.send_blocking(NodeMsg::Flush).is_ok() {
                expected += 1;
            } else {
                channel_errors += 1;
            }
        }
        let mut done = 0usize;
        while done < expected {
            match acks.recv_blocking() {
                Some(Ack::FlushDone) => done += 1,
                Some(_) => channel_errors += 1,
                None => {
                    channel_errors += 1;
                    break;
                }
            }
        }
    }

    let mut expected = 0usize;
    for tx in &inboxes {
        if tx.send_blocking(NodeMsg::Shutdown { t: span }).is_ok() {
            expected += 1;
        } else {
            channel_errors += 1;
        }
    }
    let mut messages_sent = 0;
    let mut messages_received = 0;
    let mut bytes_sent = 0;
    let mut decode_errors = 0;
    let mut done = 0usize;
    while done < expected {
        match acks.recv_blocking() {
            Some(Ack::Done(r)) => {
                messages_sent += r.msgs_sent;
                messages_received += r.msgs_received;
                bytes_sent += r.bytes_sent;
                decode_errors += r.decode_errors;
                done += 1;
            }
            Some(_) => channel_errors += 1,
            None => {
                channel_errors += 1;
                break;
            }
        }
    }
    let elapsed = start.elapsed();
    exec.shutdown();

    FirehoseReport {
        nodes: node_count,
        contacts: contact_count,
        births: births.len() as u64,
        messages_sent,
        messages_received,
        bytes_sent,
        decode_errors,
        channel_errors,
        elapsed,
    }
}
