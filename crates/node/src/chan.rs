//! Bounded multi-producer single-consumer channels usable from both async
//! tasks (futures polled by [`rt::Executor`](crate::rt::Executor)) and
//! plain threads (the blocking link supervisor).
//!
//! The capacity bounds every node's inbox, so a runtime with 10⁴ node
//! tasks has O(nodes × capacity) worst-case buffering, not unbounded
//! growth. Senders block (or return `Pending`) when the queue is full;
//! receivers when it is empty. Closure is bidirectional: dropping the
//! receiver fails subsequent sends, dropping the last sender drains the
//! receiver to `None`.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::task::{Context, Poll, Waker};

/// The send side of the channel was used after the receiver went away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed")
    }
}

impl std::error::Error for Closed {}

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
    recv_waker: Option<Waker>,
    send_wakers: Vec<Waker>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or all senders are gone.
    recv_ready: Condvar,
    /// Signalled when space frees up or the receiver is gone.
    send_ready: Condvar,
}

impl<T> Shared<T> {
    /// Locks the channel state, recovering from a poisoned mutex. Every
    /// critical section in this module finishes its queue/counter
    /// mutation before touching anything that can panic, so the state a
    /// panicking peer left behind is still coherent — cascading its
    /// panic into every other task sharing the channel would turn one
    /// task failure into a whole-runtime abort.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wake_receiver(state: &mut State<T>) -> Option<Waker> {
        state.recv_waker.take()
    }

    fn wake_senders(state: &mut State<T>) -> Vec<Waker> {
        std::mem::take(&mut state.send_wakers)
    }
}

/// Creates a bounded channel with room for `capacity` queued items
/// (at least one).
#[must_use]
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
            recv_waker: None,
            send_wakers: Vec::new(),
        }),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half. Cloneable; the channel closes for the receiver when
/// the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut state = self.shared.lock();
            state.senders -= 1;
            if state.senders == 0 {
                Shared::wake_receiver(&mut state)
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
        self.shared.recv_ready.notify_all();
    }
}

impl<T> Sender<T> {
    /// Sends `value`, waiting asynchronously for space. Fails if the
    /// receiver has been dropped.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture {
            shared: &self.shared,
            value: Some(value),
        }
    }

    /// Enqueues immediately, ignoring the capacity bound. Node tasks use
    /// this lane for peer-to-peer wire frames: a task that blocked on a
    /// peer's full inbox while its own inbox is full would deadlock any
    /// cyclic traffic pattern, so peer traffic trades strict boundedness
    /// for liveness (it stays transitively bounded because the
    /// supervisor's dispatch lane *is* capacity-bounded). Fails if the
    /// receiver has been dropped.
    pub fn send_relaxed(&self, value: T) -> Result<(), Closed> {
        let mut state = self.shared.lock();
        if !state.receiver_alive {
            return Err(Closed);
        }
        state.queue.push_back(value);
        let waker = Shared::wake_receiver(&mut state);
        drop(state);
        if let Some(w) = waker {
            w.wake();
        }
        self.shared.recv_ready.notify_one();
        Ok(())
    }

    /// Sends `value` from a plain thread, blocking while the queue is
    /// full. Fails if the receiver has been dropped.
    pub fn send_blocking(&self, value: T) -> Result<(), Closed> {
        let mut state = self.shared.lock();
        loop {
            if !state.receiver_alive {
                return Err(Closed);
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                let waker = Shared::wake_receiver(&mut state);
                drop(state);
                if let Some(w) = waker {
                    w.wake();
                }
                self.shared.recv_ready.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .send_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Future returned by [`Sender::send`].
pub struct SendFuture<'a, T> {
    shared: &'a Shared<T>,
    value: Option<T>,
}

impl<T> std::fmt::Debug for SendFuture<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendFuture").finish_non_exhaustive()
    }
}

// The future never projects a pin into `value`; it moves it out whole
// under `&mut self` access, so unconditional `Unpin` is sound.
impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), Closed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut state = this.shared.lock();
        if !state.receiver_alive {
            this.value = None;
            return Poll::Ready(Err(Closed));
        }
        if state.queue.len() < state.capacity {
            // Polling again after completion is a caller bug, but a
            // recoverable one: the value is long gone, so report the
            // send as failed instead of tearing the task down.
            let Some(value) = this.value.take() else {
                return Poll::Ready(Err(Closed));
            };
            state.queue.push_back(value);
            let waker = Shared::wake_receiver(&mut state);
            drop(state);
            if let Some(w) = waker {
                w.wake();
            }
            this.shared.recv_ready.notify_one();
            Poll::Ready(Ok(()))
        } else {
            state.send_wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// The receiving half (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let wakers = {
            let mut state = self.shared.lock();
            state.receiver_alive = false;
            Shared::wake_senders(&mut state)
        };
        for w in wakers {
            w.wake();
        }
        self.shared.send_ready.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, waiting asynchronously; `None` once every
    /// sender has dropped and the queue is drained.
    pub fn recv(&mut self) -> RecvFuture<'_, T> {
        RecvFuture {
            shared: &self.shared,
        }
    }

    /// Receives from a plain thread, blocking while the queue is empty;
    /// `None` once every sender has dropped and the queue is drained.
    pub fn recv_blocking(&mut self) -> Option<T> {
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                let wakers = Shared::wake_senders(&mut state);
                drop(state);
                for w in wakers {
                    w.wake();
                }
                self.shared.send_ready.notify_all();
                return Some(v);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .recv_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops an item if one is queued, without waiting.
    pub fn try_recv(&mut self) -> Option<T> {
        let mut state = self.shared.lock();
        let v = state.queue.pop_front()?;
        let wakers = Shared::wake_senders(&mut state);
        drop(state);
        for w in wakers {
            w.wake();
        }
        self.shared.send_ready.notify_all();
        Some(v)
    }
}

/// Future returned by [`Receiver::recv`].
pub struct RecvFuture<'a, T> {
    shared: &'a Shared<T>,
}

impl<T> std::fmt::Debug for RecvFuture<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecvFuture").finish_non_exhaustive()
    }
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.lock();
        if let Some(v) = state.queue.pop_front() {
            let wakers = Shared::wake_senders(&mut state);
            drop(state);
            for w in wakers {
                w.wake();
            }
            self.shared.send_ready.notify_all();
            return Poll::Ready(Some(v));
        }
        if state.senders == 0 {
            return Poll::Ready(None);
        }
        state.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_send_and_recv_round_trip() {
        let (tx, mut rx) = channel::<u64>(2);
        let h = std::thread::spawn(move || {
            for v in 0..100 {
                tx.send_blocking(v).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv_blocking() {
            got.push(v);
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u64>(1);
        drop(rx);
        assert_eq!(tx.send_blocking(1), Err(Closed));
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let (tx, mut rx) = channel::<u64>(4);
        assert_eq!(rx.try_recv(), None);
        tx.send_blocking(7).unwrap();
        assert_eq!(rx.try_recv(), Some(7));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn send_future_reports_closed_when_polled_after_completion() {
        struct Noop;
        impl std::task::Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let waker = Waker::from(Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        let (tx, mut rx) = channel::<u64>(2);
        let mut fut = tx.send(5);
        assert_eq!(Pin::new(&mut fut).poll(&mut cx), Poll::Ready(Ok(())));
        // The value was consumed by the first poll; a second poll is a
        // caller bug and reports failure instead of panicking.
        assert_eq!(Pin::new(&mut fut).poll(&mut cx), Poll::Ready(Err(Closed)));
        assert_eq!(rx.try_recv(), Some(5));
    }

    #[test]
    fn capacity_bounds_the_queue() {
        let (tx, mut rx) = channel::<u64>(3);
        for v in 0..3 {
            tx.send_blocking(v).unwrap();
        }
        // A fourth send must wait for the receiver to make room.
        let t = std::thread::spawn(move || tx.send_blocking(3));
        assert_eq!(rx.recv_blocking(), Some(0));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv_blocking(), Some(1));
        assert_eq!(rx.recv_blocking(), Some(2));
        assert_eq!(rx.recv_blocking(), Some(3));
    }
}
