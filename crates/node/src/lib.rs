//! Async node runtime for the cache-freshness protocol.
//!
//! Where the DES (`omn-core`'s [`FreshnessSimulator`]) drives the
//! protocol as one global state machine, this crate runs the *same*
//! sans-io core ([`NodeProtocol`](omn_core::protocol::NodeProtocol)) the
//! way a deployment would: one async task per node, real serialized
//! `omn-net` wire frames between them over bounded channels, and a link
//! supervisor replaying any
//! [`ContactSource`](omn_contacts::ContactSource) as link up/down
//! events.
//!
//! The container this workspace builds in has no async runtime crate, so
//! the executor ([`rt`]) and channels ([`chan`]) are hand-rolled from
//! `std` primitives — small, single-purpose, and sufficient for 10⁴+
//! concurrent node tasks.
//!
//! Two drive modes:
//!
//! * [`run_lockstep`] quiesces the network around every link event so
//!   the distributed execution is observably identical to the DES — the
//!   E18 campaign cross-validates per-node version vectors, freshness
//!   ratios, and transmission counts between the two, with the same
//!   invariant oracles attached.
//! * [`run_firehose`] lets the network run free and measures message
//!   throughput against the wall clock at scale.
//!
//! With the `net-loopback` feature, [`transport`] ships the same frames
//! over real loopback TCP sockets (round-trip smoke scope).
//!
//! [`FreshnessSimulator`]: omn_core::sim::FreshnessSimulator

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chan;
pub mod codec;
pub mod report;
pub mod rt;
pub mod runtime;
#[cfg(feature = "net-loopback")]
pub mod transport;

pub use codec::CodecError;
pub use report::{FirehoseReport, NodeReport, RuntimeReport};
pub use runtime::{run_firehose, run_lockstep, RuntimeConfig, RuntimeError};
