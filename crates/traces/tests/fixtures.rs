//! Tests over the vendored dataset fixture excerpts and over malformed /
//! out-of-order inputs.

use std::path::{Path, PathBuf};

use omn_contacts::io::{ParseErrorKind, TraceIoError};
use omn_contacts::{ContactSource, TraceStats};
use omn_sim::SimTime;
use omn_traces::haggle::HaggleFormat;
use omn_traces::reader::TraceReader;
use omn_traces::reality::RealityFormat;
use omn_traces::registry::{self, file_checksum};
use omn_traces::{
    ingest_file, probe, registry as builtin_registry, Calibration, IngestConfig, RecordPolicy,
    TraceFormat,
};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture(name: &str) -> PathBuf {
    repo_root().join("tests/data").join(name)
}

#[test]
fn registry_finds_both_fixtures() {
    let specs = builtin_registry(&repo_root());
    let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
    assert_eq!(names, vec!["mit-reality", "infocom06"]);
}

#[test]
fn reality_fixture_ingests_with_pinned_checksum() {
    let specs = builtin_registry(&repo_root());
    let spec = specs.iter().find(|s| s.name == "mit-reality").unwrap();
    assert_eq!(spec.format, TraceFormat::Reality);
    let ingested = spec.ingest().expect("fixture ingests cleanly");
    assert_eq!(ingested.trace.node_count(), registry::REALITY_EXCERPT_NODES);
    assert_eq!(ingested.nodes_seen, registry::REALITY_EXCERPT_NODES);
    assert!(ingested.trace.len() > 50, "got {}", ingested.trace.len());
    assert_eq!(ingested.checksum, registry::REALITY_EXCERPT_CHECKSUM);
    // Sighting runs merged: far fewer contacts than sighting rows.
    assert!(ingested.stats.merged > 0);
    assert_eq!(ingested.stats.dropped(), 0, "{:?}", ingested.stats);
    let stats = TraceStats::compute(&ingested.trace);
    assert!(stats.contacts_per_node_per_day > 1.0);
}

#[test]
fn infocom_fixture_ingests_with_pinned_checksum() {
    let specs = builtin_registry(&repo_root());
    let spec = specs.iter().find(|s| s.name == "infocom06").unwrap();
    assert_eq!(spec.format, TraceFormat::Haggle);
    let ingested = spec.ingest().expect("fixture ingests cleanly");
    assert_eq!(ingested.trace.node_count(), registry::INFOCOM_EXCERPT_NODES);
    assert_eq!(ingested.checksum, registry::INFOCOM_EXCERPT_CHECKSUM);
    assert!(ingested.trace.len() > 100, "got {}", ingested.trace.len());
    assert_eq!(ingested.stats.dropped(), 0, "{:?}", ingested.stats);
}

#[test]
fn checksum_mismatch_is_rejected() {
    let specs = builtin_registry(&repo_root());
    let mut spec = specs.into_iter().next().unwrap();
    spec.checksum = Some(0xdead_beef);
    let err = spec.ingest().unwrap_err();
    assert!(
        err.to_string().contains("checksum mismatch"),
        "unexpected error: {err}"
    );
}

#[test]
fn sniff_recognizes_all_formats() {
    assert_eq!(
        TraceFormat::sniff(&fixture("reality_excerpt.txt")).unwrap(),
        Some(TraceFormat::Reality)
    );
    assert_eq!(
        TraceFormat::sniff(&fixture("infocom06_excerpt.dat")).unwrap(),
        Some(TraceFormat::Haggle)
    );
    let dir = std::env::temp_dir();
    let v1 = dir.join("omn_traces_sniff_v1.txt");
    std::fs::write(&v1, "# omn-contacts v1\nnodes 2\nspan 10\n0 1 1 2\n").unwrap();
    assert_eq!(TraceFormat::sniff(&v1).unwrap(), Some(TraceFormat::OmnV1));
    std::fs::remove_file(&v1).ok();
}

#[test]
fn probe_discovers_population_and_span() {
    let report = probe(&fixture("reality_excerpt.txt"), TraceFormat::Reality).unwrap();
    assert_eq!(report.nodes, registry::REALITY_EXCERPT_NODES);
    assert!(report.span.as_days() < registry::REALITY_EXCERPT_SPAN_DAYS + 0.1);
    assert!(report.contacts > 0);
    assert!(report.bytes > 0);

    let report = probe(&fixture("infocom06_excerpt.dat"), TraceFormat::Haggle).unwrap();
    assert_eq!(report.nodes, registry::INFOCOM_EXCERPT_NODES);
    assert!(report.contacts > 100);
}

#[test]
fn fixture_calibration_is_sane() {
    let ingested = ingest_file(
        &fixture("infocom06_excerpt.dat"),
        TraceFormat::Haggle,
        IngestConfig::new(
            registry::INFOCOM_EXCERPT_NODES,
            SimTime::from_days(registry::INFOCOM_EXCERPT_SPAN_DAYS),
        )
        .policy(RecordPolicy::Lenient),
    )
    .unwrap();
    let cal = Calibration::fit(&ingested.trace);
    assert!(cal.mean_rate > 0.0);
    assert!(cal.pair_coverage > 0.5, "coverage {}", cal.pair_coverage);
    // The fitted preset must be generable.
    let _ = omn_contacts::synth::generate_pairwise(&cal.preset(), &omn_sim::RngFactory::new(1));
}

#[test]
fn file_checksum_matches_in_memory_hash() {
    let path = fixture("infocom06_excerpt.dat");
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(file_checksum(&path).unwrap(), registry::fnv1a64(&bytes));
}

// ---- malformed-line and out-of-order behavior ----

fn strict_config(nodes: usize, span_secs: f64) -> IngestConfig {
    IngestConfig::new(nodes, SimTime::from_secs(span_secs))
}

#[test]
fn strict_haggle_reports_malformed_line_number() {
    let text = "1 2 100 200 1 0\n1 2 banana 400 2 100\n3 4 500 600 1 0\n";
    let mut reader = TraceReader::new(
        text.as_bytes(),
        HaggleFormat::new(),
        strict_config(8, 1000.0),
    );
    let contacts: Vec<_> = std::iter::from_fn(|| reader.next_contact()).collect();
    // The stream ends at the malformed line; nothing after it is parsed.
    assert!(contacts.is_empty());
    match reader.error() {
        Some(TraceIoError::Parse(e)) => {
            assert_eq!(e.line, 2);
            assert!(
                matches!(e.kind, ParseErrorKind::Number { field: "start", .. }),
                "{:?}",
                e.kind
            );
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn lenient_haggle_skips_malformed_and_counts() {
    let text = "1 2 100 200 1 0\n1 2 banana 400 2 100\nnot a line\n3 4 500 600 1 0\n";
    let mut reader = TraceReader::new(
        text.as_bytes(),
        HaggleFormat::new(),
        strict_config(8, 1000.0).policy(RecordPolicy::Lenient),
    );
    let contacts: Vec<_> = std::iter::from_fn(|| reader.next_contact()).collect();
    assert_eq!(contacts.len(), 2);
    assert_eq!(reader.stats().malformed, 2);
    assert!(reader.error().is_none());
}

#[test]
fn strict_haggle_rejects_out_of_order_rows() {
    let text = "1 2 500 600 1 0\n3 4 100 200 1 0\n";
    let mut reader = TraceReader::new(
        text.as_bytes(),
        HaggleFormat::new(),
        strict_config(8, 1000.0),
    );
    assert!(std::iter::from_fn(|| reader.next_contact())
        .next()
        .is_none());
    match reader.error() {
        Some(TraceIoError::Parse(e)) => {
            assert_eq!(e.line, 2);
            assert_eq!(e.kind, ParseErrorKind::OutOfOrder);
        }
        other => panic!("expected out-of-order error, got {other:?}"),
    }
}

#[test]
fn lenient_haggle_skips_out_of_order_rows() {
    let text = "1 2 500 600 1 0\n3 4 100 200 1 0\n5 6 700 800 1 0\n";
    let mut reader = TraceReader::new(
        text.as_bytes(),
        HaggleFormat::new(),
        strict_config(8, 1000.0).policy(RecordPolicy::Lenient),
    );
    let contacts: Vec<_> = std::iter::from_fn(|| reader.next_contact()).collect();
    assert_eq!(contacts.len(), 2);
    assert_eq!(reader.stats().out_of_order, 1);
}

#[test]
fn strict_reality_reports_malformed_line_number() {
    let text = "timestamp,id_a,id_b\n100,1,2\n200,oops,2\n";
    let mut reader = TraceReader::new(
        text.as_bytes(),
        RealityFormat::new(),
        strict_config(8, 100_000.0),
    );
    assert!(std::iter::from_fn(|| reader.next_contact())
        .next()
        .is_none());
    match reader.error() {
        Some(TraceIoError::Parse(e)) => {
            assert_eq!(e.line, 3);
            assert!(
                matches!(
                    e.kind,
                    ParseErrorKind::Number {
                        field: "node id",
                        ..
                    }
                ),
                "{:?}",
                e.kind
            );
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn reality_header_row_is_tolerated_only_on_first_line() {
    let text = "timestamp,id_a,id_b\n100,1,2\n400,1,2\n";
    let mut reader = TraceReader::new(
        text.as_bytes(),
        RealityFormat::new(),
        strict_config(4, 100_000.0),
    );
    let contacts: Vec<_> = std::iter::from_fn(|| reader.next_contact()).collect();
    assert_eq!(
        contacts.len(),
        1,
        "consecutive scans merge into one contact"
    );
    assert!(reader.error().is_none());

    let text = "100,1,2\ntimestamp,id_a,id_b\n";
    let mut reader = TraceReader::new(
        text.as_bytes(),
        RealityFormat::new(),
        strict_config(4, 100_000.0),
    );
    assert!(std::iter::from_fn(|| reader.next_contact())
        .next()
        .is_none());
    assert!(
        matches!(reader.error(), Some(TraceIoError::Parse(e)) if e.line == 2),
        "{:?}",
        reader.error()
    );
}
