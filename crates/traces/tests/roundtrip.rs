//! Property-based round-trip tests for the dataset dump formats.
//!
//! Writing a synthetic trace in each format and re-ingesting it must
//! reproduce the contact sequence bit-identically. The Haggle table carries
//! exact intervals, so any non-overlapping trace round-trips; the Reality
//! CSV is a *sampled* encoding, so its round-trip property holds on the
//! class of traces the sampling can represent — contacts aligned to the
//! scan grid with same-pair gaps longer than one scan period — and the
//! generator here produces exactly that class.

use omn_contacts::synth::{generate_pairwise, PairwiseConfig};
use omn_contacts::{Contact, ContactSource, ContactTrace, NodeId, TraceBuilder};
use omn_sim::{RngFactory, SimDuration, SimTime};
use omn_traces::haggle::{write_haggle, HaggleFormat};
use omn_traces::reader::TraceReader;
use omn_traces::reality::{write_reality, RealityFormat, DEFAULT_SCAN_INTERVAL};
use omn_traces::{IdPolicy, IngestConfig};
use proptest::prelude::*;

fn drain<S: ContactSource>(src: &mut S) -> Vec<Contact> {
    std::iter::from_fn(|| src.next_contact()).collect()
}

/// A synthetic pairwise-Poisson trace (same-pair contacts never overlap).
fn pairwise_trace(nodes: usize, hours: f64, seed: u64) -> ContactTrace {
    let config = PairwiseConfig::new(nodes, SimDuration::from_hours(hours))
        .mean_rate(1.0 / 1800.0)
        .mean_contact_duration(SimDuration::from_secs(120.0));
    generate_pairwise(&config, &RngFactory::new(seed))
}

/// Per-pair run descriptors: `(gap_slots, duration_slots)` sequences.
type PairRuns = Vec<(u32, u32, Vec<(u64, u64)>)>;

/// A trace aligned to the Reality scan grid: starts and durations are
/// multiples of the scan period, and same-pair contacts are at least two
/// scan periods apart, so the sighting runs cannot coalesce.
fn grid_trace(nodes: u32, pair_runs: &PairRuns) -> ContactTrace {
    let scan = DEFAULT_SCAN_INTERVAL;
    let mut contacts = Vec::new();
    let mut max_end = 0u64;
    for (a, b, runs) in pair_runs {
        let mut slot = 0u64;
        for &(gap_slots, dur_slots) in runs {
            let start = slot + gap_slots;
            let end = start + dur_slots;
            contacts.push(
                Contact::new(
                    NodeId(*a),
                    NodeId(*b),
                    SimTime::from_secs(start as f64 * scan),
                    SimTime::from_secs(end as f64 * scan),
                )
                .expect("grid contacts are valid"),
            );
            max_end = max_end.max(end);
            // Next same-pair contact starts >= 2 slots after this one ends.
            slot = end + 2;
        }
    }
    TraceBuilder::new(nodes as usize)
        .span(SimTime::from_secs((max_end + 2) as f64 * scan))
        .contacts(contacts)
        .build()
        .expect("grid trace is valid")
}

proptest! {
    /// Haggle round-trip: write → ingest reproduces the exact contact
    /// sequence (ids kept verbatim via `IdPolicy::Dense`).
    #[test]
    fn haggle_roundtrip_is_bit_identical(
        nodes in 3usize..12,
        hours in 2.0f64..12.0,
        seed in 0u64..200,
    ) {
        let trace = pairwise_trace(nodes, hours, seed);
        let mut buf = Vec::new();
        write_haggle(&trace, &mut buf).unwrap();

        let config = IngestConfig::new(trace.node_count(), trace.span()).ids(IdPolicy::Dense);
        let mut reader = TraceReader::new(buf.as_slice(), HaggleFormat::new(), config);
        let streamed = drain(&mut reader);
        prop_assert!(reader.error().is_none(), "ingest failed: {:?}", reader.error());
        prop_assert_eq!(streamed, trace.contacts());
    }

    /// Reality round-trip on grid-aligned traces: write → ingest
    /// reconstructs every contact interval exactly from the sighting runs.
    #[test]
    fn reality_roundtrip_is_bit_identical(
        runs in prop::collection::vec(
            // (pair index, run descriptors); gap 2.. keeps runs separable.
            (0usize..6, prop::collection::vec((2u64..8, 1u64..6), 1..4)),
            1..6,
        ),
        origin_days in 0u64..1000,
    ) {
        const PAIRS: [(u32, u32); 6] = [(0, 1), (0, 2), (1, 2), (2, 3), (1, 3), (0, 3)];
        let mut by_pair: PairRuns = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut first = true;
        for (pair_idx, mut descr) in runs {
            let (a, b) = PAIRS[pair_idx];
            if !seen.insert((a, b)) {
                continue; // one run sequence per pair
            }
            if first {
                // Pin the trace origin to slot zero: the reader rebases to
                // the first sighting, so bit-identity needs a t=0 contact.
                descr[0].0 = 0;
                first = false;
            }
            by_pair.push((a, b, descr));
        }
        // The first pair survives dedup with >= 1 run, so the trace is
        // never empty.
        let trace = grid_trace(4, &by_pair);
        prop_assert!(!trace.is_empty());

        let origin = 1_096_851_600.0 + origin_days as f64 * 86_400.0;
        let mut buf = Vec::new();
        write_reality(&trace, DEFAULT_SCAN_INTERVAL, origin, &mut buf).unwrap();

        let config = IngestConfig::new(trace.node_count(), trace.span()).ids(IdPolicy::Dense);
        let mut reader = TraceReader::new(buf.as_slice(), RealityFormat::new(), config);
        let streamed = drain(&mut reader);
        prop_assert!(reader.error().is_none(), "ingest failed: {:?}", reader.error());
        prop_assert_eq!(streamed, trace.contacts());
    }

    /// The streamed contact order always satisfies the driver's
    /// `(start, end, pair)` contract, whatever interleaving the merging
    /// produced internally.
    #[test]
    fn streamed_order_matches_driver_contract(
        nodes in 3usize..10,
        seed in 0u64..100,
    ) {
        let trace = pairwise_trace(nodes, 6.0, seed);
        let mut buf = Vec::new();
        write_haggle(&trace, &mut buf).unwrap();
        let config = IngestConfig::new(trace.node_count(), trace.span()).ids(IdPolicy::Dense);
        let mut reader = TraceReader::new(buf.as_slice(), HaggleFormat::new(), config);
        let streamed = drain(&mut reader);
        for w in streamed.windows(2) {
            let k0 = (w[0].start().as_secs(), w[0].end().as_secs(), w[0].pair());
            let k1 = (w[1].start().as_secs(), w[1].end().as_secs(), w[1].pair());
            prop_assert!(k0 <= k1, "stream order violated: {k0:?} then {k1:?}");
        }
    }
}
