//! Record normalization shared by every dataset reader.
//!
//! Real contact dumps are messier than the internal v1 format: node ids are
//! arbitrary (MAC-derived, 1-based, sparse), the same pair can be reported
//! twice for one physical encounter (both radios scan), and proximity is
//! sampled rather than edge-triggered, so one encounter appears as a run of
//! short sightings. The [`Normalizer`] turns a stream of [`RawRecord`]s into
//! valid, stream-ordered [`Contact`]s:
//!
//! * **id remapping** — raw 64-bit ids become dense [`NodeId`]s, either in
//!   first-seen order ([`IdPolicy::FirstSeen`]) or taken verbatim
//!   ([`IdPolicy::Dense`]);
//! * **duplicate/overlap merging** — same-pair records whose gap is at most
//!   `merge_gap` coalesce into one contact;
//! * **strict vs lenient policy** — malformed, out-of-order, or
//!   past-span records either abort ingestion ([`RecordPolicy::Strict`])
//!   with a typed [`ParseError`], or are skipped and counted
//!   ([`RecordPolicy::Lenient`]).
//!
//! Memory is bounded by the number of concurrently-open pairs plus the
//! reorder window introduced by merging — not by the file size — so the
//! normalizer preserves the streaming property of the readers built on it.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use omn_contacts::io::{ParseError, ParseErrorKind};
use omn_contacts::{Contact, ContactError, NodeId};
use omn_sim::SimTime;

/// One record as it appears in a dataset file, before normalization: raw
/// (possibly sparse, possibly unordered) node ids and a sighting interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawRecord {
    /// First raw node id, as written in the file.
    pub a: u64,
    /// Second raw node id, as written in the file.
    pub b: u64,
    /// Sighting start (seconds from trace origin).
    pub start: SimTime,
    /// Sighting end (seconds from trace origin).
    pub end: SimTime,
}

/// What to do with records that fail validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordPolicy {
    /// Abort ingestion with a typed [`ParseError`] at the offending line.
    Strict,
    /// Skip the record and count it in [`IngestStats`].
    Lenient,
}

/// How raw node ids map to dense [`NodeId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdPolicy {
    /// Assign dense ids in order of first appearance (the normal mode for
    /// real datasets, whose ids are arbitrary).
    FirstSeen,
    /// Use raw ids verbatim; every id must already be `< nodes`. This keeps
    /// identities stable, which round-trip tests rely on.
    Dense,
}

/// Normalization parameters for one ingestion run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Population size of the resulting trace.
    pub nodes: usize,
    /// Span of the resulting trace; records past it are rejected (strict)
    /// or clamped/skipped (lenient).
    pub span: SimTime,
    /// Malformed-record policy.
    pub policy: RecordPolicy,
    /// Node-id mapping policy.
    pub ids: IdPolicy,
    /// Same-pair records whose gap is `<= merge_gap` seconds coalesce into
    /// one contact. Zero merges only overlapping/abutting records.
    pub merge_gap: f64,
}

impl IngestConfig {
    /// Strict ingestion with first-seen id mapping and no gap merging.
    #[must_use]
    pub fn new(nodes: usize, span: SimTime) -> IngestConfig {
        IngestConfig {
            nodes,
            span,
            policy: RecordPolicy::Strict,
            ids: IdPolicy::FirstSeen,
            merge_gap: 0.0,
        }
    }

    /// Sets the malformed-record policy.
    #[must_use]
    pub fn policy(mut self, policy: RecordPolicy) -> IngestConfig {
        self.policy = policy;
        self
    }

    /// Sets the id-mapping policy.
    #[must_use]
    pub fn ids(mut self, ids: IdPolicy) -> IngestConfig {
        self.ids = ids;
        self
    }

    /// Sets the same-pair merge gap in seconds.
    #[must_use]
    pub fn merge_gap(mut self, gap: f64) -> IngestConfig {
        assert!(gap >= 0.0 && gap.is_finite(), "merge_gap must be >= 0");
        self.merge_gap = gap;
        self
    }
}

/// Counters for what lenient normalization did to the record stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records accepted (after merging they may share a contact).
    pub records: u64,
    /// Records skipped because they were malformed (self-contact, empty
    /// interval, unparseable line).
    pub malformed: u64,
    /// Records skipped because they regressed the time order.
    pub out_of_order: u64,
    /// Records merged into an already-open same-pair contact.
    pub merged: u64,
    /// Records whose end was clamped to the span.
    pub clamped: u64,
    /// Records skipped because their node ids could not be mapped.
    pub unmapped: u64,
    /// Records skipped because they start at or past the span.
    pub past_span: u64,
}

impl IngestStats {
    /// Total records dropped (not represented in the output at all).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.malformed + self.out_of_order + self.unmapped + self.past_span
    }
}

/// Wrapper giving [`Contact`] the total `(start, end, a, b)` order the
/// contact driver expects, so closed contacts can sit in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ByStreamOrder(Contact);

impl ByStreamOrder {
    fn key(&self) -> (f64, f64, u32, u32) {
        let c = &self.0;
        (c.start().as_secs(), c.end().as_secs(), c.a().0, c.b().0)
    }
}

impl Eq for ByStreamOrder {}

impl Ord for ByStreamOrder {
    fn cmp(&self, other: &ByStreamOrder) -> Ordering {
        let (s1, e1, a1, b1) = self.key();
        let (s2, e2, a2, b2) = other.key();
        s1.total_cmp(&s2)
            .then(e1.total_cmp(&e2))
            .then(a1.cmp(&a2))
            .then(b1.cmp(&b2))
    }
}

impl PartialOrd for ByStreamOrder {
    fn partial_cmp(&self, other: &ByStreamOrder) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Streaming record normalizer (see the module docs for what it does).
///
/// Records must be pushed in nondecreasing `start` order (real dumps are
/// sorted; violations are handled per [`RecordPolicy`]). Contacts become
/// available from [`pop_ready`](Normalizer::pop_ready) as soon as no future
/// record can precede them in `(start, end, pair)` order.
#[derive(Debug)]
pub struct Normalizer {
    config: IngestConfig,
    id_map: HashMap<u64, NodeId>,
    /// Per-pair contact currently being extended by merging.
    open: HashMap<(NodeId, NodeId), (SimTime, SimTime)>,
    /// Closed contacts not yet safe to release.
    ready: BinaryHeap<std::cmp::Reverse<ByStreamOrder>>,
    /// Largest record start accepted so far.
    watermark: SimTime,
    finished: bool,
    stats: IngestStats,
}

impl Normalizer {
    /// Creates a normalizer for one ingestion run.
    #[must_use]
    pub fn new(config: IngestConfig) -> Normalizer {
        Normalizer {
            config,
            id_map: HashMap::new(),
            open: HashMap::new(),
            ready: BinaryHeap::new(),
            watermark: SimTime::ZERO,
            finished: false,
            stats: IngestStats::default(),
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// The raw-id → dense-id mapping built so far.
    #[must_use]
    pub fn id_map(&self) -> &HashMap<u64, NodeId> {
        &self.id_map
    }

    /// Counts a line the reader skipped as malformed before it could become
    /// a record (lenient parse failures).
    pub fn count_malformed(&mut self) {
        self.stats.malformed += 1;
    }

    fn map_id(&mut self, raw: u64, line: usize) -> Result<Option<NodeId>, ParseError> {
        match self.config.ids {
            IdPolicy::Dense => {
                if raw < self.config.nodes as u64 {
                    Ok(Some(NodeId(
                        u32::try_from(raw).expect("raw < nodes <= u32::MAX"),
                    )))
                } else if self.config.policy == RecordPolicy::Strict {
                    Err(ParseError::new(
                        line,
                        ParseErrorKind::NodeOutOfRange {
                            id: raw,
                            limit: self.config.nodes,
                        },
                    ))
                } else {
                    Ok(None)
                }
            }
            IdPolicy::FirstSeen => {
                if let Some(&id) = self.id_map.get(&raw) {
                    return Ok(Some(id));
                }
                let next = self.id_map.len();
                if next < self.config.nodes {
                    let id = NodeId(u32::try_from(next).expect("next < nodes <= u32::MAX"));
                    self.id_map.insert(raw, id);
                    Ok(Some(id))
                } else if self.config.policy == RecordPolicy::Strict {
                    Err(ParseError::new(
                        line,
                        ParseErrorKind::NodeLimit {
                            limit: self.config.nodes,
                        },
                    ))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Feeds one record, read from 1-based `line`.
    ///
    /// # Errors
    ///
    /// Under [`RecordPolicy::Strict`], returns a [`ParseError`] for
    /// self-contacts, empty intervals, out-of-order or past-span records,
    /// and unmappable node ids. Under [`RecordPolicy::Lenient`] those
    /// records are counted and skipped instead.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](Normalizer::finish).
    pub fn push(&mut self, rec: RawRecord, line: usize) -> Result<(), ParseError> {
        assert!(!self.finished, "Normalizer::push after finish");
        let strict = self.config.policy == RecordPolicy::Strict;

        if rec.a == rec.b {
            if strict {
                return Err(ParseError::new(
                    line,
                    ParseErrorKind::Contact(ContactError::SelfContact),
                ));
            }
            self.stats.malformed += 1;
            return Ok(());
        }
        if rec.end <= rec.start {
            if strict {
                return Err(ParseError::new(
                    line,
                    ParseErrorKind::Contact(ContactError::EmptyInterval),
                ));
            }
            self.stats.malformed += 1;
            return Ok(());
        }
        if rec.start >= self.config.span {
            if strict {
                return Err(ParseError::new(line, ParseErrorKind::PastSpan));
            }
            self.stats.past_span += 1;
            return Ok(());
        }
        let mut end = rec.end;
        if end > self.config.span {
            if strict {
                return Err(ParseError::new(line, ParseErrorKind::PastSpan));
            }
            end = self.config.span;
            self.stats.clamped += 1;
        }
        if rec.start < self.watermark {
            if strict {
                return Err(ParseError::new(line, ParseErrorKind::OutOfOrder));
            }
            self.stats.out_of_order += 1;
            return Ok(());
        }

        let (Some(a), Some(b)) = (self.map_id(rec.a, line)?, self.map_id(rec.b, line)?) else {
            // Lenient id overflow: the record references a node we cannot
            // represent. (Strict already returned above.)
            self.stats.unmapped += 1;
            return Ok(());
        };

        self.watermark = self.watermark.max(rec.start);
        self.stats.records += 1;

        let key = if a < b { (a, b) } else { (b, a) };
        match self.open.get_mut(&key) {
            Some((_, open_end))
                if rec.start.as_secs() <= open_end.as_secs() + self.config.merge_gap =>
            {
                *open_end = (*open_end).max(end);
                self.stats.merged += 1;
            }
            Some(slot) => {
                let (old_start, old_end) = *slot;
                *slot = (rec.start, end);
                self.close(key, old_start, old_end);
            }
            None => {
                self.open.insert(key, (rec.start, end));
            }
        }
        Ok(())
    }

    fn close(&mut self, key: (NodeId, NodeId), start: SimTime, end: SimTime) {
        let contact =
            Contact::new(key.0, key.1, start, end).expect("normalizer keeps intervals valid");
        self.ready.push(std::cmp::Reverse(ByStreamOrder(contact)));
    }

    /// Declares the record stream over, closing every still-open contact so
    /// the remaining output can drain.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let open: Vec<_> = self.open.drain().collect();
        for (key, (start, end)) in open {
            self.close(key, start, end);
        }
    }

    /// Next contact that is safe to release in `(start, end, pair)` order,
    /// or `None` if every released contact must wait for more input (or the
    /// stream is fully drained after [`finish`](Normalizer::finish)).
    pub fn pop_ready(&mut self) -> Option<Contact> {
        let head_start = self.ready.peek()?.0 .0.start();
        if !self.finished {
            // A still-open contact with an earlier start, or a future record
            // at the watermark, could still order before the heap head.
            let open_min = self
                .open
                .values()
                .map(|(s, _)| s.as_secs())
                .fold(f64::INFINITY, f64::min);
            let bound = self.watermark.as_secs().min(open_min);
            if head_start.as_secs() >= bound {
                return None;
            }
        }
        Some(self.ready.pop().expect("peeked above").0 .0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn rec(a: u64, b: u64, start: f64, end: f64) -> RawRecord {
        RawRecord {
            a,
            b,
            start: t(start),
            end: t(end),
        }
    }

    fn drain(norm: &mut Normalizer) -> Vec<Contact> {
        norm.finish();
        std::iter::from_fn(|| norm.pop_ready()).collect()
    }

    #[test]
    fn remaps_first_seen_ids_densely() {
        let mut norm = Normalizer::new(IngestConfig::new(3, t(100.0)));
        norm.push(rec(900, 17, 0.0, 5.0), 1).unwrap();
        norm.push(rec(17, 4, 10.0, 12.0), 2).unwrap();
        let contacts = drain(&mut norm);
        assert_eq!(contacts.len(), 2);
        assert_eq!(contacts[0].pair(), (NodeId(0), NodeId(1)));
        assert_eq!(contacts[1].pair(), (NodeId(1), NodeId(2)));
        assert_eq!(norm.id_map()[&900], NodeId(0));
    }

    #[test]
    fn dense_policy_uses_raw_ids() {
        let mut norm = Normalizer::new(IngestConfig::new(5, t(100.0)).ids(IdPolicy::Dense));
        norm.push(rec(4, 2, 0.0, 5.0), 1).unwrap();
        let contacts = drain(&mut norm);
        assert_eq!(contacts[0].pair(), (NodeId(2), NodeId(4)));
    }

    #[test]
    fn dense_policy_rejects_out_of_range() {
        let mut norm = Normalizer::new(IngestConfig::new(3, t(100.0)).ids(IdPolicy::Dense));
        let err = norm.push(rec(0, 3, 0.0, 5.0), 9).unwrap_err();
        assert_eq!(err.line, 9);
        assert!(matches!(
            err.kind,
            ParseErrorKind::NodeOutOfRange { id: 3, limit: 3 }
        ));
    }

    #[test]
    fn first_seen_policy_rejects_population_overflow() {
        let mut norm = Normalizer::new(IngestConfig::new(2, t(100.0)));
        norm.push(rec(10, 20, 0.0, 5.0), 1).unwrap();
        let err = norm.push(rec(10, 30, 10.0, 15.0), 2).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NodeLimit { limit: 2 }));

        // Lenient mode skips and counts instead.
        let mut norm =
            Normalizer::new(IngestConfig::new(2, t(100.0)).policy(RecordPolicy::Lenient));
        norm.push(rec(10, 20, 0.0, 5.0), 1).unwrap();
        norm.push(rec(10, 30, 10.0, 15.0), 2).unwrap();
        assert_eq!(norm.stats().unmapped, 1);
        assert_eq!(drain(&mut norm).len(), 1);
    }

    #[test]
    fn merges_same_pair_within_gap() {
        let mut norm = Normalizer::new(IngestConfig::new(2, t(1000.0)).merge_gap(10.0));
        norm.push(rec(0, 1, 0.0, 5.0), 1).unwrap();
        norm.push(rec(0, 1, 12.0, 20.0), 2).unwrap(); // gap 7 <= 10: merge
        norm.push(rec(0, 1, 40.0, 50.0), 3).unwrap(); // gap 20 > 10: new contact
        let contacts = drain(&mut norm);
        assert_eq!(contacts.len(), 2);
        assert_eq!(contacts[0].start(), t(0.0));
        assert_eq!(contacts[0].end(), t(20.0));
        assert_eq!(contacts[1].start(), t(40.0));
        assert_eq!(norm.stats().merged, 1);
    }

    #[test]
    fn merges_duplicate_overlapping_reports() {
        // Both radios report the same encounter with slightly different
        // windows — a single contact covering the union must come out.
        let mut norm = Normalizer::new(IngestConfig::new(2, t(1000.0)));
        norm.push(rec(0, 1, 10.0, 30.0), 1).unwrap();
        norm.push(rec(1, 0, 12.0, 28.0), 2).unwrap();
        let contacts = drain(&mut norm);
        assert_eq!(contacts.len(), 1);
        assert_eq!(contacts[0].start(), t(10.0));
        assert_eq!(contacts[0].end(), t(30.0));
    }

    #[test]
    fn strict_rejects_and_lenient_skips_bad_records() {
        for (bad, kind_check) in [
            (rec(1, 1, 0.0, 5.0), "self"),
            (rec(0, 1, 5.0, 5.0), "empty"),
            (rec(0, 1, 2000.0, 2001.0), "past-span"),
        ] {
            let mut strict = Normalizer::new(IngestConfig::new(4, t(1000.0)));
            assert!(strict.push(bad, 3).is_err(), "strict accepts {kind_check}");

            let mut lenient =
                Normalizer::new(IngestConfig::new(4, t(1000.0)).policy(RecordPolicy::Lenient));
            lenient.push(bad, 3).unwrap();
            assert!(drain(&mut lenient).is_empty());
            assert_eq!(lenient.stats().dropped(), 1, "{kind_check} not counted");
        }
    }

    #[test]
    fn strict_rejects_out_of_order_lenient_skips() {
        let mut strict = Normalizer::new(IngestConfig::new(4, t(1000.0)));
        strict.push(rec(0, 1, 50.0, 60.0), 1).unwrap();
        let err = strict.push(rec(2, 3, 10.0, 20.0), 2).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::OutOfOrder);
        assert_eq!(err.line, 2);

        let mut lenient =
            Normalizer::new(IngestConfig::new(4, t(1000.0)).policy(RecordPolicy::Lenient));
        lenient.push(rec(0, 1, 50.0, 60.0), 1).unwrap();
        lenient.push(rec(2, 3, 10.0, 20.0), 2).unwrap();
        assert_eq!(lenient.stats().out_of_order, 1);
        assert_eq!(drain(&mut lenient).len(), 1);
    }

    #[test]
    fn lenient_clamps_past_span_end() {
        let mut norm =
            Normalizer::new(IngestConfig::new(2, t(100.0)).policy(RecordPolicy::Lenient));
        norm.push(rec(0, 1, 90.0, 150.0), 1).unwrap();
        let contacts = drain(&mut norm);
        assert_eq!(contacts[0].end(), t(100.0));
        assert_eq!(norm.stats().clamped, 1);
    }

    #[test]
    fn releases_in_stream_order_despite_interleaved_closing() {
        // Pair (0,1) opens first but closes last; pair (2,3) opens later and
        // closes first. Output must still be sorted by (start, end, pair).
        let mut norm = Normalizer::new(IngestConfig::new(4, t(1000.0)).ids(IdPolicy::Dense));
        norm.push(rec(0, 1, 0.0, 500.0), 1).unwrap();
        norm.push(rec(2, 3, 10.0, 20.0), 2).unwrap();
        norm.push(rec(2, 3, 100.0, 110.0), 3).unwrap(); // closes first (2,3)
                                                        // (2,3)@10 is closed but cannot be released: (0,1)@0 is still open.
        assert!(norm.pop_ready().is_none());
        let contacts = drain(&mut norm);
        let starts: Vec<f64> = contacts.iter().map(|c| c.start().as_secs()).collect();
        assert_eq!(starts, vec![0.0, 10.0, 100.0]);
        let mut sorted = contacts.clone();
        sorted.sort_by(|x, y| {
            x.start()
                .as_secs()
                .total_cmp(&y.start().as_secs())
                .then(x.end().as_secs().total_cmp(&y.end().as_secs()))
        });
        assert_eq!(contacts, sorted);
    }

    #[test]
    fn incremental_release_before_finish() {
        let mut norm = Normalizer::new(IngestConfig::new(4, t(1000.0)).ids(IdPolicy::Dense));
        norm.push(rec(0, 1, 0.0, 5.0), 1).unwrap();
        norm.push(rec(0, 1, 100.0, 110.0), 2).unwrap();
        // First (0,1) contact closed; watermark 100, new open starts at 100,
        // so [0,5) is safe to release without finish().
        let c = norm.pop_ready().expect("released incrementally");
        assert_eq!(c.start(), t(0.0));
        assert!(norm.pop_ready().is_none());
    }
}
