//! Haggle / Infocom'06 iMote contact-log format.
//!
//! The Haggle project's Infocom 2006 experiment (Chaintreau et al.) handed
//! Bluetooth iMotes to 78 conference attendees and published per-device
//! contact logs. The common redistribution is a whitespace-separated table
//! of already-paired contact intervals:
//!
//! ```text
//! 1 2 120 360 1 0
//! 1 5 400 430 2 40
//! ```
//!
//! `id_a id_b start end [seq] [delta]`, with ids 1-based device numbers,
//! times in seconds from the experiment start, `seq` a per-pair contact
//! counter and `delta` the time since that pair's previous contact (both
//! optional and ignored here — they are derivable). Rows are sorted by
//! contact start. Unlike the Reality sightings these are true intervals, so
//! no scan-window expansion is needed; only duplicate/overlapping same-pair
//! rows (both devices logging one encounter) are merged.

use std::io::Write;

use omn_contacts::io::{ParseError, ParseErrorKind};
use omn_contacts::ContactTrace;
use omn_sim::SimTime;

use crate::normalize::RawRecord;
use crate::reader::LineFormat;

/// Parser for the Haggle/Infocom'06 contact-interval table.
#[derive(Debug, Clone, Copy, Default)]
pub struct HaggleFormat;

impl HaggleFormat {
    /// Creates the parser (it is stateless).
    #[must_use]
    pub fn new() -> HaggleFormat {
        HaggleFormat
    }
}

impl LineFormat for HaggleFormat {
    fn name(&self) -> &'static str {
        "haggle"
    }

    fn parse_line(&mut self, line: &str, line_no: usize) -> Result<Option<RawRecord>, ParseError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if !(4..=6).contains(&fields.len()) {
            return Err(ParseError::new(
                line_no,
                ParseErrorKind::FieldCount {
                    expected: "`id_a id_b start end [seq] [delta]`",
                    got: fields.len(),
                },
            ));
        }
        let a = parse_id(fields[0], line_no)?;
        let b = parse_id(fields[1], line_no)?;
        let start = parse_time(fields[2], "start", line_no)?;
        let end = parse_time(fields[3], "end", line_no)?;
        Ok(Some(RawRecord { a, b, start, end }))
    }
}

fn parse_id(token: &str, line_no: usize) -> Result<u64, ParseError> {
    token.parse::<u64>().map_err(|_| {
        ParseError::new(
            line_no,
            ParseErrorKind::Number {
                field: "node id",
                token: token.to_owned(),
            },
        )
    })
}

fn parse_time(token: &str, field: &'static str, line_no: usize) -> Result<SimTime, ParseError> {
    let secs = token.parse::<f64>().map_err(|_| {
        ParseError::new(
            line_no,
            ParseErrorKind::Number {
                field,
                token: token.to_owned(),
            },
        )
    })?;
    SimTime::try_from_secs(secs).map_err(|e| {
        ParseError::new(
            line_no,
            ParseErrorKind::Time {
                field,
                reason: e.to_string(),
            },
        )
    })
}

/// Writes a trace as a Haggle-style contact table, one
/// `id_a id_b start end seq delta` row per contact in trace order, with the
/// per-pair `seq`/`delta` columns reconstructed the way the published logs
/// carry them.
///
/// Ids are written verbatim (0-based), so re-ingesting with
/// [`IdPolicy::Dense`](crate::normalize::IdPolicy) reproduces the contact
/// sequence bit-identically — the round-trip tests rely on this.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_haggle<W: Write>(trace: &ContactTrace, mut w: W) -> std::io::Result<()> {
    use std::collections::HashMap;

    let mut seq: HashMap<(u32, u32), (u64, f64)> = HashMap::new();
    for c in trace.contacts() {
        let key = (c.a().0, c.b().0);
        let start = c.start().as_secs();
        let entry = seq.entry(key).or_insert((0, start));
        entry.0 += 1;
        let delta = start - entry.1;
        entry.1 = start;
        writeln!(
            w,
            "{} {} {} {} {} {}",
            c.a().0,
            c.b().0,
            start,
            c.end().as_secs(),
            entry.0,
            delta
        )?;
    }
    Ok(())
}
