//! MIT Reality Mining Bluetooth-proximity dump format.
//!
//! The Reality Mining study (Eagle & Pentland, MIT, 2004–2005) logged
//! periodic Bluetooth device discovery on ~100 phones. The common
//! redistribution of its proximity table is a CSV of *sightings*:
//!
//! ```text
//! timestamp,id_a,id_b
//! 1096854000,27,84
//! 1096854300,27,84
//! ```
//!
//! one row per scan in which `id_a` observed `id_b`, with `timestamp` in
//! unix seconds and ids arbitrary device indices. A physical encounter shows
//! up as a *run* of rows at the scan period (~300 s), often reported by both
//! devices; the reader therefore expands each sighting into a
//! `[t, t + scan_interval)` window and merges same-pair windows whose gap is
//! at most one scan interval, recovering contact intervals from the sampled
//! sightings. Timestamps are rebased to the first record so traces start at
//! zero. An optional leading header row is tolerated.

use std::io::Write;

use omn_contacts::io::{ParseError, ParseErrorKind};
use omn_contacts::ContactTrace;
use omn_sim::SimTime;

use crate::normalize::RawRecord;
use crate::reader::LineFormat;

/// Default Bluetooth scan period of the Reality deployment, seconds.
pub const DEFAULT_SCAN_INTERVAL: f64 = 300.0;

/// Parser state for the Reality sighting CSV.
#[derive(Debug, Clone)]
pub struct RealityFormat {
    scan_interval: f64,
    /// Unix timestamp of the first record; later rows are rebased to it.
    origin: Option<f64>,
}

impl RealityFormat {
    /// Creates a parser with the deployment's default 300 s scan period.
    #[must_use]
    pub fn new() -> RealityFormat {
        RealityFormat::with_scan_interval(DEFAULT_SCAN_INTERVAL)
    }

    /// Creates a parser for a deployment with a different scan period.
    ///
    /// # Panics
    ///
    /// Panics if `scan_interval` is not positive and finite.
    #[must_use]
    pub fn with_scan_interval(scan_interval: f64) -> RealityFormat {
        assert!(
            scan_interval > 0.0 && scan_interval.is_finite(),
            "scan_interval must be positive"
        );
        RealityFormat {
            scan_interval,
            origin: None,
        }
    }

    /// The scan period this parser assumes.
    #[must_use]
    pub fn scan_interval(&self) -> f64 {
        self.scan_interval
    }
}

impl Default for RealityFormat {
    fn default() -> RealityFormat {
        RealityFormat::new()
    }
}

impl LineFormat for RealityFormat {
    fn name(&self) -> &'static str {
        "reality"
    }

    fn parse_line(&mut self, line: &str, line_no: usize) -> Result<Option<RawRecord>, ParseError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(ParseError::new(
                line_no,
                ParseErrorKind::FieldCount {
                    expected: "`timestamp,id_a,id_b`",
                    got: fields.len(),
                },
            ));
        }
        let Ok(timestamp) = fields[0].parse::<f64>() else {
            if line_no == 1 {
                // Tolerated column-name header row.
                return Ok(None);
            }
            return Err(ParseError::new(
                line_no,
                ParseErrorKind::Number {
                    field: "timestamp",
                    token: fields[0].to_owned(),
                },
            ));
        };
        if !timestamp.is_finite() || timestamp < 0.0 {
            return Err(ParseError::new(
                line_no,
                ParseErrorKind::Time {
                    field: "timestamp",
                    reason: format!("`{timestamp}` is not a valid unix time"),
                },
            ));
        }
        let a = parse_id(fields[1], line_no)?;
        let b = parse_id(fields[2], line_no)?;
        let origin = *self.origin.get_or_insert(timestamp);
        let rebased = timestamp - origin;
        let start = SimTime::try_from_secs(rebased).map_err(|e| {
            ParseError::new(
                line_no,
                ParseErrorKind::Time {
                    field: "timestamp",
                    reason: e.to_string(),
                },
            )
        })?;
        Ok(Some(RawRecord {
            a,
            b,
            start,
            end: SimTime::from_secs(rebased + self.scan_interval),
        }))
    }

    fn default_merge_gap(&self) -> f64 {
        // Consecutive scans of one encounter are one scan period apart;
        // windows already abut, so any gap up to one period is the same
        // encounter seen with a missed scan.
        self.scan_interval
    }
}

fn parse_id(token: &str, line_no: usize) -> Result<u64, ParseError> {
    token.parse::<u64>().map_err(|_| {
        ParseError::new(
            line_no,
            ParseErrorKind::Number {
                field: "node id",
                token: token.to_owned(),
            },
        )
    })
}

/// Writes a trace as a Reality-style sighting CSV: each contact becomes one
/// sighting per scan period from its start (exclusive of its end), offset by
/// `origin` unix seconds, globally sorted by `(timestamp, id_a, id_b)`.
///
/// The encoding is *sampled*, so re-ingesting only reproduces the trace
/// exactly when every contact is aligned to the scan grid and same-pair
/// contacts are separated by more than one scan period (otherwise sighting
/// runs coalesce) — the round-trip tests generate such traces.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_reality<W: Write>(
    trace: &ContactTrace,
    scan_interval: f64,
    origin: f64,
    mut w: W,
) -> std::io::Result<()> {
    assert!(
        scan_interval > 0.0 && scan_interval.is_finite(),
        "scan_interval must be positive"
    );
    let mut rows: Vec<(f64, u32, u32)> = Vec::new();
    for c in trace.contacts() {
        let mut t = c.start().as_secs();
        while t < c.end().as_secs() {
            rows.push((origin + t, c.a().0, c.b().0));
            t += scan_interval;
        }
    }
    rows.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    writeln!(w, "timestamp,id_a,id_b")?;
    for (t, a, b) in rows {
        writeln!(w, "{t},{a},{b}")?;
    }
    Ok(())
}
