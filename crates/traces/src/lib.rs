//! Real contact-dataset ingestion and calibration.
//!
//! The reproduced paper evaluates on two real opportunistic-network traces:
//! *MIT Reality* (Bluetooth proximity on ~100 campus phones over 9 months)
//! and *Haggle/Infocom'06* (iMotes on 78 conference attendees over ~4
//! days). This crate turns those published dump formats into the validated
//! [`ContactTrace`](omn_contacts::ContactTrace)s / streaming
//! [`ContactSource`](omn_contacts::ContactSource)s everything else
//! consumes, and fits the pairwise-exponential model the protocol analysis
//! assumes:
//!
//! * [`reality`] / [`haggle`] — line-by-line parsers for the two dump
//!   formats, each a [`reader::LineFormat`] plugged into the generic
//!   bounded-memory [`reader::TraceReader`];
//! * [`normalize`] — the shared record normalizer: node-id remapping,
//!   duplicate/overlap merging, and the strict-vs-lenient malformed-record
//!   policy, reporting failures through the typed
//!   [`ParseError`](omn_contacts::io::ParseError) introduced for
//!   `StreamingTraceSource`;
//! * [`registry`] — dataset specs ([`registry::TraceSpec`]: path, format,
//!   pinned checksum, expected population/span), format sniffing and
//!   probing, and the built-in registry that prefers full datasets under
//!   `datasets/` and falls back to fixture excerpts under `tests/data/`;
//! * [`calibrate`] — pairwise inter-contact rate estimation, Gamma
//!   heterogeneity fitting with an exponential goodness-of-fit figure, the
//!   fitted synthetic preset ([`calibrate::Calibration::preset`]), and the
//!   real-vs-synthetic [`calibrate::calibration_check`] that experiment
//!   E16 tabulates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibrate;
pub mod haggle;
pub mod normalize;
pub mod reader;
pub mod reality;
pub mod registry;

pub use calibrate::{calibration_check, Calibration, CalibrationCheck};
pub use normalize::{IdPolicy, IngestConfig, IngestStats, RecordPolicy};
pub use reader::TraceReader;
pub use registry::{ingest_file, open_source, probe, registry, Ingested, TraceFormat, TraceSpec};
