//! Pairwise-exponential model fitting from an ingested trace.
//!
//! The freshness protocol's analysis assumes pairwise Poisson contacts:
//! pair `(i, j)` meets at rate `λij`, with the rates heterogeneous across
//! pairs. [`Calibration::fit`] estimates that model from a real trace:
//!
//! * per-pair rates via the cumulative MLE `λ̂ij = nij / span` (the same
//!   estimator protocol nodes run online, replayed through
//!   [`PairRateTable::observe_trace`]);
//! * the across-pair rate distribution summarized as a Gamma fit by the
//!   method of moments (`shape = mean² / variance`), matching the
//!   generative model of
//!   [`generate_pairwise`](omn_contacts::synth::generate_pairwise);
//! * a goodness-of-fit figure: the one-sample Kolmogorov–Smirnov distance
//!   between the pooled per-pair-normalized inter-contact times and the
//!   unit exponential they would follow if contacts really were Poisson.
//!
//! [`Calibration::preset`] then emits the fitted [`PairwiseConfig`] — the
//! calibrated synthetic fallback used when a dataset file is absent — and
//! [`calibration_check`] quantifies how close a synthetic trace's aggregate
//! statistics come to the real one (the E16 calibration-check table).

use std::collections::HashMap;

use omn_contacts::estimate::{EstimatorKind, PairRateTable};
use omn_contacts::synth::PairwiseConfig;
use omn_contacts::{ContactTrace, NodeId, TraceStats};
use omn_sim::{SimDuration, SimTime};

/// Smallest mean rate the fitted preset will carry (an empty trace still
/// yields a generable config).
const MIN_MEAN_RATE: f64 = 1e-9;

/// Gamma-shape clamp bounds: below, generation degenerates to a handful of
/// pairs; above, rates are effectively homogeneous.
const SHAPE_BOUNDS: (f64, f64) = (0.05, 10.0);

/// A pairwise-exponential model fitted to a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Population size.
    pub node_count: usize,
    /// Trace span.
    pub span: SimTime,
    /// Total contacts observed.
    pub contacts: usize,
    /// Aggregate contact intensity (the E1 headline statistic).
    pub contacts_per_node_per_day: f64,
    /// Mean pairwise rate over all unordered pairs (contacts/s/pair).
    pub mean_rate: f64,
    /// Method-of-moments Gamma shape of the across-pair rate distribution,
    /// clamped to [`SHAPE_BOUNDS`].
    pub rate_shape: f64,
    /// Mean contact duration.
    pub mean_contact_duration: SimDuration,
    /// Pairs that met at least once.
    pub observed_pairs: usize,
    /// Fraction of all unordered pairs that ever met.
    pub pair_coverage: f64,
    /// One-sample KS distance of per-pair-normalized inter-contact times
    /// against the unit exponential; `None` when no pair met three times.
    pub ict_ks_exponential: Option<f64>,
    /// Inter-contact samples behind the KS figure.
    pub ict_samples: usize,
}

impl Calibration {
    /// Fits the pairwise-exponential model to `trace`.
    #[must_use]
    pub fn fit(trace: &ContactTrace) -> Calibration {
        let n = trace.node_count();
        let span = trace.span();
        let span_secs = span.as_secs();
        let stats = TraceStats::compute(trace);

        // Per-pair cumulative-MLE rates, replayed through the same estimator
        // table the protocol nodes maintain online.
        let mut table = PairRateTable::new(EstimatorKind::Cumulative, SimTime::ZERO);
        table.observe_trace(trace);
        let end = if span_secs > 0.0 {
            span
        } else {
            SimTime::from_secs(1.0)
        };
        let graph = table.to_graph(n, end);

        // Method-of-moments Gamma fit over ALL unordered pairs (never-met
        // pairs contribute zero rates — heterogeneity includes them).
        let pair_count = n * n.saturating_sub(1) / 2;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let r = graph.rate(NodeId(i as u32), NodeId(j as u32));
                sum += r;
                sum_sq += r * r;
            }
        }
        let mean_rate = if pair_count > 0 {
            sum / pair_count as f64
        } else {
            0.0
        };
        let variance = if pair_count > 0 {
            (sum_sq / pair_count as f64 - mean_rate * mean_rate).max(0.0)
        } else {
            0.0
        };
        let rate_shape = if variance > 0.0 && mean_rate > 0.0 {
            (mean_rate * mean_rate / variance).clamp(SHAPE_BOUNDS.0, SHAPE_BOUNDS.1)
        } else {
            SHAPE_BOUNDS.1
        };

        let (ict_ks_exponential, ict_samples) = exponential_ks(trace);

        Calibration {
            node_count: n,
            span,
            contacts: trace.len(),
            contacts_per_node_per_day: stats.contacts_per_node_per_day,
            mean_rate,
            rate_shape,
            mean_contact_duration: SimDuration::from_secs(
                stats.contact_duration.as_ref().map_or(300.0, |s| s.mean),
            ),
            observed_pairs: table.observed_pairs(),
            pair_coverage: if pair_count > 0 {
                table.observed_pairs() as f64 / pair_count as f64
            } else {
                0.0
            },
            ict_ks_exponential,
            ict_samples,
        }
    }

    /// The fitted generative config: running
    /// [`generate_pairwise`](omn_contacts::synth::generate_pairwise) on it
    /// produces the calibrated synthetic stand-in for the dataset.
    #[must_use]
    pub fn preset(&self) -> PairwiseConfig {
        let span_secs = self.span.as_secs().max(1.0);
        PairwiseConfig::new(self.node_count.max(2), SimDuration::from_secs(span_secs))
            .mean_rate(self.mean_rate.max(MIN_MEAN_RATE))
            .rate_shape(self.rate_shape)
            .mean_contact_duration(self.mean_contact_duration.max(SimDuration::from_secs(1.0)))
    }
}

/// Pools per-pair inter-contact times, each normalized by its own pair's
/// mean, and measures their one-sample KS distance against `Exp(1)`.
///
/// Under the pairwise-exponential model every normalized gap is a unit
/// exponential draw regardless of the pair's rate, so the distance is a
/// direct goodness-of-fit figure for the model itself. Only pairs with at
/// least three contacts (two gaps) contribute — a single gap normalized by
/// itself is identically 1.
fn exponential_ks(trace: &ContactTrace) -> (Option<f64>, usize) {
    let mut per_pair: HashMap<(NodeId, NodeId), Vec<f64>> = HashMap::new();
    for c in trace.contacts() {
        per_pair
            .entry(c.pair())
            .or_default()
            .push(c.start().as_secs());
    }
    let mut normalized = Vec::new();
    for starts in per_pair.values() {
        if starts.len() < 3 {
            continue;
        }
        let gaps: Vec<f64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean <= 0.0 {
            continue;
        }
        normalized.extend(gaps.iter().map(|g| g / mean));
    }
    if normalized.is_empty() {
        return (None, 0);
    }
    normalized.sort_by(f64::total_cmp);
    let n = normalized.len();
    let mut d = 0.0f64;
    for (i, x) in normalized.iter().enumerate() {
        let f = 1.0 - (-x).exp();
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    (Some(d), n)
}

/// How close a synthetic trace's aggregate statistics come to a real one —
/// the E16 calibration-check row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationCheck {
    /// Contacts/node/day of the real trace.
    pub real_intensity: f64,
    /// Contacts/node/day of the synthetic trace.
    pub synth_intensity: f64,
    /// `synth_intensity / real_intensity` (1.0 is perfect).
    pub intensity_ratio: f64,
    /// Mean inter-contact time of the real trace, seconds (`None` if no
    /// pair meets twice).
    pub real_mean_ict: Option<f64>,
    /// Mean inter-contact time of the synthetic trace, seconds.
    pub synth_mean_ict: Option<f64>,
    /// Two-sample KS distance between the inter-contact CDFs (`None` when
    /// either trace lacks repeat meetings).
    pub ict_ks: Option<f64>,
}

/// Compares a synthetic trace against the real trace it was calibrated to.
#[must_use]
pub fn calibration_check(real: &ContactTrace, synth: &ContactTrace) -> CalibrationCheck {
    let real_stats = TraceStats::compute(real);
    let synth_stats = TraceStats::compute(synth);
    let real_cdf = TraceStats::inter_contact_cdf(real);
    let synth_cdf = TraceStats::inter_contact_cdf(synth);
    let ict_ks = match (&real_cdf, &synth_cdf) {
        (Some(r), Some(s)) => Some(r.ks_distance(s)),
        _ => None,
    };
    CalibrationCheck {
        real_intensity: real_stats.contacts_per_node_per_day,
        synth_intensity: synth_stats.contacts_per_node_per_day,
        intensity_ratio: if real_stats.contacts_per_node_per_day > 0.0 {
            synth_stats.contacts_per_node_per_day / real_stats.contacts_per_node_per_day
        } else {
            f64::NAN
        },
        real_mean_ict: real_stats.inter_contact.as_ref().map(|s| s.mean),
        synth_mean_ict: synth_stats.inter_contact.as_ref().map(|s| s.mean),
        ict_ks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omn_contacts::synth::generate_pairwise;
    use omn_sim::RngFactory;

    fn synthetic(nodes: usize, days: f64, mean_rate: f64, shape: f64) -> ContactTrace {
        let config = PairwiseConfig::new(nodes, SimDuration::from_days(days))
            .mean_rate(mean_rate)
            .rate_shape(shape);
        generate_pairwise(&config, &RngFactory::new(42))
    }

    #[test]
    fn fit_recovers_mean_rate_of_pairwise_model() {
        let true_rate = 1.0 / 7200.0; // every 2 hours per pair
        let trace = synthetic(30, 5.0, true_rate, 1.0);
        let cal = Calibration::fit(&trace);
        assert!(
            (cal.mean_rate / true_rate - 1.0).abs() < 0.25,
            "fitted {} vs true {true_rate}",
            cal.mean_rate
        );
        assert!(cal.pair_coverage > 0.9, "dense model should cover pairs");
    }

    #[test]
    fn fit_detects_heterogeneity_direction() {
        let uniform = Calibration::fit(&synthetic(25, 5.0, 1.0 / 3600.0, 8.0));
        let skewed = Calibration::fit(&synthetic(25, 5.0, 1.0 / 3600.0, 0.3));
        assert!(
            uniform.rate_shape > skewed.rate_shape,
            "uniform {} should exceed skewed {}",
            uniform.rate_shape,
            skewed.rate_shape
        );
    }

    #[test]
    fn pairwise_model_passes_its_own_gof() {
        let trace = synthetic(25, 5.0, 1.0 / 3600.0, 1.0);
        let cal = Calibration::fit(&trace);
        let ks = cal
            .ict_ks_exponential
            .expect("dense trace has repeat pairs");
        assert!(cal.ict_samples > 500, "samples {}", cal.ict_samples);
        assert!(ks < 0.1, "model trace should fit its own model, KS={ks}");
    }

    #[test]
    fn preset_round_trips_through_generation() {
        let real = synthetic(25, 5.0, 1.0 / 5400.0, 0.8);
        let cal = Calibration::fit(&real);
        let synth = generate_pairwise(&cal.preset(), &RngFactory::new(7));
        let check = calibration_check(&real, &synth);
        assert!(
            (0.6..=1.6).contains(&check.intensity_ratio),
            "intensity ratio {}",
            check.intensity_ratio
        );
        let ks = check.ict_ks.expect("both traces have repeat meetings");
        assert!(ks < 0.35, "inter-contact CDFs should be close, KS={ks}");
    }

    #[test]
    fn empty_trace_still_yields_generable_preset() {
        let trace = omn_contacts::TraceBuilder::new(4)
            .span(SimTime::from_days(1.0))
            .build()
            .unwrap();
        let cal = Calibration::fit(&trace);
        assert_eq!(cal.contacts, 0);
        assert!(cal.ict_ks_exponential.is_none());
        // Must not panic: PairwiseConfig validates its inputs.
        let _ = generate_pairwise(&cal.preset(), &RngFactory::new(1));
    }
}
