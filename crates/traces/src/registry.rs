//! Dataset registry: where trace files live, which parser reads them, and
//! what an ingested file is expected to contain.
//!
//! A [`TraceSpec`] names a dataset file (format, path, pinned checksum,
//! expected node count and span). [`registry`] returns the built-in specs,
//! preferring a locally-obtained full dataset under `datasets/` and falling
//! back to the small fixture excerpts vendored under `tests/data/` — so CI
//! and fresh clones ingest real-format files without any download.

use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

use omn_contacts::io::{StreamingTraceSource, TraceIoError};
use omn_contacts::{Contact, ContactSource, ContactTrace, LastContact, TraceBuilder};
use omn_sim::SimTime;

use crate::haggle::HaggleFormat;
use crate::normalize::{IngestConfig, IngestStats, RecordPolicy};
use crate::reader::TraceReader;
use crate::reality::RealityFormat;

/// The dataset dump formats the crate can ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// MIT Reality Bluetooth sighting CSV ([`crate::reality`]).
    Reality,
    /// Haggle/Infocom'06 contact-interval table ([`crate::haggle`]).
    Haggle,
    /// The repo's own v1 text format
    /// ([`omn_contacts::io::StreamingTraceSource`]).
    OmnV1,
}

impl TraceFormat {
    /// All formats, in reporting order.
    pub const ALL: [TraceFormat; 3] = [
        TraceFormat::Reality,
        TraceFormat::Haggle,
        TraceFormat::OmnV1,
    ];

    /// The flag/report name of the format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Reality => "reality",
            TraceFormat::Haggle => "haggle",
            TraceFormat::OmnV1 => "omn-v1",
        }
    }

    /// Parses a `--trace-format` flag value.
    #[must_use]
    pub fn from_name(name: &str) -> Option<TraceFormat> {
        TraceFormat::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Guesses the format from the first few content lines of `path`:
    /// the v1 header marks [`TraceFormat::OmnV1`], comma-separated triples
    /// mark [`TraceFormat::Reality`], whitespace-separated 4–6 column rows
    /// mark [`TraceFormat::Haggle`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening or reading the file.
    pub fn sniff(path: &Path) -> std::io::Result<Option<TraceFormat>> {
        let r = BufReader::new(File::open(path)?);
        for line in r.lines().take(50) {
            let line = line?;
            let line = line.trim();
            if line.contains("omn-contacts v1") || line.starts_with("nodes ") {
                return Ok(Some(TraceFormat::OmnV1));
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.split(',').count() == 3 {
                return Ok(Some(TraceFormat::Reality));
            }
            let cols = line.split_whitespace().count();
            if (4..=6).contains(&cols) {
                return Ok(Some(TraceFormat::Haggle));
            }
            // First content line matched nothing — keep looking only past a
            // possible header row.
        }
        Ok(None)
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One registered dataset file and what ingesting it should produce.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Short display name.
    pub name: &'static str,
    /// Which parser reads the file.
    pub format: TraceFormat,
    /// Where the file lives.
    pub path: PathBuf,
    /// Population size to ingest with (distinct devices in the file).
    pub expected_nodes: usize,
    /// Span to ingest with, in days.
    pub expected_span_days: f64,
    /// Pinned FNV-1a 64 checksum of the file bytes; verified when `Some`.
    pub checksum: Option<u64>,
}

impl TraceSpec {
    /// The ingest configuration this spec implies (lenient: real dumps have
    /// stray records, and the counters report what was dropped).
    #[must_use]
    pub fn ingest_config(&self) -> IngestConfig {
        IngestConfig::new(
            self.expected_nodes,
            SimTime::from_days(self.expected_span_days),
        )
        .policy(RecordPolicy::Lenient)
    }

    /// Ingests the file into a materialized trace.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read, fails its pinned
    /// checksum, or does not normalize into a valid trace.
    pub fn ingest(&self) -> Result<Ingested, TraceIoError> {
        if let Some(expected) = self.checksum {
            let actual = file_checksum(&self.path)?;
            if actual != expected {
                return Err(TraceIoError::Invalid(format!(
                    "{}: checksum mismatch: file {actual:#018x}, registry pins {expected:#018x}",
                    self.path.display()
                )));
            }
        }
        ingest_file(&self.path, self.format, self.ingest_config())
    }
}

/// Built-in dataset registry rooted at `root` (the repository root).
///
/// For each dataset, prefers the locally-obtained full file under
/// `datasets/` (see the README for how to obtain the public releases) and
/// falls back to the vendored excerpt under `tests/data/`. Datasets with
/// neither file present are omitted — callers fall back to the calibrated
/// synthetic presets.
#[must_use]
pub fn registry(root: &Path) -> Vec<TraceSpec> {
    let mut specs = Vec::new();
    let candidates = [
        (
            "mit-reality",
            TraceFormat::Reality,
            "datasets/reality.csv",
            97,
            270.0,
            "tests/data/reality_excerpt.txt",
            REALITY_EXCERPT_NODES,
            REALITY_EXCERPT_SPAN_DAYS,
            Some(REALITY_EXCERPT_CHECKSUM),
        ),
        (
            "infocom06",
            TraceFormat::Haggle,
            "datasets/infocom06.dat",
            78,
            3.9,
            "tests/data/infocom06_excerpt.dat",
            INFOCOM_EXCERPT_NODES,
            INFOCOM_EXCERPT_SPAN_DAYS,
            Some(INFOCOM_EXCERPT_CHECKSUM),
        ),
    ];
    for (name, format, full, full_nodes, full_days, fixture, fx_nodes, fx_days, fx_sum) in
        candidates
    {
        let full_path = root.join(full);
        let fixture_path = root.join(fixture);
        if full_path.exists() {
            specs.push(TraceSpec {
                name,
                format,
                path: full_path,
                expected_nodes: full_nodes,
                expected_span_days: full_days,
                checksum: None,
            });
        } else if fixture_path.exists() {
            specs.push(TraceSpec {
                name,
                format,
                path: fixture_path,
                expected_nodes: fx_nodes,
                expected_span_days: fx_days,
                checksum: fx_sum,
            });
        }
    }
    specs
}

/// Node count of the vendored Reality excerpt.
pub const REALITY_EXCERPT_NODES: usize = 12;
/// Span (days) of the vendored Reality excerpt.
pub const REALITY_EXCERPT_SPAN_DAYS: f64 = 2.0;
/// Pinned FNV-1a 64 checksum of the vendored Reality excerpt.
pub const REALITY_EXCERPT_CHECKSUM: u64 = 0x0b98_48e3_b1f8_8131;
/// Node count of the vendored Infocom'06 excerpt.
pub const INFOCOM_EXCERPT_NODES: usize = 15;
/// Span (days) of the vendored Infocom'06 excerpt.
pub const INFOCOM_EXCERPT_SPAN_DAYS: f64 = 1.0;
/// Pinned FNV-1a 64 checksum of the vendored Infocom'06 excerpt.
pub const INFOCOM_EXCERPT_CHECKSUM: u64 = 0xe7a7_1ebf_ba45_293f;

/// FNV-1a 64-bit hash of a byte stream.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64 checksum of a file, streamed in 64 KiB chunks.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn file_checksum(path: &Path) -> Result<u64, TraceIoError> {
    let mut f = File::open(path)?;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            return Ok(hash);
        }
        for &b in &buf[..n] {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// A [`ContactSource`] over any registered dataset format, with uniform
/// access to the stream-terminating error and ingestion counters.
#[derive(Debug)]
pub enum DatasetSource {
    /// Reality sighting CSV.
    Reality(TraceReader<BufReader<File>, RealityFormat>),
    /// Haggle contact table.
    Haggle(TraceReader<BufReader<File>, HaggleFormat>),
    /// The repo's own v1 text format.
    OmnV1(StreamingTraceSource<BufReader<File>>),
}

impl DatasetSource {
    /// The error that terminated the stream early, if any.
    #[must_use]
    pub fn error(&self) -> Option<&TraceIoError> {
        match self {
            DatasetSource::Reality(r) => r.error(),
            DatasetSource::Haggle(r) => r.error(),
            DatasetSource::OmnV1(r) => r.error(),
        }
    }

    /// Normalization counters (zero for the v1 format, which is exact).
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        match self {
            DatasetSource::Reality(r) => r.stats(),
            DatasetSource::Haggle(r) => r.stats(),
            DatasetSource::OmnV1(_) => IngestStats::default(),
        }
    }

    /// Distinct raw node ids seen so far (v1 reports its declared count).
    #[must_use]
    pub fn nodes_seen(&self) -> usize {
        match self {
            DatasetSource::Reality(r) => r.node_map().len(),
            DatasetSource::Haggle(r) => r.node_map().len(),
            DatasetSource::OmnV1(r) => r.node_count(),
        }
    }
}

impl ContactSource for DatasetSource {
    fn node_count(&self) -> usize {
        match self {
            DatasetSource::Reality(r) => r.node_count(),
            DatasetSource::Haggle(r) => r.node_count(),
            DatasetSource::OmnV1(r) => r.node_count(),
        }
    }

    fn span(&self) -> SimTime {
        match self {
            DatasetSource::Reality(r) => r.span(),
            DatasetSource::Haggle(r) => r.span(),
            DatasetSource::OmnV1(r) => r.span(),
        }
    }

    fn next_contact(&mut self) -> Option<Contact> {
        match self {
            DatasetSource::Reality(r) => r.next_contact(),
            DatasetSource::Haggle(r) => r.next_contact(),
            DatasetSource::OmnV1(r) => r.next_contact(),
        }
    }

    fn last_contact(&self) -> LastContact {
        match self {
            DatasetSource::Reality(r) => r.last_contact(),
            DatasetSource::Haggle(r) => r.last_contact(),
            DatasetSource::OmnV1(r) => r.last_contact(),
        }
    }
}

/// Opens a dataset file as a streaming [`ContactSource`].
///
/// For [`TraceFormat::OmnV1`] the file's own header provides node count and
/// span; `config` applies to the headerless real formats.
///
/// # Errors
///
/// Returns an error if the file cannot be opened (or, for v1, its header is
/// malformed).
pub fn open_source(
    path: &Path,
    format: TraceFormat,
    config: IngestConfig,
) -> Result<DatasetSource, TraceIoError> {
    let r = BufReader::new(File::open(path)?);
    Ok(match format {
        TraceFormat::Reality => {
            DatasetSource::Reality(TraceReader::new(r, RealityFormat::new(), config))
        }
        TraceFormat::Haggle => {
            DatasetSource::Haggle(TraceReader::new(r, HaggleFormat::new(), config))
        }
        TraceFormat::OmnV1 => DatasetSource::OmnV1(StreamingTraceSource::open(r)?),
    })
}

/// What a lenient reconnaissance pass over a file found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeReport {
    /// Distinct node ids in the file.
    pub nodes: usize,
    /// Latest contact end.
    pub span: SimTime,
    /// Contacts the file normalizes into.
    pub contacts: u64,
    /// Bytes read.
    pub bytes: u64,
}

/// Discovers a headerless file's population and span with a lenient pass,
/// so user-supplied `--trace` files need no sidecar metadata.
///
/// # Errors
///
/// Returns an error if the file cannot be read.
pub fn probe(path: &Path, format: TraceFormat) -> Result<ProbeReport, TraceIoError> {
    let config =
        IngestConfig::new(1 << 20, SimTime::from_days(365_000.0)).policy(RecordPolicy::Lenient);
    let mut src = open_source(path, format, config)?;
    let mut contacts = 0u64;
    let mut span = SimTime::ZERO;
    while let Some(c) = src.next_contact() {
        contacts += 1;
        span = span.max(c.end());
    }
    if let Some(e) = src.error() {
        return Err(TraceIoError::Invalid(format!(
            "{}: probe failed: {e}",
            path.display()
        )));
    }
    let bytes = match &src {
        DatasetSource::Reality(r) => r.bytes_read(),
        DatasetSource::Haggle(r) => r.bytes_read(),
        DatasetSource::OmnV1(_) => 0,
    };
    Ok(ProbeReport {
        nodes: src.nodes_seen(),
        span,
        contacts,
        bytes,
    })
}

/// A fully-ingested dataset file.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The materialized, validated trace.
    pub trace: ContactTrace,
    /// Normalization counters.
    pub stats: IngestStats,
    /// Bytes of input consumed.
    pub bytes: u64,
    /// FNV-1a 64 checksum of the file.
    pub checksum: u64,
    /// The format that was parsed.
    pub format: TraceFormat,
    /// Distinct raw node ids seen.
    pub nodes_seen: usize,
}

/// Ingests a dataset file into a materialized [`ContactTrace`].
///
/// # Errors
///
/// Returns an error if the file cannot be read, a record fails under the
/// configured policy, or the normalized contacts violate trace invariants.
pub fn ingest_file(
    path: &Path,
    format: TraceFormat,
    config: IngestConfig,
) -> Result<Ingested, TraceIoError> {
    let checksum = file_checksum(path)?;
    let mut src = open_source(path, format, config)?;
    let mut contacts = Vec::new();
    while let Some(c) = src.next_contact() {
        contacts.push(c);
    }
    if let Some(e) = src.error() {
        return Err(TraceIoError::Invalid(format!("{}: {e}", path.display())));
    }
    let bytes = match &src {
        DatasetSource::Reality(r) => r.bytes_read(),
        DatasetSource::Haggle(r) => r.bytes_read(),
        DatasetSource::OmnV1(_) => std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
    };
    let (nodes, span) = (src.node_count(), src.span());
    let trace = TraceBuilder::new(nodes)
        .span(span)
        .contacts(contacts)
        .build()
        .map_err(|e| TraceIoError::Invalid(e.to_string()))?;
    Ok(Ingested {
        trace,
        stats: src.stats(),
        bytes,
        checksum,
        format,
        nodes_seen: src.nodes_seen(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_round_trip() {
        for f in TraceFormat::ALL {
            assert_eq!(TraceFormat::from_name(f.name()), Some(f));
        }
        assert_eq!(TraceFormat::from_name("csv"), None);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
