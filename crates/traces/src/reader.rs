//! Generic line-by-line dataset reader.
//!
//! [`TraceReader`] follows the `omn_contacts::io::StreamingTraceSource`
//! template: it implements [`ContactSource`] by parsing one line per pull,
//! feeding records through a [`Normalizer`], and releasing contacts in
//! `(start, end, pair)` stream order. Resident memory is one line plus the
//! normalizer's open-pair window, regardless of file size.
//!
//! A pull-based stream has no channel to report a mid-stream failure, so —
//! exactly like `StreamingTraceSource` — an I/O error or (under
//! [`RecordPolicy::Strict`](crate::normalize::RecordPolicy)) a parse error
//! ends the stream, and the caller inspects it afterwards through
//! [`TraceReader::error`].

use std::collections::HashMap;
use std::io::BufRead;

use omn_contacts::io::{ParseError, TraceIoError};
use omn_contacts::{Contact, ContactSource, LastContact, NodeId};
use omn_sim::SimTime;

use crate::normalize::{IngestConfig, IngestStats, Normalizer, RawRecord, RecordPolicy};

/// A line-oriented dataset format: how one line becomes a [`RawRecord`].
pub trait LineFormat {
    /// Short format name for reports (`"reality"`, `"haggle"`).
    fn name(&self) -> &'static str;

    /// Parses one line. `Ok(None)` means the line carries no record
    /// (comment, blank, tolerated header row).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] at `line_no` for malformed lines.
    fn parse_line(&mut self, line: &str, line_no: usize) -> Result<Option<RawRecord>, ParseError>;

    /// The same-pair merge gap (seconds) this format needs so that one
    /// physical encounter, reported as several records, becomes one contact.
    fn default_merge_gap(&self) -> f64 {
        0.0
    }
}

/// A [`ContactSource`] that streams a dataset file line by line through a
/// [`Normalizer`].
#[derive(Debug)]
pub struct TraceReader<R, F> {
    lines: std::io::Lines<R>,
    format: F,
    policy: RecordPolicy,
    norm: Normalizer,
    nodes: usize,
    span: SimTime,
    line_no: usize,
    bytes: u64,
    done: bool,
    error: Option<TraceIoError>,
}

impl<R: BufRead, F: LineFormat> TraceReader<R, F> {
    /// Opens a dataset for streaming. `config.merge_gap` of zero is widened
    /// to the format's default merge gap.
    #[must_use]
    pub fn new(r: R, format: F, mut config: IngestConfig) -> TraceReader<R, F> {
        if config.merge_gap == 0.0 {
            config.merge_gap = format.default_merge_gap();
        }
        TraceReader {
            lines: r.lines(),
            policy: config.policy,
            norm: Normalizer::new(config),
            nodes: config.nodes,
            span: config.span,
            format,
            line_no: 0,
            bytes: 0,
            done: false,
            error: None,
        }
    }

    /// The error that terminated the stream early, if any.
    #[must_use]
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Normalization counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        self.norm.stats()
    }

    /// Raw-id → dense-id mapping built so far.
    #[must_use]
    pub fn node_map(&self) -> &HashMap<u64, NodeId> {
        self.norm.id_map()
    }

    /// Bytes of input consumed so far (for throughput reporting).
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    fn fail(&mut self, e: TraceIoError) {
        self.error = Some(e);
        self.done = true;
    }
}

impl<R: BufRead, F: LineFormat> ContactSource for TraceReader<R, F> {
    fn node_count(&self) -> usize {
        self.nodes
    }

    fn span(&self) -> SimTime {
        self.span
    }

    fn next_contact(&mut self) -> Option<Contact> {
        loop {
            if let Some(c) = self.norm.pop_ready() {
                return Some(c);
            }
            if self.done {
                return None;
            }
            let Some(line) = self.lines.next() else {
                self.done = true;
                self.norm.finish();
                continue;
            };
            self.line_no += 1;
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    self.fail(TraceIoError::Io(e));
                    return None;
                }
            };
            // +1 for the newline the Lines iterator strips.
            self.bytes += line.len() as u64 + 1;
            let record = match self.format.parse_line(&line, self.line_no) {
                Ok(r) => r,
                Err(e) => {
                    if self.policy == RecordPolicy::Lenient {
                        self.norm.count_malformed();
                        continue;
                    }
                    self.fail(TraceIoError::Parse(e));
                    return None;
                }
            };
            let Some(record) = record else { continue };
            if let Err(e) = self.norm.push(record, self.line_no) {
                self.fail(TraceIoError::Parse(e));
                return None;
            }
        }
    }

    fn last_contact(&self) -> LastContact {
        LastContact::Unknown
    }
}
