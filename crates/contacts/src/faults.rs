//! Deterministic fault injection for contact-driven simulations.
//!
//! A [`FaultPlan`] derives every fault a simulation run will experience
//! from a [`FaultConfig`] and an [`RngFactory`], so that runs are fully
//! reproducible: the same seed, population, and config always yield the same
//! blocked contacts, downtime windows, departures, and transmission-loss
//! draws. Each fault kind draws from its own named stream, so enabling one
//! kind never perturbs another — and a plan whose probabilities are all zero
//! consumes no randomness at all, leaving fault-free runs bit-identical to
//! runs without a plan.
//!
//! A plan needs only the node count and span up front — never the contacts
//! themselves — so it works unchanged over streaming
//! [`ContactSource`](crate::ContactSource)s whose contact count is unknown
//! until the stream ends. Per-contact truncation flags are drawn lazily in
//! contact-index order, which makes them bit-identical to an eager pass over
//! a materialized trace regardless of query order.
//!
//! Fault kinds (all independent, all optional):
//!
//! * **Transmission loss** — each attempted data transfer fails i.i.d. with
//!   probability [`FaultConfig::transmission_loss`].
//! * **Contact truncation** — each contact is rendered useless for data
//!   transfer (but still observed by rate estimators, as a radio sighting
//!   would be) with probability [`FaultConfig::contact_failure`].
//! * **Transient downtime (churn)** — a fraction of nodes alternate between
//!   exponentially distributed up and down periods; contacts involving a
//!   down node are suppressed entirely.
//! * **Permanent departures** — a fraction of nodes leave at a fixed point
//!   in the trace and never return. This subsumes
//!   [`ContactTrace::with_departures`](crate::ContactTrace::with_departures)
//!   without rewriting the trace: the plan reports the departed set and
//!   models departure as a downtime window that never ends.
//! * **Estimator lag** — rate-estimator observations are delayed by a fixed
//!   lag, modelling stale control-plane state.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use omn_sim::{RngFactory, SimDuration, SimTime};

use crate::NodeId;

/// Transient node downtime (churn): nodes go down and come back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DowntimeConfig {
    /// Fraction of nodes (in `[0, 1]`) subject to churn.
    pub node_fraction: f64,
    /// Mean length of an up period (exponentially distributed).
    pub mean_uptime: SimDuration,
    /// Mean length of a down period (exponentially distributed).
    pub mean_downtime: SimDuration,
    /// A node exempt from churn (typically the data source).
    pub exempt: Option<NodeId>,
}

/// Permanent node departures: nodes leave partway through and never return.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepartureConfig {
    /// Fraction of eligible nodes (in `[0, 1]`) that depart. The count is
    /// `round(fraction * pool)` where the pool excludes [`Self::exempt`].
    pub fraction: f64,
    /// When the departure happens, as a fraction of the trace span in
    /// `[0, 1]` (e.g. `0.5` = halfway through).
    pub at_frac: f64,
    /// A node exempt from departure (typically the data source).
    pub exempt: Option<NodeId>,
}

/// Configuration for a [`FaultPlan`]. The default is fault-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability (in `[0, 1]`) that any single attempted data transfer
    /// fails.
    pub transmission_loss: f64,
    /// Probability (in `[0, 1]`) that a contact carries no data at all,
    /// while still being sighted by rate estimators.
    pub contact_failure: f64,
    /// Transient node downtime, or `None` for no churn.
    pub downtime: Option<DowntimeConfig>,
    /// Permanent departures, or `None` for none.
    pub departures: Option<DepartureConfig>,
    /// Delay before a contact observation reaches the rate estimators.
    pub estimator_lag: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            transmission_loss: 0.0,
            contact_failure: 0.0,
            downtime: None,
            departures: None,
            estimator_lag: SimDuration::ZERO,
        }
    }
}

/// A reproducible fault schedule for one run over one node population.
/// Built once with [`FaultPlan::build`]; queried by the simulator as the run
/// unfolds. Downtime and departures are materialized up front (they depend
/// only on the population and span); contact-truncation flags are drawn
/// lazily in contact-index order so the plan never needs the contact count.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    /// Cache of per-contact truncation flags, extended on demand in index
    /// order from `block_rng`.
    blocked: Vec<bool>,
    /// Stream for truncation draws; `Some` iff `contact_failure > 0`.
    block_rng: Option<StdRng>,
    /// Per-node sorted `[from, to)` downtime windows. Departures appear as a
    /// final window ending at `SimTime::from_secs(f64::MAX)`.
    down_windows: Vec<Vec<(SimTime, SimTime)>>,
    /// Nodes that permanently depart, sorted.
    departed: Vec<NodeId>,
    /// Stream for per-transfer loss draws. Untouched when
    /// `transmission_loss` is zero.
    tx_rng: StdRng,
}

/// Samples an exponential with the given mean (seconds) via inversion.
fn exp_secs(rng: &mut StdRng, mean: f64) -> f64 {
    // gen::<f64>() is in [0, 1), so 1 - u is in (0, 1] and ln is finite.
    -(1.0 - rng.gen::<f64>()).ln() * mean
}

fn assert_probability(value: f64, what: &str) {
    assert!(
        (0.0..=1.0).contains(&value),
        "FaultPlan: {what} must be in [0, 1], got {value}"
    );
}

impl FaultPlan {
    /// Builds a fault schedule for a population of `node_count` nodes over
    /// `span` from `config`.
    ///
    /// Draws from the factory streams `"fault-contacts"`,
    /// `"fault-downtime"` (indexed per node), `"fault-departures"`, and
    /// `"fault-transmissions"` — never from streams the simulator itself
    /// uses, so adding a plan cannot perturb protocol or workload
    /// randomness.
    ///
    /// # Panics
    ///
    /// Panics if any probability or fraction lies outside `[0, 1]`, or if a
    /// downtime config has a non-positive mean up/down period.
    #[must_use]
    pub fn build(
        config: FaultConfig,
        node_count: usize,
        span: SimTime,
        factory: &RngFactory,
    ) -> FaultPlan {
        assert_probability(config.transmission_loss, "transmission_loss");
        assert_probability(config.contact_failure, "contact_failure");
        let nodes = || (0..node_count as u32).map(NodeId);

        let block_rng = (config.contact_failure > 0.0).then(|| factory.stream("fault-contacts"));

        let mut down_windows: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); node_count];
        if let Some(dt) = config.downtime {
            assert_probability(dt.node_fraction, "downtime.node_fraction");
            assert!(
                dt.mean_uptime.as_secs() > 0.0 && dt.mean_downtime.as_secs() > 0.0,
                "FaultPlan: downtime mean up/down periods must be positive"
            );
            for node in nodes() {
                if Some(node) == dt.exempt {
                    continue;
                }
                let mut rng = factory.stream_indexed("fault-downtime", u64::from(node.0));
                if !rng.gen_bool(dt.node_fraction) {
                    continue;
                }
                let mut t = exp_secs(&mut rng, dt.mean_uptime.as_secs());
                while t < span.as_secs() {
                    let down = exp_secs(&mut rng, dt.mean_downtime.as_secs());
                    down_windows[node.index()]
                        .push((SimTime::from_secs(t), SimTime::from_secs(t + down)));
                    t += down + exp_secs(&mut rng, dt.mean_uptime.as_secs());
                }
            }
        }

        let mut departed: Vec<NodeId> = Vec::new();
        if let Some(dep) = config.departures {
            assert_probability(dep.fraction, "departures.fraction");
            assert_probability(dep.at_frac, "departures.at_frac");
            let mut pool: Vec<NodeId> = nodes().filter(|&n| Some(n) != dep.exempt).collect();
            let mut rng = factory.stream("fault-departures");
            pool.shuffle(&mut rng);
            // Round over the eligible pool, not floor over the raw node
            // count: a 10% sweep over 41 candidates should drop 4 nodes,
            // not silently compute against a base that includes the exempt
            // source.
            let count = (dep.fraction * pool.len() as f64).round() as usize;
            let at = SimTime::from_secs(span.as_secs() * dep.at_frac);
            departed = pool.into_iter().take(count).collect();
            departed.sort_unstable();
            for &n in &departed {
                down_windows[n.index()].push((at, SimTime::from_secs(f64::MAX)));
            }
        }
        for windows in &mut down_windows {
            windows.sort_unstable();
        }

        FaultPlan {
            config,
            blocked: Vec::new(),
            block_rng,
            down_windows,
            departed,
            tx_rng: factory.stream("fault-transmissions"),
        }
    }

    /// The configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when no fault in this plan can ever fire.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.config.transmission_loss == 0.0
            && self.config.contact_failure == 0.0
            && self.down_windows.iter().all(Vec::is_empty)
            && self.config.estimator_lag.is_zero()
    }

    /// Whether the `index`-th contact of the run is truncated (carries no
    /// data).
    ///
    /// Flags are drawn lazily from the `"fault-contacts"` stream in index
    /// order and cached, so any query order yields the same flags an eager
    /// pass over a materialized trace would.
    #[must_use]
    pub fn contact_blocked(&mut self, index: usize) -> bool {
        let Some(rng) = self.block_rng.as_mut() else {
            return false;
        };
        while self.blocked.len() <= index {
            self.blocked.push(rng.gen_bool(self.config.contact_failure));
        }
        self.blocked[index]
    }

    /// Whether `node` is down (churned out or departed) at instant `at`.
    #[must_use]
    pub fn node_down(&self, node: NodeId, at: SimTime) -> bool {
        self.down_windows
            .get(node.index())
            .is_some_and(|ws| ws.iter().any(|&(from, to)| from <= at && at < to))
    }

    /// The sorted `[from, to)` downtime windows of `node`. Departure shows
    /// up as a window ending at `SimTime::from_secs(f64::MAX)`.
    #[must_use]
    pub fn down_windows_of(&self, node: NodeId) -> &[(SimTime, SimTime)] {
        self.down_windows
            .get(node.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The nodes that permanently depart, sorted by id.
    #[must_use]
    pub fn departed(&self) -> &[NodeId] {
        &self.departed
    }

    /// All rejoin instants within `span`, sorted: one `(time, node)` entry
    /// per downtime window that ends before the end of the trace. Departed
    /// nodes never rejoin.
    #[must_use]
    pub fn rejoin_events(&self, span: SimTime) -> Vec<(SimTime, NodeId)> {
        let mut events: Vec<(SimTime, NodeId)> = Vec::new();
        for (i, windows) in self.down_windows.iter().enumerate() {
            for &(_, to) in windows {
                if to < span {
                    events.push((to, NodeId(i as u32)));
                }
            }
        }
        events.sort_unstable();
        events
    }

    /// The configured estimator observation lag.
    #[must_use]
    pub fn estimator_lag(&self) -> SimDuration {
        self.config.estimator_lag
    }

    /// Draws whether the next attempted data transfer fails. Consumes no
    /// randomness when the configured loss probability is zero, so inert
    /// plans stay bit-identical to no plan at all.
    pub fn transfer_fails(&mut self) -> bool {
        self.config.transmission_loss > 0.0 && self.tx_rng.gen_bool(self.config.transmission_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_pairwise, PairwiseConfig};
    use crate::ContactTrace;

    fn trace(seed: u64) -> ContactTrace {
        let config = PairwiseConfig::new(12, SimDuration::from_days(2.0));
        generate_pairwise(&config, &RngFactory::new(seed))
    }

    fn build_for(config: FaultConfig, t: &ContactTrace, factory: &RngFactory) -> FaultPlan {
        FaultPlan::build(config, t.node_count(), t.span(), factory)
    }

    #[test]
    fn default_config_is_inert() {
        let t = trace(1);
        let mut plan = build_for(FaultConfig::default(), &t, &RngFactory::new(1));
        assert!(plan.is_inert());
        assert!((0..t.len()).all(|i| !plan.contact_blocked(i)));
        assert!(plan.departed().is_empty());
        assert!((0..32).all(|_| !plan.transfer_fails()));
        for n in t.nodes() {
            assert!(!plan.node_down(n, SimTime::from_hours(10.0)));
        }
    }

    #[test]
    fn departure_count_rounds_over_the_eligible_pool() {
        let t = trace(2);
        let exempt = NodeId(0);
        // 12 nodes, 1 exempt → pool of 11; 30% of 11 = 3.3 → 3 departures,
        // where a floor over the full node count would give 3 as well but a
        // floor after excluding the source from a 41-node pool historically
        // drifted. Check the exact rounding contract instead.
        let config = FaultConfig {
            departures: Some(DepartureConfig {
                fraction: 0.3,
                at_frac: 0.5,
                exempt: Some(exempt),
            }),
            ..FaultConfig::default()
        };
        let plan = build_for(config, &t, &RngFactory::new(2));
        assert_eq!(plan.departed().len(), (0.3f64 * 11.0).round() as usize);
        assert!(!plan.departed().contains(&exempt));
        // Departed nodes are down from the departure instant to forever.
        let at = SimTime::from_secs(t.span().as_secs() * 0.5);
        for &n in plan.departed() {
            assert!(!plan.node_down(n, SimTime::ZERO));
            assert!(plan.node_down(n, at));
            assert!(plan.node_down(n, t.span()));
        }
        // And they never rejoin.
        assert!(plan
            .rejoin_events(t.span())
            .iter()
            .all(|&(_, n)| !plan.departed().contains(&n)));
    }

    #[test]
    fn downtime_windows_are_sorted_and_disjoint() {
        let t = trace(3);
        let config = FaultConfig {
            downtime: Some(DowntimeConfig {
                node_fraction: 1.0,
                mean_uptime: SimDuration::from_hours(6.0),
                mean_downtime: SimDuration::from_hours(3.0),
                exempt: Some(NodeId(0)),
            }),
            ..FaultConfig::default()
        };
        let plan = build_for(config, &t, &RngFactory::new(3));
        assert!(plan.down_windows_of(NodeId(0)).is_empty());
        let mut any = false;
        for n in t.nodes() {
            let ws = plan.down_windows_of(n);
            any |= !ws.is_empty();
            for w in ws {
                assert!(w.0 < w.1);
            }
            for pair in ws.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlapping windows for {n:?}");
            }
        }
        assert!(any, "full-fraction churn produced no downtime at all");
        // Every window that closes inside the trace is a rejoin event.
        let rejoins = plan.rejoin_events(t.span());
        assert!(rejoins.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn plans_are_reproducible() {
        let t = trace(4);
        let config = FaultConfig {
            transmission_loss: 0.35,
            contact_failure: 0.2,
            downtime: Some(DowntimeConfig {
                node_fraction: 0.5,
                mean_uptime: SimDuration::from_hours(8.0),
                mean_downtime: SimDuration::from_hours(2.0),
                exempt: None,
            }),
            departures: Some(DepartureConfig {
                fraction: 0.25,
                at_frac: 0.6,
                exempt: None,
            }),
            estimator_lag: SimDuration::from_mins(30.0),
        };
        let factory = RngFactory::new(4);
        let mut p1 = build_for(config, &t, &factory);
        let mut p2 = build_for(config, &t, &factory);
        assert_eq!(p1.departed(), p2.departed());
        for i in 0..t.len() {
            assert_eq!(p1.contact_blocked(i), p2.contact_blocked(i));
        }
        for n in t.nodes() {
            assert_eq!(p1.down_windows_of(n), p2.down_windows_of(n));
        }
        let a: Vec<bool> = (0..128).map(|_| p1.transfer_fails()).collect();
        let b: Vec<bool> = (0..128).map(|_| p2.transfer_fails()).collect();
        assert_eq!(a, b);
        assert!(
            a.iter().any(|&x| x),
            "35% loss drew no failures in 128 tries"
        );
        assert!(a.iter().any(|&x| !x), "35% loss failed every transfer");
    }

    #[test]
    fn lazy_blocked_flags_match_any_query_order() {
        let config = FaultConfig {
            contact_failure: 0.4,
            ..FaultConfig::default()
        };
        let factory = RngFactory::new(7);
        let mut forward = FaultPlan::build(config, 5, SimTime::from_hours(1.0), &factory);
        let mut scattered = FaultPlan::build(config, 5, SimTime::from_hours(1.0), &factory);
        let in_order: Vec<bool> = (0..64).map(|i| forward.contact_blocked(i)).collect();
        // Query far ahead first, then backfill: flags must not change.
        let ahead = scattered.contact_blocked(63);
        assert_eq!(ahead, in_order[63]);
        let backfill: Vec<bool> = (0..64).map(|i| scattered.contact_blocked(i)).collect();
        assert_eq!(backfill, in_order);
    }
}
