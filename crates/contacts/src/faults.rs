//! Deterministic fault injection for contact-driven simulations.
//!
//! A [`FaultPlan`] derives every fault a simulation run will experience
//! from a [`FaultConfig`] and an [`RngFactory`], so that runs are fully
//! reproducible: the same seed, population, and config always yield the same
//! blocked contacts, downtime windows, departures, and transmission-loss
//! draws. Each fault kind draws from its own named stream, so enabling one
//! kind never perturbs another — and a plan whose probabilities are all zero
//! consumes no randomness at all, leaving fault-free runs bit-identical to
//! runs without a plan.
//!
//! A plan needs only the node count and span up front — never the contacts
//! themselves — so it works unchanged over streaming
//! [`ContactSource`](crate::ContactSource)s whose contact count is unknown
//! until the stream ends. Per-contact truncation flags are drawn lazily in
//! contact-index order, which makes them bit-identical to an eager pass over
//! a materialized trace regardless of query order.
//!
//! Fault kinds (all independent, all optional):
//!
//! * **Transmission loss** — each attempted data transfer fails i.i.d. with
//!   probability [`FaultConfig::transmission_loss`].
//! * **Contact truncation** — each contact is rendered useless for data
//!   transfer (but still observed by rate estimators, as a radio sighting
//!   would be) with probability [`FaultConfig::contact_failure`].
//! * **Transient downtime (churn)** — a fraction of nodes alternate between
//!   exponentially distributed up and down periods; contacts involving a
//!   down node are suppressed entirely.
//! * **Permanent departures** — a fraction of nodes leave at a fixed point
//!   in the trace and never return. This subsumes
//!   [`ContactTrace::with_departures`](crate::ContactTrace::with_departures)
//!   without rewriting the trace: the plan reports the departed set and
//!   models departure as a downtime window that never ends.
//! * **Estimator lag** — rate-estimator observations are delayed by a fixed
//!   lag, modelling stale control-plane state.
//! * **Stale-version corruption** — an adversarial fault: a data transfer
//!   delivers a *stale* version in place of the real payload, one a naive
//!   receiver (no version check) would happily absorb. The protocol's
//!   version-monotonicity check must reject it; the invariant oracles
//!   verify that it does.
//! * **Crash with state loss** — like churn, but the node comes back with
//!   empty protocol state (hierarchy position, estimator rows, relay
//!   copies) and must re-attach from scratch. Rejoins from these windows
//!   carry [`Rejoin::state_loss`].
//! * **Correlated regional outages** — a whole region (contiguous block of
//!   node ids, matching the community generators' id-block layout) goes
//!   down together for a window, modelling a powered-down building or
//!   jammed area rather than independent per-node churn.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use omn_sim::{RngFactory, SimDuration, SimTime};

use crate::NodeId;

/// Transient node downtime (churn): nodes go down and come back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DowntimeConfig {
    /// Fraction of nodes (in `[0, 1]`) subject to churn.
    pub node_fraction: f64,
    /// Mean length of an up period (exponentially distributed).
    pub mean_uptime: SimDuration,
    /// Mean length of a down period (exponentially distributed).
    pub mean_downtime: SimDuration,
    /// A node exempt from churn (typically the data source).
    pub exempt: Option<NodeId>,
}

/// Permanent node departures: nodes leave partway through and never return.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepartureConfig {
    /// Fraction of eligible nodes (in `[0, 1]`) that depart. The count is
    /// `round(fraction * pool)` where the pool excludes [`Self::exempt`].
    pub fraction: f64,
    /// When the departure happens, as a fraction of the trace span in
    /// `[0, 1]` (e.g. `0.5` = halfway through).
    pub at_frac: f64,
    /// A node exempt from departure (typically the data source).
    pub exempt: Option<NodeId>,
}

/// Correlated regional outages: a whole contiguous block of node ids goes
/// down together for a window.
///
/// Nodes are partitioned into [`regions`](RegionalOutageConfig::regions)
/// equal contiguous id blocks — the same layout the community generators
/// use — and each outage event takes one uniformly chosen region down for
/// an exponentially distributed window starting uniformly in the span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionalOutageConfig {
    /// Number of regions the population is partitioned into (≥ 1).
    pub regions: usize,
    /// Number of outage events drawn over the span.
    pub outages: u32,
    /// Mean outage duration (exponentially distributed).
    pub mean_duration: SimDuration,
}

/// Configuration for a [`FaultPlan`]. The default is fault-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability (in `[0, 1]`) that any single attempted data transfer
    /// fails.
    pub transmission_loss: f64,
    /// Probability (in `[0, 1]`) that a contact carries no data at all,
    /// while still being sighted by rate estimators.
    pub contact_failure: f64,
    /// Transient node downtime, or `None` for no churn.
    pub downtime: Option<DowntimeConfig>,
    /// Permanent departures, or `None` for none.
    pub departures: Option<DepartureConfig>,
    /// Delay before a contact observation reaches the rate estimators.
    pub estimator_lag: SimDuration,
    /// Probability (in `[0, 1]`) that a successful data transfer delivers
    /// a stale version in place of the real payload (adversarial replay).
    pub corruption: f64,
    /// Crash-with-state-loss windows, or `None`. Shares the
    /// [`DowntimeConfig`] shape with churn, but rejoins from these windows
    /// report [`Rejoin::state_loss`]: the node must rebuild its protocol
    /// state from scratch.
    pub crashes: Option<DowntimeConfig>,
    /// Correlated regional outages, or `None`.
    pub regional: Option<RegionalOutageConfig>,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            transmission_loss: 0.0,
            contact_failure: 0.0,
            downtime: None,
            departures: None,
            estimator_lag: SimDuration::ZERO,
            corruption: 0.0,
            crashes: None,
            regional: None,
        }
    }
}

/// One node returning to the network after a downtime, crash, or regional
/// outage window, precomputed by [`FaultPlan::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rejoin {
    /// When the node comes back.
    pub at: SimTime,
    /// The rejoining node.
    pub node: NodeId,
    /// Whether the window was a crash: the node lost all protocol state
    /// (hierarchy position, estimator rows, pending copies) and must
    /// re-attach from scratch. Churn and regional-outage rejoins keep
    /// their state (`false`).
    pub state_loss: bool,
}

/// A reproducible fault schedule for one run over one node population.
/// Built once with [`FaultPlan::build`]; queried by the simulator as the run
/// unfolds. Downtime and departures are materialized up front (they depend
/// only on the population and span); contact-truncation flags are drawn
/// lazily in contact-index order so the plan never needs the contact count.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    /// Cache of per-contact truncation flags, extended on demand in index
    /// order from `block_rng`.
    blocked: Vec<bool>,
    /// Stream for truncation draws; `Some` iff `contact_failure > 0`.
    block_rng: Option<StdRng>,
    /// Per-node sorted `[from, to)` downtime windows. Departures appear as a
    /// final window ending at `SimTime::from_secs(f64::MAX)`. Crash and
    /// regional-outage windows are kept separately (`crash_windows`,
    /// `regional_windows`).
    down_windows: Vec<Vec<(SimTime, SimTime)>>,
    /// Per-node sorted `[from, to)` crash windows (state lost on rejoin).
    crash_windows: Vec<Vec<(SimTime, SimTime)>>,
    /// Sorted `[from, to)` windows during which a whole region is down,
    /// with the region index.
    regional_windows: Vec<(SimTime, SimTime, usize)>,
    /// Number of regions the population is partitioned into (0 = no
    /// regional faults configured).
    regions: usize,
    /// Nodes that permanently depart, sorted.
    departed: Vec<NodeId>,
    /// Every rejoin within the build span, sorted, precomputed once at
    /// build time from all three window kinds.
    rejoins: Vec<Rejoin>,
    /// Stream for per-transfer loss draws. Untouched when
    /// `transmission_loss` is zero.
    tx_rng: StdRng,
    /// Stream for per-transfer corruption draws. Untouched when
    /// `corruption` is zero.
    corrupt_rng: StdRng,
}

/// Samples an exponential with the given mean (seconds) via inversion.
fn exp_secs(rng: &mut StdRng, mean: f64) -> f64 {
    // gen::<f64>() is in [0, 1), so 1 - u is in (0, 1] and ln is finite.
    -(1.0 - rng.gen::<f64>()).ln() * mean
}

fn assert_probability(value: f64, what: &str) {
    assert!(
        (0.0..=1.0).contains(&value),
        "FaultPlan: {what} must be in [0, 1], got {value}"
    );
}

/// The region a node belongs to: `regions` equal contiguous id blocks
/// (the community generators' layout). Returns 0 when no regional faults
/// are configured (`regions == 0`).
fn region_of(node: NodeId, node_count: usize, regions: usize) -> usize {
    if regions == 0 || node_count == 0 {
        return 0;
    }
    (node.index() * regions / node_count).min(regions - 1)
}

impl FaultPlan {
    /// Builds a fault schedule for a population of `node_count` nodes over
    /// `span` from `config`.
    ///
    /// Draws from the factory streams `"fault-contacts"`,
    /// `"fault-downtime"` (indexed per node), `"fault-departures"`,
    /// `"fault-transmissions"`, `"fault-crashes"` (indexed per node),
    /// `"fault-regional"`, and `"fault-corruption"` — never from streams
    /// the simulator itself uses, so adding a plan cannot perturb protocol
    /// or workload randomness. Every fault kind only draws when its
    /// intensity is nonzero, so e.g. enabling corruption never shifts the
    /// downtime schedule.
    ///
    /// # Panics
    ///
    /// Panics if any probability or fraction lies outside `[0, 1]`, if a
    /// downtime/crash config has a non-positive mean up/down period, or if
    /// a regional config has zero regions or a non-positive mean duration.
    #[must_use]
    pub fn build(
        config: FaultConfig,
        node_count: usize,
        span: SimTime,
        factory: &RngFactory,
    ) -> FaultPlan {
        assert_probability(config.transmission_loss, "transmission_loss");
        assert_probability(config.contact_failure, "contact_failure");
        assert_probability(config.corruption, "corruption");
        let nodes = || (0..node_count as u32).map(NodeId);

        let block_rng = (config.contact_failure > 0.0).then(|| factory.stream("fault-contacts"));

        // Churn and crash windows share one generator, differing only in
        // the named stream and the config they read.
        let windows_from = |dt: DowntimeConfig, stream: &str, what: &str| {
            assert_probability(dt.node_fraction, &format!("{what}.node_fraction"));
            assert!(
                dt.mean_uptime.as_secs() > 0.0 && dt.mean_downtime.as_secs() > 0.0,
                "FaultPlan: {what} mean up/down periods must be positive"
            );
            let mut windows: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); node_count];
            for node in nodes() {
                if Some(node) == dt.exempt {
                    continue;
                }
                let mut rng = factory.stream_indexed(stream, u64::from(node.0));
                if !rng.gen_bool(dt.node_fraction) {
                    continue;
                }
                let mut t = exp_secs(&mut rng, dt.mean_uptime.as_secs());
                while t < span.as_secs() {
                    let down = exp_secs(&mut rng, dt.mean_downtime.as_secs());
                    windows[node.index()]
                        .push((SimTime::from_secs(t), SimTime::from_secs(t + down)));
                    t += down + exp_secs(&mut rng, dt.mean_uptime.as_secs());
                }
            }
            windows
        };

        let mut down_windows = match config.downtime {
            Some(dt) => windows_from(dt, "fault-downtime", "downtime"),
            None => vec![Vec::new(); node_count],
        };
        let crash_windows = match config.crashes {
            Some(dt) => windows_from(dt, "fault-crashes", "crashes"),
            None => vec![Vec::new(); node_count],
        };

        let mut regional_windows: Vec<(SimTime, SimTime, usize)> = Vec::new();
        let mut regions = 0;
        if let Some(reg) = config.regional {
            assert!(
                reg.regions > 0,
                "FaultPlan: regional.regions must be positive"
            );
            assert!(
                reg.mean_duration.as_secs() > 0.0,
                "FaultPlan: regional.mean_duration must be positive"
            );
            regions = reg.regions;
            if reg.outages > 0 {
                let mut rng = factory.stream("fault-regional");
                for _ in 0..reg.outages {
                    let region = rng.gen_range(0..reg.regions);
                    let from = rng.gen::<f64>() * span.as_secs();
                    let len = exp_secs(&mut rng, reg.mean_duration.as_secs());
                    regional_windows.push((
                        SimTime::from_secs(from),
                        SimTime::from_secs(from + len),
                        region,
                    ));
                }
                regional_windows.sort_unstable();
            }
        }

        let mut departed: Vec<NodeId> = Vec::new();
        if let Some(dep) = config.departures {
            assert_probability(dep.fraction, "departures.fraction");
            assert_probability(dep.at_frac, "departures.at_frac");
            let mut pool: Vec<NodeId> = nodes().filter(|&n| Some(n) != dep.exempt).collect();
            let mut rng = factory.stream("fault-departures");
            pool.shuffle(&mut rng);
            // Round over the eligible pool, not floor over the raw node
            // count: a 10% sweep over 41 candidates should drop 4 nodes,
            // not silently compute against a base that includes the exempt
            // source.
            let count = (dep.fraction * pool.len() as f64).round() as usize;
            let at = SimTime::from_secs(span.as_secs() * dep.at_frac);
            departed = pool.into_iter().take(count).collect();
            departed.sort_unstable();
            for &n in &departed {
                down_windows[n.index()].push((at, SimTime::from_secs(f64::MAX)));
            }
        }
        for windows in &mut down_windows {
            windows.sort_unstable();
        }

        // Precompute every rejoin inside the span once, so the hot path
        // hands out a slice instead of re-sorting a fresh Vec per query.
        let mut rejoins: Vec<Rejoin> = Vec::new();
        let mut collect = |windows: &[Vec<(SimTime, SimTime)>], state_loss: bool| {
            for (i, ws) in windows.iter().enumerate() {
                for &(_, to) in ws {
                    if to < span {
                        rejoins.push(Rejoin {
                            at: to,
                            node: NodeId(i as u32),
                            state_loss,
                        });
                    }
                }
            }
        };
        collect(&down_windows, false);
        collect(&crash_windows, true);
        for &(_, to, region) in &regional_windows {
            if to >= span {
                continue;
            }
            for node in nodes() {
                if region_of(node, node_count, regions) == region {
                    rejoins.push(Rejoin {
                        at: to,
                        node,
                        state_loss: false,
                    });
                }
            }
        }
        rejoins.sort_unstable();

        FaultPlan {
            config,
            blocked: Vec::new(),
            block_rng,
            down_windows,
            crash_windows,
            regional_windows,
            regions,
            departed,
            rejoins,
            tx_rng: factory.stream("fault-transmissions"),
            corrupt_rng: factory.stream("fault-corruption"),
        }
    }

    /// The configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when no fault in this plan can ever fire.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.config.transmission_loss == 0.0
            && self.config.contact_failure == 0.0
            && self.config.corruption == 0.0
            && self.down_windows.iter().all(Vec::is_empty)
            && self.crash_windows.iter().all(Vec::is_empty)
            && self.regional_windows.is_empty()
            && self.config.estimator_lag.is_zero()
    }

    /// Whether the `index`-th contact of the run is truncated (carries no
    /// data).
    ///
    /// Flags are drawn lazily from the `"fault-contacts"` stream in index
    /// order and cached, so any query order yields the same flags an eager
    /// pass over a materialized trace would.
    #[must_use]
    pub fn contact_blocked(&mut self, index: usize) -> bool {
        let Some(rng) = self.block_rng.as_mut() else {
            return false;
        };
        while self.blocked.len() <= index {
            self.blocked.push(rng.gen_bool(self.config.contact_failure));
        }
        self.blocked[index]
    }

    /// Whether `node` is down (churned out, departed, crashed, or inside a
    /// regional outage) at instant `at`.
    #[must_use]
    pub fn node_down(&self, node: NodeId, at: SimTime) -> bool {
        let inside = |ws: &[(SimTime, SimTime)]| ws.iter().any(|&(from, to)| from <= at && at < to);
        self.down_windows
            .get(node.index())
            .is_some_and(|ws| inside(ws))
            || self
                .crash_windows
                .get(node.index())
                .is_some_and(|ws| inside(ws))
            || self.region_down(node, at)
    }

    /// Whether `node`'s region is inside an outage window at `at`.
    fn region_down(&self, node: NodeId, at: SimTime) -> bool {
        if self.regional_windows.is_empty() {
            return false;
        }
        let region = region_of(node, self.down_windows.len(), self.regions);
        self.regional_windows
            .iter()
            .any(|&(from, to, r)| r == region && from <= at && at < to)
    }

    /// The sorted `[from, to)` downtime windows of `node`. Departure shows
    /// up as a window ending at `SimTime::from_secs(f64::MAX)`. Crash and
    /// regional-outage windows are reported separately
    /// ([`crash_windows_of`](FaultPlan::crash_windows_of),
    /// [`regional_windows`](FaultPlan::regional_windows)).
    #[must_use]
    pub fn down_windows_of(&self, node: NodeId) -> &[(SimTime, SimTime)] {
        self.down_windows
            .get(node.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The sorted `[from, to)` crash windows of `node` (state lost on
    /// rejoin).
    #[must_use]
    pub fn crash_windows_of(&self, node: NodeId) -> &[(SimTime, SimTime)] {
        self.crash_windows
            .get(node.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The sorted `[from, to)` regional outage windows with their region
    /// index.
    #[must_use]
    pub fn regional_windows(&self) -> &[(SimTime, SimTime, usize)] {
        &self.regional_windows
    }

    /// The nodes that permanently depart, sorted by id.
    #[must_use]
    pub fn departed(&self) -> &[NodeId] {
        &self.departed
    }

    /// All rejoins within the build span, sorted: one [`Rejoin`] per
    /// downtime, crash, or regional-outage window that ends before the end
    /// of the trace. Departed nodes never rejoin. Precomputed once at
    /// [`build`](FaultPlan::build) time, mirroring
    /// [`down_windows_of`](FaultPlan::down_windows_of) — queries are
    /// allocation-free.
    #[must_use]
    pub fn rejoin_events(&self) -> &[Rejoin] {
        &self.rejoins
    }

    /// The configured estimator observation lag.
    #[must_use]
    pub fn estimator_lag(&self) -> SimDuration {
        self.config.estimator_lag
    }

    /// Draws whether the next attempted data transfer fails. Consumes no
    /// randomness when the configured loss probability is zero, so inert
    /// plans stay bit-identical to no plan at all.
    pub fn transfer_fails(&mut self) -> bool {
        self.config.transmission_loss > 0.0 && self.tx_rng.gen_bool(self.config.transmission_loss)
    }

    /// Draws whether the next successful data transfer is corrupted into a
    /// stale-version replay. Consumes no randomness when the configured
    /// corruption probability is zero, so inert plans stay bit-identical
    /// to no plan at all.
    pub fn transfer_corrupts(&mut self) -> bool {
        self.config.corruption > 0.0 && self.corrupt_rng.gen_bool(self.config.corruption)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_pairwise, PairwiseConfig};
    use crate::ContactTrace;

    fn trace(seed: u64) -> ContactTrace {
        let config = PairwiseConfig::new(12, SimDuration::from_days(2.0));
        generate_pairwise(&config, &RngFactory::new(seed))
    }

    fn build_for(config: FaultConfig, t: &ContactTrace, factory: &RngFactory) -> FaultPlan {
        FaultPlan::build(config, t.node_count(), t.span(), factory)
    }

    #[test]
    fn default_config_is_inert() {
        let t = trace(1);
        let mut plan = build_for(FaultConfig::default(), &t, &RngFactory::new(1));
        assert!(plan.is_inert());
        assert!((0..t.len()).all(|i| !plan.contact_blocked(i)));
        assert!(plan.departed().is_empty());
        assert!((0..32).all(|_| !plan.transfer_fails()));
        for n in t.nodes() {
            assert!(!plan.node_down(n, SimTime::from_hours(10.0)));
        }
    }

    #[test]
    fn departure_count_rounds_over_the_eligible_pool() {
        let t = trace(2);
        let exempt = NodeId(0);
        // 12 nodes, 1 exempt → pool of 11; 30% of 11 = 3.3 → 3 departures,
        // where a floor over the full node count would give 3 as well but a
        // floor after excluding the source from a 41-node pool historically
        // drifted. Check the exact rounding contract instead.
        let config = FaultConfig {
            departures: Some(DepartureConfig {
                fraction: 0.3,
                at_frac: 0.5,
                exempt: Some(exempt),
            }),
            ..FaultConfig::default()
        };
        let plan = build_for(config, &t, &RngFactory::new(2));
        assert_eq!(plan.departed().len(), (0.3f64 * 11.0).round() as usize);
        assert!(!plan.departed().contains(&exempt));
        // Departed nodes are down from the departure instant to forever.
        let at = SimTime::from_secs(t.span().as_secs() * 0.5);
        for &n in plan.departed() {
            assert!(!plan.node_down(n, SimTime::ZERO));
            assert!(plan.node_down(n, at));
            assert!(plan.node_down(n, t.span()));
        }
        // And they never rejoin.
        assert!(plan
            .rejoin_events()
            .iter()
            .all(|r| !plan.departed().contains(&r.node)));
    }

    #[test]
    fn downtime_windows_are_sorted_and_disjoint() {
        let t = trace(3);
        let config = FaultConfig {
            downtime: Some(DowntimeConfig {
                node_fraction: 1.0,
                mean_uptime: SimDuration::from_hours(6.0),
                mean_downtime: SimDuration::from_hours(3.0),
                exempt: Some(NodeId(0)),
            }),
            ..FaultConfig::default()
        };
        let plan = build_for(config, &t, &RngFactory::new(3));
        assert!(plan.down_windows_of(NodeId(0)).is_empty());
        let mut any = false;
        for n in t.nodes() {
            let ws = plan.down_windows_of(n);
            any |= !ws.is_empty();
            for w in ws {
                assert!(w.0 < w.1);
            }
            for pair in ws.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlapping windows for {n:?}");
            }
        }
        assert!(any, "full-fraction churn produced no downtime at all");
        // Every window that closes inside the trace is a rejoin event,
        // sorted, and churn rejoins keep node state.
        let rejoins = plan.rejoin_events();
        assert!(rejoins.windows(2).all(|p| p[0] <= p[1]));
        assert!(rejoins.iter().all(|r| !r.state_loss));
        let windows_in_span: usize = t
            .nodes()
            .map(|n| {
                plan.down_windows_of(n)
                    .iter()
                    .filter(|w| w.1 < t.span())
                    .count()
            })
            .sum();
        assert_eq!(rejoins.len(), windows_in_span);
    }

    #[test]
    fn crash_windows_rejoin_with_state_loss() {
        let t = trace(9);
        let config = FaultConfig {
            crashes: Some(DowntimeConfig {
                node_fraction: 1.0,
                mean_uptime: SimDuration::from_hours(6.0),
                mean_downtime: SimDuration::from_hours(2.0),
                exempt: Some(NodeId(0)),
            }),
            ..FaultConfig::default()
        };
        let plan = build_for(config, &t, &RngFactory::new(9));
        assert!(!plan.is_inert());
        assert!(plan.crash_windows_of(NodeId(0)).is_empty());
        let rejoins = plan.rejoin_events();
        assert!(!rejoins.is_empty(), "full-fraction crashes never rejoined");
        assert!(rejoins.iter().all(|r| r.state_loss));
        // Crashed nodes are down inside their windows.
        let mut checked = false;
        for n in t.nodes() {
            if let Some(&(from, to)) = plan.crash_windows_of(n).first() {
                let mid = SimTime::from_secs((from.as_secs() + to.as_secs()) / 2.0);
                assert!(plan.node_down(n, mid));
                assert!(plan.down_windows_of(n).is_empty());
                checked = true;
            }
        }
        assert!(checked);
    }

    #[test]
    fn regional_outages_take_whole_regions_down_together() {
        let t = trace(10);
        let config = FaultConfig {
            regional: Some(RegionalOutageConfig {
                regions: 3,
                outages: 4,
                mean_duration: SimDuration::from_hours(4.0),
            }),
            ..FaultConfig::default()
        };
        let plan = build_for(config, &t, &RngFactory::new(10));
        assert!(!plan.is_inert());
        let windows = plan.regional_windows();
        assert_eq!(windows.len(), 4);
        assert!(windows.windows(2).all(|p| p[0] <= p[1]));
        // Every node of the affected region is down together; nodes of
        // other regions are untouched (no churn configured).
        let (from, to, region) = windows[0];
        let mid = SimTime::from_secs((from.as_secs() + to.as_secs().min(t.span().as_secs())) / 2.0);
        let nodes_per_region = 12 / 3;
        for n in t.nodes() {
            let expected = n.index() / nodes_per_region == region;
            assert_eq!(
                plan.node_down(n, mid),
                expected
                    || windows.iter().any(|&(f, t2, r)| {
                        r == n.index() / nodes_per_region && f <= mid && mid < t2
                    }),
                "node {n:?} region membership mismatch"
            );
        }
        // Outage ends inside the span rejoin every node of the region,
        // with state intact.
        for r in plan.rejoin_events() {
            assert!(!r.state_loss);
        }
    }

    #[test]
    fn corruption_draws_are_reproducible_and_lazy() {
        let factory = RngFactory::new(11);
        let config = FaultConfig {
            corruption: 0.4,
            ..FaultConfig::default()
        };
        let mut p1 = FaultPlan::build(config, 5, SimTime::from_hours(1.0), &factory);
        let mut p2 = FaultPlan::build(config, 5, SimTime::from_hours(1.0), &factory);
        let a: Vec<bool> = (0..128).map(|_| p1.transfer_corrupts()).collect();
        let b: Vec<bool> = (0..128).map(|_| p2.transfer_corrupts()).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "40% corruption never fired");
        assert!(a.iter().any(|&x| !x), "40% corruption always fired");
        // Zero-probability corruption draws nothing and stays inert.
        let mut inert = FaultPlan::build(
            FaultConfig::default(),
            5,
            SimTime::from_hours(1.0),
            &factory,
        );
        assert!(inert.is_inert());
        assert!((0..64).all(|_| !inert.transfer_corrupts()));
    }

    #[test]
    fn plans_are_reproducible() {
        let t = trace(4);
        let config = FaultConfig {
            transmission_loss: 0.35,
            contact_failure: 0.2,
            downtime: Some(DowntimeConfig {
                node_fraction: 0.5,
                mean_uptime: SimDuration::from_hours(8.0),
                mean_downtime: SimDuration::from_hours(2.0),
                exempt: None,
            }),
            departures: Some(DepartureConfig {
                fraction: 0.25,
                at_frac: 0.6,
                exempt: None,
            }),
            estimator_lag: SimDuration::from_mins(30.0),
            corruption: 0.15,
            crashes: Some(DowntimeConfig {
                node_fraction: 0.4,
                mean_uptime: SimDuration::from_hours(12.0),
                mean_downtime: SimDuration::from_hours(1.0),
                exempt: None,
            }),
            regional: Some(RegionalOutageConfig {
                regions: 3,
                outages: 2,
                mean_duration: SimDuration::from_hours(2.0),
            }),
        };
        let factory = RngFactory::new(4);
        let mut p1 = build_for(config, &t, &factory);
        let mut p2 = build_for(config, &t, &factory);
        assert_eq!(p1.departed(), p2.departed());
        for i in 0..t.len() {
            assert_eq!(p1.contact_blocked(i), p2.contact_blocked(i));
        }
        for n in t.nodes() {
            assert_eq!(p1.down_windows_of(n), p2.down_windows_of(n));
        }
        let a: Vec<bool> = (0..128).map(|_| p1.transfer_fails()).collect();
        let b: Vec<bool> = (0..128).map(|_| p2.transfer_fails()).collect();
        assert_eq!(a, b);
        assert!(
            a.iter().any(|&x| x),
            "35% loss drew no failures in 128 tries"
        );
        assert!(a.iter().any(|&x| !x), "35% loss failed every transfer");
    }

    #[test]
    fn lazy_blocked_flags_match_any_query_order() {
        let config = FaultConfig {
            contact_failure: 0.4,
            ..FaultConfig::default()
        };
        let factory = RngFactory::new(7);
        let mut forward = FaultPlan::build(config, 5, SimTime::from_hours(1.0), &factory);
        let mut scattered = FaultPlan::build(config, 5, SimTime::from_hours(1.0), &factory);
        let in_order: Vec<bool> = (0..64).map(|i| forward.contact_blocked(i)).collect();
        // Query far ahead first, then backfill: flags must not change.
        let ahead = scattered.contact_blocked(63);
        assert_eq!(ahead, in_order[63]);
        let backfill: Vec<bool> = (0..64).map(|i| scattered.contact_blocked(i)).collect();
        assert_eq!(backfill, in_order);
    }
}
