//! Aggregate trace characteristics.
//!
//! These are the quantities a trace-summary table reports (node count, span,
//! contact counts, inter-contact and contact-duration statistics) and the
//! quantities the analytical models consume (mean pairwise contact rate).

use std::collections::HashMap;

use omn_sim::stats::{EmpiricalCdf, Summary};
use omn_sim::SimTime;

use crate::contact::NodeId;
use crate::trace::ContactTrace;

/// Aggregate statistics of a contact trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Number of nodes.
    pub node_count: usize,
    /// Trace span.
    pub span: SimTime,
    /// Total number of contacts.
    pub total_contacts: usize,
    /// Number of node pairs that meet at least once.
    pub connected_pairs: usize,
    /// Mean contacts per node per day.
    pub contacts_per_node_per_day: f64,
    /// Summary of contact durations (seconds). `None` for empty traces.
    pub contact_duration: Option<Summary>,
    /// Summary of same-pair inter-contact times (seconds, start-to-start).
    /// `None` when no pair meets twice.
    pub inter_contact: Option<Summary>,
    /// Mean pairwise contact rate λ̄ (contacts per second per pair),
    /// averaged over all unordered pairs including those that never meet.
    pub mean_pairwise_rate: f64,
    /// Per-node number of distinct peers met.
    pub degrees: Vec<usize>,
}

impl TraceStats {
    /// Computes statistics over a full trace.
    #[must_use]
    pub fn compute(trace: &ContactTrace) -> TraceStats {
        let n = trace.node_count();
        let span_secs = trace.span().as_secs();

        let mut durations = Vec::with_capacity(trace.len());
        let mut per_pair_starts: HashMap<(NodeId, NodeId), Vec<f64>> = HashMap::new();
        let mut peers: Vec<std::collections::HashSet<NodeId>> =
            vec![std::collections::HashSet::new(); n];

        for c in trace.contacts() {
            durations.push(c.duration().as_secs());
            per_pair_starts
                .entry(c.pair())
                .or_default()
                .push(c.start().as_secs());
            peers[c.a().index()].insert(c.b());
            peers[c.b().index()].insert(c.a());
        }

        let mut inter_contact_samples = Vec::new();
        for starts in per_pair_starts.values() {
            // Builder sorted contacts by start, so per-pair starts are sorted.
            for w in starts.windows(2) {
                inter_contact_samples.push(w[1] - w[0]);
            }
        }

        let pair_count = n * n.saturating_sub(1) / 2;
        let mean_pairwise_rate = if pair_count == 0 || span_secs == 0.0 {
            0.0
        } else {
            trace.len() as f64 / (pair_count as f64 * span_secs)
        };

        let contacts_per_node_per_day = if n == 0 || span_secs == 0.0 {
            0.0
        } else {
            // Each contact involves two nodes.
            2.0 * trace.len() as f64 / n as f64 / (span_secs / 86_400.0)
        };

        TraceStats {
            node_count: n,
            span: trace.span(),
            total_contacts: trace.len(),
            connected_pairs: per_pair_starts.len(),
            contacts_per_node_per_day,
            contact_duration: (!durations.is_empty()).then(|| Summary::from_samples(&durations)),
            inter_contact: (!inter_contact_samples.is_empty())
                .then(|| Summary::from_samples(&inter_contact_samples)),
            mean_pairwise_rate,
            degrees: peers.iter().map(std::collections::HashSet::len).collect(),
        }
    }

    /// Empirical CDF of same-pair inter-contact times, or `None` when no
    /// pair meets twice.
    #[must_use]
    pub fn inter_contact_cdf(trace: &ContactTrace) -> Option<EmpiricalCdf> {
        let mut per_pair_starts: HashMap<(NodeId, NodeId), Vec<f64>> = HashMap::new();
        for c in trace.contacts() {
            per_pair_starts
                .entry(c.pair())
                .or_default()
                .push(c.start().as_secs());
        }
        let samples: Vec<f64> = per_pair_starts
            .values()
            .flat_map(|starts| starts.windows(2).map(|w| w[1] - w[0]).collect::<Vec<_>>())
            .collect();
        (!samples.is_empty()).then(|| EmpiricalCdf::from_samples(samples))
    }

    /// Mean node degree (distinct peers met).
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        if self.degrees.is_empty() {
            0.0
        } else {
            self.degrees.iter().sum::<usize>() as f64 / self.degrees.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;
    use crate::trace::TraceBuilder;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn c(a: u32, b: u32, s: f64, e: f64) -> Contact {
        Contact::new(NodeId(a), NodeId(b), t(s), t(e)).unwrap()
    }

    fn sample() -> ContactTrace {
        TraceBuilder::new(3)
            .span(t(86_400.0))
            .contact(c(0, 1, 0.0, 10.0))
            .contact(c(0, 1, 100.0, 110.0))
            .contact(c(0, 2, 50.0, 60.0))
            .build()
            .unwrap()
    }

    #[test]
    fn basic_counts() {
        let s = TraceStats::compute(&sample());
        assert_eq!(s.node_count, 3);
        assert_eq!(s.total_contacts, 3);
        assert_eq!(s.connected_pairs, 2);
        assert_eq!(s.degrees, vec![2, 1, 1]);
        assert!((s.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn durations_and_inter_contacts() {
        let s = TraceStats::compute(&sample());
        let dur = s.contact_duration.unwrap();
        assert!((dur.mean - 10.0).abs() < 1e-9);
        let ict = s.inter_contact.unwrap();
        assert_eq!(ict.n, 1);
        assert!((ict.mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rates() {
        let s = TraceStats::compute(&sample());
        // 3 contacts / (3 pairs * 86400 s)
        assert!((s.mean_pairwise_rate - 3.0 / (3.0 * 86_400.0)).abs() < 1e-15);
        // 2*3 node-contacts / 3 nodes / 1 day
        assert!((s.contacts_per_node_per_day - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let trace = TraceBuilder::new(2).span(t(100.0)).build().unwrap();
        let s = TraceStats::compute(&trace);
        assert_eq!(s.total_contacts, 0);
        assert!(s.contact_duration.is_none());
        assert!(s.inter_contact.is_none());
        assert!(TraceStats::inter_contact_cdf(&trace).is_none());
    }

    #[test]
    fn inter_contact_cdf_present() {
        let cdf = TraceStats::inter_contact_cdf(&sample()).unwrap();
        assert_eq!(cdf.len(), 1);
        assert_eq!(cdf.eval(100.0), 1.0);
    }
}
