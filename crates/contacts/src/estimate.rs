//! Online pairwise contact-rate estimation.
//!
//! Protocol nodes do not know the true contact rates; they estimate `λij`
//! from the contacts they observe. Three estimators are provided:
//!
//! * [`CumulativeMle`] — the maximum-likelihood estimate over the whole
//!   observation window, `λ̂ = contacts / elapsed`. Converges to the true
//!   rate for stationary processes; slow to adapt.
//! * [`EwmaRate`] — exponentially weighted moving average over observed
//!   inter-contact times; adapts to non-stationary mobility.
//! * [`SlidingWindowRate`] — contacts within a fixed recent window.
//!
//! [`PairRateTable`] maintains one estimator per node pair, which is the
//! state each node carries in the distributed protocols.

use std::collections::HashMap;
use std::collections::VecDeque;

use omn_sim::{SimDuration, SimTime};

use crate::contact::NodeId;

/// An online estimator of a pairwise contact rate.
pub trait RateEstimator: std::fmt::Debug {
    /// Records that a contact began at `t`.
    ///
    /// Contacts must be reported in non-decreasing time order.
    fn record_contact(&mut self, t: SimTime);

    /// The current rate estimate (contacts per second) as of `now`.
    /// Returns 0 before any contact has been observed.
    fn rate(&self, now: SimTime) -> f64;

    /// Number of contacts observed so far.
    fn count(&self) -> u64;
}

/// Maximum-likelihood rate over the full observation window:
/// `λ̂ = n / (now − start)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CumulativeMle {
    start: SimTime,
    count: u64,
}

impl CumulativeMle {
    /// Creates an estimator whose observation window starts at `start`.
    #[must_use]
    pub fn new(start: SimTime) -> CumulativeMle {
        CumulativeMle { start, count: 0 }
    }
}

impl RateEstimator for CumulativeMle {
    fn record_contact(&mut self, _t: SimTime) {
        self.count += 1;
    }

    fn rate(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.start).as_secs();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.count as f64 / elapsed
        }
    }

    fn count(&self) -> u64 {
        self.count
    }
}

/// EWMA over observed inter-contact times.
///
/// After each contact the smoothed inter-contact time is updated as
/// `ict ← α·sample + (1−α)·ict`; the rate estimate is `1/ict`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaRate {
    alpha: f64,
    last_contact: Option<SimTime>,
    smoothed_ict: Option<f64>,
    count: u64,
}

impl EwmaRate {
    /// Creates an EWMA estimator with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> EwmaRate {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EwmaRate::new: alpha must be in (0, 1], got {alpha}"
        );
        EwmaRate {
            alpha,
            last_contact: None,
            smoothed_ict: None,
            count: 0,
        }
    }
}

impl RateEstimator for EwmaRate {
    fn record_contact(&mut self, t: SimTime) {
        if let Some(last) = self.last_contact {
            let ict = t.saturating_since(last).as_secs();
            if ict > 0.0 {
                self.smoothed_ict = Some(match self.smoothed_ict {
                    None => ict,
                    Some(prev) => self.alpha * ict + (1.0 - self.alpha) * prev,
                });
            }
        }
        self.last_contact = Some(t);
        self.count += 1;
    }

    fn rate(&self, _now: SimTime) -> f64 {
        match self.smoothed_ict {
            Some(ict) if ict > 0.0 => 1.0 / ict,
            _ => 0.0,
        }
    }

    fn count(&self) -> u64 {
        self.count
    }
}

/// Rate over a sliding window of recent history.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindowRate {
    window: SimDuration,
    times: VecDeque<SimTime>,
    total: u64,
}

impl SlidingWindowRate {
    /// Creates an estimator over the trailing `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: SimDuration) -> SlidingWindowRate {
        assert!(!window.is_zero(), "SlidingWindowRate: zero window");
        SlidingWindowRate {
            window,
            times: VecDeque::new(),
            total: 0,
        }
    }
}

impl RateEstimator for SlidingWindowRate {
    fn record_contact(&mut self, t: SimTime) {
        self.times.push_back(t);
        self.total += 1;
    }

    fn rate(&self, now: SimTime) -> f64 {
        let cutoff_secs = (now.as_secs() - self.window.as_secs()).max(0.0);
        let in_window = self
            .times
            .iter()
            .filter(|t| t.as_secs() >= cutoff_secs)
            .count();
        let effective_window = now.as_secs().min(self.window.as_secs());
        if effective_window <= 0.0 {
            0.0
        } else {
            in_window as f64 / effective_window
        }
    }

    fn count(&self) -> u64 {
        self.total
    }
}

/// Which estimator a [`PairRateTable`] uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// [`CumulativeMle`].
    Cumulative,
    /// [`EwmaRate`] with the given alpha.
    Ewma(f64),
    /// [`SlidingWindowRate`] with the given window.
    Window(SimDuration),
}

#[derive(Debug, Clone, PartialEq)]
enum AnyEstimator {
    Cumulative(CumulativeMle),
    Ewma(EwmaRate),
    Window(SlidingWindowRate),
}

impl AnyEstimator {
    fn new(kind: EstimatorKind, start: SimTime) -> AnyEstimator {
        match kind {
            EstimatorKind::Cumulative => AnyEstimator::Cumulative(CumulativeMle::new(start)),
            EstimatorKind::Ewma(alpha) => AnyEstimator::Ewma(EwmaRate::new(alpha)),
            EstimatorKind::Window(w) => AnyEstimator::Window(SlidingWindowRate::new(w)),
        }
    }

    fn record(&mut self, t: SimTime) {
        match self {
            AnyEstimator::Cumulative(e) => e.record_contact(t),
            AnyEstimator::Ewma(e) => e.record_contact(t),
            AnyEstimator::Window(e) => e.record_contact(t),
        }
    }

    fn rate(&self, now: SimTime) -> f64 {
        match self {
            AnyEstimator::Cumulative(e) => e.rate(now),
            AnyEstimator::Ewma(e) => e.rate(now),
            AnyEstimator::Window(e) => e.rate(now),
        }
    }
}

/// A table of per-pair rate estimates, as maintained by each protocol node
/// (or globally by the simulator on behalf of all nodes).
///
/// # Example
///
/// ```
/// use omn_contacts::estimate::{EstimatorKind, PairRateTable};
/// use omn_contacts::NodeId;
/// use omn_sim::SimTime;
///
/// let mut table = PairRateTable::new(EstimatorKind::Cumulative, SimTime::ZERO);
/// table.record_contact(NodeId(0), NodeId(1), SimTime::from_secs(10.0));
/// table.record_contact(NodeId(0), NodeId(1), SimTime::from_secs(30.0));
/// let rate = table.rate(NodeId(1), NodeId(0), SimTime::from_secs(100.0));
/// assert!((rate - 0.02).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PairRateTable {
    kind: EstimatorKind,
    start: SimTime,
    pairs: HashMap<(NodeId, NodeId), AnyEstimator>,
}

impl PairRateTable {
    /// Creates an empty table; new pairs get estimators of `kind` whose
    /// observation windows start at `start`.
    #[must_use]
    pub fn new(kind: EstimatorKind, start: SimTime) -> PairRateTable {
        PairRateTable {
            kind,
            start,
            pairs: HashMap::new(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Records a contact between `a` and `b` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn record_contact(&mut self, a: NodeId, b: NodeId, t: SimTime) {
        assert!(a != b, "PairRateTable::record_contact: self contact");
        let kind = self.kind;
        let start = self.start;
        self.pairs
            .entry(PairRateTable::key(a, b))
            .or_insert_with(|| AnyEstimator::new(kind, start))
            .record(t);
    }

    /// The estimated rate between `a` and `b` as of `now` (0 if never met).
    #[must_use]
    pub fn rate(&self, a: NodeId, b: NodeId, now: SimTime) -> f64 {
        self.pairs
            .get(&PairRateTable::key(a, b))
            .map_or(0.0, |e| e.rate(now))
    }

    /// Number of pairs with at least one observed contact.
    #[must_use]
    pub fn observed_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Feeds every contact start of a materialized trace into the table,
    /// in trace order.
    ///
    /// This is how offline calibration replays an ingested dataset through
    /// the same estimator the protocol nodes run online.
    pub fn observe_trace(&mut self, trace: &crate::ContactTrace) {
        for c in trace.contacts() {
            self.record_contact(c.a(), c.b(), c.start());
        }
    }

    /// Exports the table into a [`crate::ContactGraph`] snapshot as of
    /// `now`, for use by centralized planners.
    #[must_use]
    pub fn to_graph(&self, node_count: usize, now: SimTime) -> crate::ContactGraph {
        let mut g = crate::ContactGraph::new(node_count);
        for (&(a, b), est) in &self.pairs {
            if a.index() < node_count && b.index() < node_count {
                g.set_rate(a, b, est.rate(now));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn cumulative_mle_converges() {
        let mut e = CumulativeMle::new(SimTime::ZERO);
        assert_eq!(e.rate(t(0.0)), 0.0);
        for i in 1..=10 {
            e.record_contact(t(f64::from(i) * 10.0));
        }
        // 10 contacts in 100s
        assert!((e.rate(t(100.0)) - 0.1).abs() < 1e-12);
        assert_eq!(e.count(), 10);
    }

    #[test]
    fn ewma_tracks_recent_rates() {
        let mut e = EwmaRate::new(0.5);
        assert_eq!(e.rate(t(0.0)), 0.0);
        e.record_contact(t(0.0));
        assert_eq!(e.rate(t(1.0)), 0.0); // one contact: no ICT yet
        e.record_contact(t(10.0)); // ict 10
        assert!((e.rate(t(10.0)) - 0.1).abs() < 1e-12);
        e.record_contact(t(12.0)); // ict 2 -> smoothed 0.5*2+0.5*10 = 6
        assert!((e.rate(t(12.0)) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmaRate::new(0.0);
    }

    #[test]
    fn sliding_window_forgets_old_contacts() {
        let mut e = SlidingWindowRate::new(SimDuration::from_secs(100.0));
        e.record_contact(t(10.0));
        e.record_contact(t(20.0));
        // At t=50, both in window of effective length 50.
        assert!((e.rate(t(50.0)) - 2.0 / 50.0).abs() < 1e-12);
        // At t=111, the contact at t=10 has left the window [11, 111].
        assert!((e.rate(t(111.0)) - 1.0 / 100.0).abs() < 1e-12);
        // At t=300, window [200, 300] is empty.
        assert_eq!(e.rate(t(300.0)), 0.0);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn table_is_symmetric() {
        let mut table = PairRateTable::new(EstimatorKind::Cumulative, SimTime::ZERO);
        table.record_contact(NodeId(3), NodeId(1), t(10.0));
        assert_eq!(
            table.rate(NodeId(1), NodeId(3), t(100.0)),
            table.rate(NodeId(3), NodeId(1), t(100.0))
        );
        assert_eq!(table.observed_pairs(), 1);
        assert_eq!(table.rate(NodeId(0), NodeId(1), t(100.0)), 0.0);
    }

    #[test]
    fn table_exports_graph() {
        let mut table = PairRateTable::new(EstimatorKind::Cumulative, SimTime::ZERO);
        table.record_contact(NodeId(0), NodeId(1), t(10.0));
        table.record_contact(NodeId(0), NodeId(1), t(20.0));
        let g = table.to_graph(3, t(100.0));
        assert!((g.rate(NodeId(0), NodeId(1)) - 0.02).abs() < 1e-12);
        assert_eq!(g.rate(NodeId(1), NodeId(2)), 0.0);
    }

    #[test]
    fn observe_trace_matches_manual_feed() {
        use crate::contact::Contact;
        use crate::trace::TraceBuilder;

        let trace = TraceBuilder::new(3)
            .span(t(100.0))
            .contact(Contact::new(NodeId(0), NodeId(1), t(10.0), t(12.0)).unwrap())
            .contact(Contact::new(NodeId(1), NodeId(2), t(20.0), t(25.0)).unwrap())
            .contact(Contact::new(NodeId(0), NodeId(1), t(60.0), t(61.0)).unwrap())
            .build()
            .unwrap();
        let mut table = PairRateTable::new(EstimatorKind::Cumulative, SimTime::ZERO);
        table.observe_trace(&trace);
        assert_eq!(table.observed_pairs(), 2);
        assert!((table.rate(NodeId(0), NodeId(1), t(100.0)) - 0.02).abs() < 1e-12);
        assert!((table.rate(NodeId(1), NodeId(2), t(100.0)) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn table_with_ewma_kind() {
        let mut table = PairRateTable::new(EstimatorKind::Ewma(0.5), SimTime::ZERO);
        table.record_contact(NodeId(0), NodeId(1), t(0.0));
        table.record_contact(NodeId(0), NodeId(1), t(10.0));
        assert!((table.rate(NodeId(0), NodeId(1), t(10.0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn table_with_window_kind() {
        let mut table = PairRateTable::new(
            EstimatorKind::Window(SimDuration::from_secs(10.0)),
            SimTime::ZERO,
        );
        table.record_contact(NodeId(0), NodeId(1), t(1.0));
        assert!(table.rate(NodeId(0), NodeId(1), t(5.0)) > 0.0);
        assert_eq!(table.rate(NodeId(0), NodeId(1), t(50.0)), 0.0);
    }
}
