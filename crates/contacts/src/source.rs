//! Streaming contact sources.
//!
//! A [`ContactSource`] yields contacts one at a time in nondecreasing
//! `(start, end, pair)` order — the same total order a materialized
//! [`ContactTrace`](crate::ContactTrace) stores its contacts in. The
//! [`ContactDriver`](crate::ContactDriver) pulls from a source lazily and
//! schedules each contact as the engine runs, so only O(1) contacts are
//! resident at once regardless of how many the source will ever produce.
//!
//! Two classes of sources exist:
//!
//! * [`TraceSource`] — a cursor over a materialized trace. Everything is
//!   already in memory, so `last_contact` is [`LastContact::Known`] and
//!   `resident_hint` reports the full trace length.
//! * streaming generators (e.g.
//!   [`ShardedCommunitySource`](crate::synth::sharded::ShardedCommunitySource))
//!   and file readers ([`io::StreamingTraceSource`](crate::io)) — contacts are
//!   produced on demand; the time of the final contact is
//!   [`LastContact::Unknown`] until the stream is exhausted.

use omn_sim::SimTime;

use crate::contact::Contact;
use crate::trace::ContactTrace;

/// What a source knows up front about the start time of its final contact.
///
/// Consumers use the last contact start to gate timers (queries, expiries,
/// rejoins) to the portion of the span where contacts still happen. A
/// materialized trace knows this exactly; a streaming source generally does
/// not until it is exhausted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LastContact {
    /// The source knows its final contact start time up front.
    /// `Known(None)` means the source is empty: it will never yield a
    /// contact.
    Known(Option<SimTime>),
    /// The source cannot know until the stream is exhausted. Consumers
    /// should fall back to the span as a conservative bound.
    Unknown,
}

/// An ordered stream of contacts over a fixed node population and span.
///
/// # Contract
///
/// * `next_contact` yields contacts in nondecreasing `(start, end, pair)`
///   order — the [`TraceBuilder`](crate::TraceBuilder) sort key. The driver
///   debug-asserts this in debug builds.
/// * Every contact's endpoints are `< node_count()` and its interval lies
///   within `[0, span()]`.
/// * Once `next_contact` returns `None` it keeps returning `None`.
pub trait ContactSource {
    /// Number of nodes (ids are `0..node_count`).
    fn node_count(&self) -> usize;

    /// Total simulated span.
    fn span(&self) -> SimTime;

    /// Pulls the next contact, or `None` when the stream is exhausted.
    fn next_contact(&mut self) -> Option<Contact>;

    /// Start time of the final contact, if the source knows it up front.
    fn last_contact(&self) -> LastContact;

    /// Approximate number of contacts this source keeps resident in memory
    /// (buffered, pre-generated, or materialized). Used for peak-memory
    /// reporting; `0` for fully incremental sources.
    fn resident_hint(&self) -> usize {
        0
    }
}

/// A [`ContactSource`] cursor over a materialized [`ContactTrace`].
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    trace: &'a ContactTrace,
    next: usize,
}

impl<'a> TraceSource<'a> {
    /// Starts a cursor at the beginning of the trace.
    #[must_use]
    pub fn new(trace: &'a ContactTrace) -> TraceSource<'a> {
        TraceSource { trace, next: 0 }
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &'a ContactTrace {
        self.trace
    }
}

impl ContactSource for TraceSource<'_> {
    fn node_count(&self) -> usize {
        self.trace.node_count()
    }

    fn span(&self) -> SimTime {
        self.trace.span()
    }

    fn next_contact(&mut self) -> Option<Contact> {
        let c = self.trace.contacts().get(self.next).copied();
        if c.is_some() {
            self.next += 1;
        }
        c
    }

    fn last_contact(&self) -> LastContact {
        LastContact::Known(self.trace.contacts().last().map(Contact::start))
    }

    fn resident_hint(&self) -> usize {
        self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeId;
    use crate::trace::TraceBuilder;

    fn small_trace() -> ContactTrace {
        TraceBuilder::new(3)
            .span(SimTime::from_secs(100.0))
            .contact(
                Contact::new(
                    NodeId(0),
                    NodeId(1),
                    SimTime::from_secs(5.0),
                    SimTime::from_secs(9.0),
                )
                .unwrap(),
            )
            .contact(
                Contact::new(
                    NodeId(1),
                    NodeId(2),
                    SimTime::from_secs(2.0),
                    SimTime::from_secs(4.0),
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn trace_source_streams_in_trace_order() {
        let trace = small_trace();
        let mut src = TraceSource::new(&trace);
        assert_eq!(src.node_count(), 3);
        assert_eq!(src.span(), SimTime::from_secs(100.0));
        let streamed: Vec<Contact> = std::iter::from_fn(|| src.next_contact()).collect();
        assert_eq!(streamed, trace.contacts());
        assert_eq!(src.next_contact(), None, "stays exhausted");
    }

    #[test]
    fn trace_source_knows_its_last_contact() {
        let trace = small_trace();
        let src = TraceSource::new(&trace);
        assert_eq!(
            src.last_contact(),
            LastContact::Known(Some(SimTime::from_secs(5.0)))
        );
        assert_eq!(src.resident_hint(), 2);

        let empty = TraceBuilder::new(2)
            .span(SimTime::from_secs(10.0))
            .build()
            .unwrap();
        let src = TraceSource::new(&empty);
        assert_eq!(src.last_contact(), LastContact::Known(None));
    }
}
