//! Node identifiers and validated contact intervals.

use std::fmt;

use omn_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a mobile node.
///
/// Node ids are dense indices `0..node_count`, which lets per-node state be
/// stored in flat vectors throughout the workspace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> NodeId {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Error produced when constructing an invalid [`Contact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactError {
    /// The two endpoints are the same node.
    SelfContact,
    /// The interval is empty or inverted (`end <= start`).
    EmptyInterval,
}

impl fmt::Display for ContactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContactError::SelfContact => write!(f, "contact endpoints are the same node"),
            ContactError::EmptyInterval => write!(f, "contact interval is empty or inverted"),
        }
    }
}

impl std::error::Error for ContactError {}

/// A contact: an interval `[start, end)` during which nodes `a` and `b` are
/// within communication range.
///
/// Invariants, enforced on construction: `a < b` (endpoints are normalized,
/// contacts are undirected) and `start < end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contact {
    a: NodeId,
    b: NodeId,
    start: SimTime,
    end: SimTime,
}

impl Contact {
    /// Creates a contact, normalizing the endpoint order.
    ///
    /// # Errors
    ///
    /// Returns [`ContactError::SelfContact`] if `x == y` and
    /// [`ContactError::EmptyInterval`] if `end <= start`.
    pub fn new(
        x: NodeId,
        y: NodeId,
        start: SimTime,
        end: SimTime,
    ) -> Result<Contact, ContactError> {
        if x == y {
            return Err(ContactError::SelfContact);
        }
        if end <= start {
            return Err(ContactError::EmptyInterval);
        }
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        Ok(Contact { a, b, start, end })
    }

    /// The smaller endpoint.
    #[must_use]
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// The larger endpoint.
    #[must_use]
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// Both endpoints as `(a, b)` with `a < b`.
    #[must_use]
    pub fn pair(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Start of the contact interval.
    #[must_use]
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// End of the contact interval.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Length of the contact.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// True if the contact involves `node`.
    #[must_use]
    pub fn involves(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this contact.
    #[must_use]
    pub fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("Contact::peer_of: {node} is not an endpoint of {self:?}")
        }
    }

    /// True if the contact interval contains instant `t`.
    #[must_use]
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// True if this contact overlaps interval `[from, to)`.
    #[must_use]
    pub fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        self.start < to && from < self.end
    }

    /// Clips the contact to `[from, to)`, returning `None` if nothing
    /// remains.
    #[must_use]
    pub fn clip(&self, from: SimTime, to: SimTime) -> Option<Contact> {
        let start = self.start.max(from);
        let end = self.end.min(to);
        (start < end).then_some(Contact {
            a: self.a,
            b: self.b,
            start,
            end,
        })
    }
}

impl fmt::Display for Contact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{} [{}, {})", self.a, self.b, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn normalizes_endpoint_order() {
        let c = Contact::new(NodeId(5), NodeId(2), t(0.0), t(1.0)).unwrap();
        assert_eq!(c.pair(), (NodeId(2), NodeId(5)));
        assert_eq!(c.a(), NodeId(2));
        assert_eq!(c.b(), NodeId(5));
    }

    #[test]
    fn rejects_self_contact() {
        assert_eq!(
            Contact::new(NodeId(1), NodeId(1), t(0.0), t(1.0)),
            Err(ContactError::SelfContact)
        );
    }

    #[test]
    fn rejects_empty_interval() {
        assert_eq!(
            Contact::new(NodeId(1), NodeId(2), t(1.0), t(1.0)),
            Err(ContactError::EmptyInterval)
        );
        assert_eq!(
            Contact::new(NodeId(1), NodeId(2), t(2.0), t(1.0)),
            Err(ContactError::EmptyInterval)
        );
    }

    #[test]
    fn duration_and_membership() {
        let c = Contact::new(NodeId(0), NodeId(1), t(2.0), t(5.0)).unwrap();
        assert_eq!(c.duration(), SimDuration::from_secs(3.0));
        assert!(c.involves(NodeId(0)));
        assert!(!c.involves(NodeId(2)));
        assert_eq!(c.peer_of(NodeId(0)), NodeId(1));
        assert_eq!(c.peer_of(NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn peer_of_non_member_panics() {
        let c = Contact::new(NodeId(0), NodeId(1), t(0.0), t(1.0)).unwrap();
        let _ = c.peer_of(NodeId(9));
    }

    #[test]
    fn interval_predicates() {
        let c = Contact::new(NodeId(0), NodeId(1), t(2.0), t(5.0)).unwrap();
        assert!(c.contains(t(2.0)));
        assert!(c.contains(t(4.9)));
        assert!(!c.contains(t(5.0)));
        assert!(c.overlaps(t(0.0), t(3.0)));
        assert!(c.overlaps(t(4.0), t(9.0)));
        assert!(!c.overlaps(t(5.0), t(9.0)));
        assert!(!c.overlaps(t(0.0), t(2.0)));
    }

    #[test]
    fn clipping() {
        let c = Contact::new(NodeId(0), NodeId(1), t(2.0), t(5.0)).unwrap();
        let clipped = c.clip(t(3.0), t(4.0)).unwrap();
        assert_eq!(clipped.start(), t(3.0));
        assert_eq!(clipped.end(), t(4.0));
        assert_eq!(c.clip(t(5.0), t(9.0)), None);
        assert_eq!(c.clip(t(0.0), t(2.0)), None);
        // Clip fully containing the contact is identity.
        assert_eq!(c.clip(t(0.0), t(10.0)), Some(c));
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(NodeId::from(7u32), NodeId(7));
    }
}
