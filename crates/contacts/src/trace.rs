//! Contact-trace containers.

use std::fmt;

use omn_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::contact::{Contact, NodeId};

/// What a [`TimelineEvent`] marks: a link coming up or going down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimelineKind {
    /// Two nodes came into range.
    Up,
    /// Two nodes left range.
    Down,
}

/// A point event on the trace timeline: one endpoint of some contact
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// When the event occurs.
    pub time: SimTime,
    /// Up or down.
    pub kind: TimelineKind,
    /// Smaller endpoint of the pair.
    pub a: NodeId,
    /// Larger endpoint of the pair.
    pub b: NodeId,
}

/// An immutable, validated contact trace.
///
/// Invariants: contacts are sorted by `(start, end, a, b)`; every endpoint id
/// is `< node_count`; the trace span covers every contact.
///
/// Build one with [`TraceBuilder`], a synthetic generator from
/// [`crate::synth`], or [`crate::io::read_trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContactTrace {
    node_count: usize,
    span: SimTime,
    contacts: Vec<Contact>,
}

/// Error produced by [`TraceBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// A contact endpoint is `>= node_count`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The declared node count.
        node_count: usize,
    },
    /// A contact extends past the declared span.
    ContactPastSpan,
    /// The declared node count is zero.
    NoNodes,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NodeOutOfRange { node, node_count } => {
                write!(f, "contact endpoint {node} >= node count {node_count}")
            }
            TraceError::ContactPastSpan => write!(f, "contact extends past the trace span"),
            TraceError::NoNodes => write!(f, "trace must have at least one node"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Incremental builder for [`ContactTrace`].
///
/// # Example
///
/// ```
/// use omn_contacts::{Contact, NodeId, TraceBuilder};
/// use omn_sim::SimTime;
///
/// let trace = TraceBuilder::new(3)
///     .contact(Contact::new(NodeId(0), NodeId(1),
///         SimTime::from_secs(1.0), SimTime::from_secs(2.0))?)
///     .build()?;
/// assert_eq!(trace.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    node_count: usize,
    span: Option<SimTime>,
    contacts: Vec<Contact>,
}

impl TraceBuilder {
    /// Starts a builder for a trace over `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize) -> TraceBuilder {
        TraceBuilder {
            node_count,
            span: None,
            contacts: Vec::new(),
        }
    }

    /// Fixes the trace span explicitly. Without this the span is the end of
    /// the last contact.
    #[must_use]
    pub fn span(mut self, span: SimTime) -> TraceBuilder {
        self.span = Some(span);
        self
    }

    /// Adds one contact.
    #[must_use]
    pub fn contact(mut self, c: Contact) -> TraceBuilder {
        self.contacts.push(c);
        self
    }

    /// Adds many contacts.
    #[must_use]
    pub fn contacts<I: IntoIterator<Item = Contact>>(mut self, iter: I) -> TraceBuilder {
        self.contacts.extend(iter);
        self
    }

    /// Validates and builds the trace.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the node count is zero, an endpoint is out
    /// of range, or a contact extends past an explicitly set span.
    pub fn build(mut self) -> Result<ContactTrace, TraceError> {
        if self.node_count == 0 {
            return Err(TraceError::NoNodes);
        }
        let mut max_end = SimTime::ZERO;
        for c in &self.contacts {
            for node in [c.a(), c.b()] {
                if node.index() >= self.node_count {
                    return Err(TraceError::NodeOutOfRange {
                        node,
                        node_count: self.node_count,
                    });
                }
            }
            max_end = max_end.max(c.end());
        }
        let span = match self.span {
            Some(s) => {
                if max_end > s {
                    return Err(TraceError::ContactPastSpan);
                }
                s
            }
            None => max_end,
        };
        self.contacts
            .sort_by_key(|c| (c.start(), c.end(), c.pair()));
        Ok(ContactTrace {
            node_count: self.node_count,
            span,
            contacts: self.contacts,
        })
    }
}

impl ContactTrace {
    /// Number of nodes in the trace (ids are `0..node_count`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All node ids in the trace.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count as u32).map(NodeId)
    }

    /// Total simulated span of the trace.
    #[must_use]
    pub fn span(&self) -> SimTime {
        self.span
    }

    /// The contacts, sorted by start time.
    #[must_use]
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Number of contacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// True if there are no contacts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// All up/down timeline events, sorted by time with `Down` before `Up`
    /// at equal instants (a link that flaps at `t` is processed as
    /// down-then-up).
    #[must_use]
    pub fn timeline(&self) -> Vec<TimelineEvent> {
        let mut events = Vec::with_capacity(self.contacts.len() * 2);
        for c in &self.contacts {
            events.push(TimelineEvent {
                time: c.start(),
                kind: TimelineKind::Up,
                a: c.a(),
                b: c.b(),
            });
            events.push(TimelineEvent {
                time: c.end(),
                kind: TimelineKind::Down,
                a: c.a(),
                b: c.b(),
            });
        }
        events.sort_by(|x, y| {
            (x.time, matches!(x.kind, TimelineKind::Up), x.a, x.b).cmp(&(
                y.time,
                matches!(y.kind, TimelineKind::Up),
                y.a,
                y.b,
            ))
        });
        events
    }

    /// The sub-trace overlapping `[from, to)`, clipped to that window and
    /// shifted so the window start becomes time zero.
    #[must_use]
    pub fn window(&self, from: SimTime, to: SimTime) -> ContactTrace {
        let to = to.min(self.span);
        let shift = from;
        let contacts: Vec<Contact> = self
            .contacts
            .iter()
            .filter_map(|c| c.clip(from, to))
            .map(|c| {
                Contact::new(
                    c.a(),
                    c.b(),
                    SimTime::ZERO + c.start().saturating_since(shift),
                    SimTime::ZERO + c.end().saturating_since(shift),
                )
                .expect("clipped contact stays valid")
            })
            .collect();
        ContactTrace {
            node_count: self.node_count,
            span: SimTime::ZERO + to.saturating_since(from),
            contacts,
        }
    }

    /// Returns a copy with all times multiplied by `factor` (e.g. to
    /// compress a multi-month trace into a tractable simulation).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn scale_time(&self, factor: f64) -> ContactTrace {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale_time: factor must be positive and finite"
        );
        let contacts = self
            .contacts
            .iter()
            .map(|c| {
                Contact::new(
                    c.a(),
                    c.b(),
                    SimTime::from_secs(c.start().as_secs() * factor),
                    SimTime::from_secs(c.end().as_secs() * factor),
                )
                .expect("scaling preserves validity")
            })
            .collect();
        ContactTrace {
            node_count: self.node_count,
            span: SimTime::from_secs(self.span.as_secs() * factor),
            contacts,
        }
    }

    /// Returns a copy in which the given nodes *depart* at `after`: their
    /// contacts are clipped to end no later than `after` and contacts
    /// starting afterwards are dropped. Used for failure-injection
    /// experiments (node churn).
    ///
    /// The node count and span are unchanged — departed nodes simply stop
    /// meeting anyone.
    #[must_use]
    pub fn with_departures(&self, departed: &[NodeId], after: SimTime) -> ContactTrace {
        let is_departed = |n: NodeId| departed.contains(&n);
        let contacts: Vec<Contact> = self
            .contacts
            .iter()
            .filter_map(|c| {
                if is_departed(c.a()) || is_departed(c.b()) {
                    c.clip(SimTime::ZERO, after)
                } else {
                    Some(*c)
                }
            })
            .collect();
        ContactTrace {
            node_count: self.node_count,
            span: self.span,
            contacts,
        }
    }

    /// Contacts involving a particular node, in time order.
    pub fn contacts_of(&self, node: NodeId) -> impl Iterator<Item = &Contact> {
        self.contacts.iter().filter(move |c| c.involves(node))
    }

    /// Number of contacts between a specific pair.
    #[must_use]
    pub fn pair_contact_count(&self, x: NodeId, y: NodeId) -> usize {
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        self.contacts.iter().filter(|c| c.pair() == (a, b)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn c(a: u32, b: u32, s: f64, e: f64) -> Contact {
        Contact::new(NodeId(a), NodeId(b), t(s), t(e)).unwrap()
    }

    #[test]
    fn builder_sorts_contacts() {
        let trace = TraceBuilder::new(4)
            .contact(c(0, 1, 5.0, 6.0))
            .contact(c(2, 3, 1.0, 2.0))
            .build()
            .unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.contacts()[0].start(), t(1.0));
        assert_eq!(trace.span(), t(6.0));
        assert_eq!(trace.node_count(), 4);
        assert_eq!(trace.nodes().count(), 4);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let err = TraceBuilder::new(2)
            .contact(c(0, 5, 0.0, 1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, TraceError::NodeOutOfRange { .. }));
    }

    #[test]
    fn builder_rejects_contact_past_span() {
        let err = TraceBuilder::new(3)
            .span(t(1.0))
            .contact(c(0, 1, 0.0, 2.0))
            .build()
            .unwrap_err();
        assert_eq!(err, TraceError::ContactPastSpan);
    }

    #[test]
    fn builder_rejects_zero_nodes() {
        assert_eq!(
            TraceBuilder::new(0).build().unwrap_err(),
            TraceError::NoNodes
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = TraceBuilder::new(3).span(t(10.0)).build().unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.span(), t(10.0));
        assert!(trace.timeline().is_empty());
    }

    #[test]
    fn timeline_orders_down_before_up() {
        let trace = TraceBuilder::new(3)
            .contact(c(0, 1, 0.0, 5.0))
            .contact(c(1, 2, 5.0, 6.0))
            .build()
            .unwrap();
        let tl = trace.timeline();
        assert_eq!(tl.len(), 4);
        assert_eq!(tl[0].kind, TimelineKind::Up);
        // At t=5: down of (0,1) before up of (1,2).
        assert_eq!(tl[1].time, t(5.0));
        assert_eq!(tl[1].kind, TimelineKind::Down);
        assert_eq!(tl[2].time, t(5.0));
        assert_eq!(tl[2].kind, TimelineKind::Up);
    }

    #[test]
    fn windowing_clips_and_shifts() {
        let trace = TraceBuilder::new(3)
            .contact(c(0, 1, 0.0, 4.0))
            .contact(c(1, 2, 8.0, 9.0))
            .build()
            .unwrap();
        let w = trace.window(t(2.0), t(8.5));
        assert_eq!(w.len(), 2);
        assert_eq!(w.contacts()[0].start(), t(0.0));
        assert_eq!(w.contacts()[0].end(), t(2.0));
        assert_eq!(w.contacts()[1].start(), t(6.0));
        assert_eq!(w.contacts()[1].end(), t(6.5));
        assert_eq!(w.span(), t(6.5));
    }

    #[test]
    fn scaling_scales_everything() {
        let trace = TraceBuilder::new(2)
            .contact(c(0, 1, 1.0, 2.0))
            .build()
            .unwrap();
        let s = trace.scale_time(10.0);
        assert_eq!(s.contacts()[0].start(), t(10.0));
        assert_eq!(s.contacts()[0].end(), t(20.0));
        assert_eq!(s.span(), t(20.0));
    }

    #[test]
    fn departures_silence_nodes() {
        let trace = TraceBuilder::new(3)
            .contact(c(0, 1, 0.0, 10.0))
            .contact(c(0, 2, 5.0, 15.0))
            .contact(c(1, 2, 20.0, 25.0))
            .build()
            .unwrap();
        let failed = trace.with_departures(&[NodeId(2)], t(8.0));
        // 0-1 untouched; 0-2 clipped to [5, 8); 1-2 dropped entirely.
        assert_eq!(failed.len(), 2);
        assert_eq!(failed.contacts()[0].end(), t(10.0));
        assert_eq!(failed.contacts()[1].pair(), (NodeId(0), NodeId(2)));
        assert_eq!(failed.contacts()[1].end(), t(8.0));
        // Span and node count preserved.
        assert_eq!(failed.span(), trace.span());
        assert_eq!(failed.node_count(), 3);
        // No departures: identity.
        assert_eq!(trace.with_departures(&[], t(0.0)), trace);
    }

    #[test]
    fn per_node_and_per_pair_queries() {
        let trace = TraceBuilder::new(3)
            .contact(c(0, 1, 0.0, 1.0))
            .contact(c(0, 1, 2.0, 3.0))
            .contact(c(0, 2, 4.0, 5.0))
            .build()
            .unwrap();
        assert_eq!(trace.contacts_of(NodeId(0)).count(), 3);
        assert_eq!(trace.contacts_of(NodeId(2)).count(), 1);
        assert_eq!(trace.pair_contact_count(NodeId(1), NodeId(0)), 2);
        assert_eq!(trace.pair_contact_count(NodeId(1), NodeId(2)), 0);
    }
}
