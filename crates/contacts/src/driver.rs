//! The shared contact driver: one fault-filtered contact feed for every
//! simulator.
//!
//! Before this module existed, each simulator in the workspace hand-rolled
//! its own `for contact in trace.contacts()` loop, and only the freshness
//! simulator consulted the [`FaultPlan`](crate::faults::FaultPlan). The
//! [`ContactDriver`] centralizes that logic: it primes an
//! [`Engine`](omn_sim::Engine) with one event per contact (in trace order,
//! which [`TraceBuilder`](crate::TraceBuilder) guarantees is sorted by
//! start time) and classifies each contact's *fate* — deliverable,
//! suppressed by node downtime, or truncated — so every simulator applies
//! churn, departures, truncation, and transmission loss with identical
//! semantics.
//!
//! The driver lives in `omn-contacts` rather than `omn-sim` because it is
//! the contact-shaped half of the substrate: `omn-sim` owns the generic
//! kernel ([`Engine`](omn_sim::Engine), [`EventClass`](omn_sim::EventClass),
//! [`World`](omn_sim::World)) and knows nothing about [`Contact`]s or fault
//! plans, while this crate owns both.

use omn_sim::{Engine, EventClass, RngFactory, SimDuration, SimTime, TransferBudget};

use crate::faults::{FaultConfig, FaultPlan};
use crate::{Contact, ContactTrace, NodeId};

/// What happens to a single contact once faults are applied, in layering
/// order (checked by [`ContactDriver::fate`]):
///
/// 1. If either endpoint is down (churned out or departed), the contact is
///    [`Down`](ContactFate::Down): the radios never meet, so rate
///    estimators see nothing and no protocol exchange happens.
/// 2. Otherwise, if the contact is truncated, it is
///    [`Blocked`](ContactFate::Blocked): the radios sight each other (rate
///    estimators record the contact) but no data can be transferred.
/// 3. Otherwise it is [`Deliverable`](ContactFate::Deliverable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactFate {
    /// The contact proceeds normally; data may be exchanged.
    Deliverable,
    /// At least one endpoint is down; the contact never happens at all.
    Down,
    /// The contact is truncated: sighted by estimators, useless for data.
    Blocked,
}

/// The result of one budget-constrained transfer attempt; see
/// [`ContactDriver::budgeted_transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The transfer went through (budget consumed, loss draw passed).
    Sent,
    /// The transfer was attempted but lost in transit (budget consumed,
    /// loss draw failed). Counts as a transmission.
    Lost,
    /// The contact's capacity was already exhausted; nothing was sent, no
    /// randomness was consumed, and no transmission happened.
    OverBudget,
}

/// An ordered, fault-filtered contact feed for an [`Engine`].
///
/// Construct one per run with [`ContactDriver::new`], schedule the contact
/// stream into the engine with [`ContactDriver::prime`], then query
/// [`ContactDriver::fate`] as each contact event fires and
/// [`ContactDriver::transfer_fails`] per attempted data transfer.
///
/// A driver built with `faults: None` performs no fault bookkeeping and
/// consumes no randomness, so fault-free runs stay bit-identical to the
/// pre-driver simulators.
#[derive(Debug)]
pub struct ContactDriver<'a> {
    trace: &'a ContactTrace,
    plan: Option<FaultPlan>,
}

impl<'a> ContactDriver<'a> {
    /// Creates a driver over `trace`, materializing a [`FaultPlan`] from
    /// `faults` (drawing from the factory's dedicated fault streams) when
    /// one is configured.
    #[must_use]
    pub fn new(
        trace: &'a ContactTrace,
        faults: Option<FaultConfig>,
        factory: &RngFactory,
    ) -> ContactDriver<'a> {
        let plan = faults.map(|config| FaultPlan::build(config, trace, factory));
        ContactDriver { trace, plan }
    }

    /// Creates a driver over `trace` with an already-built plan (or none).
    #[must_use]
    pub fn with_plan(trace: &'a ContactTrace, plan: Option<FaultPlan>) -> ContactDriver<'a> {
        ContactDriver { trace, plan }
    }

    /// The trace this driver feeds from.
    #[must_use]
    pub fn trace(&self) -> &'a ContactTrace {
        self.trace
    }

    /// The `index`-th contact of the trace.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn contact(&self, index: usize) -> &'a Contact {
        &self.trace.contacts()[index]
    }

    /// The start time of the last contact in the trace, if any. Simulators
    /// use this to bound workload processing: events after the final
    /// contact can no longer influence any exchange.
    #[must_use]
    pub fn last_contact_start(&self) -> Option<SimTime> {
        self.trace.contacts().last().map(Contact::start)
    }

    /// Schedules one event per contact into `engine`, in trace order, all
    /// in delivery class `class`. `make` maps the contact's index in
    /// `trace.contacts()` to the simulator's event payload.
    pub fn prime<E>(
        &self,
        engine: &mut Engine<E>,
        class: EventClass,
        mut make: impl FnMut(usize) -> E,
    ) {
        for (i, c) in self.trace.contacts().iter().enumerate() {
            engine.schedule_at_class(c.start(), class, make(i));
        }
    }

    /// Classifies the `index`-th contact at instant `at` (normally its
    /// start time). Without a plan every contact is
    /// [`ContactFate::Deliverable`].
    #[must_use]
    pub fn fate(&self, index: usize, at: SimTime) -> ContactFate {
        let Some(plan) = &self.plan else {
            return ContactFate::Deliverable;
        };
        let (a, b) = self.trace.contacts()[index].pair();
        if plan.node_down(a, at) || plan.node_down(b, at) {
            ContactFate::Down
        } else if plan.contact_blocked(index) {
            ContactFate::Blocked
        } else {
            ContactFate::Deliverable
        }
    }

    /// Draws whether the next attempted data transfer fails. Always `false`
    /// without a plan; consumes no randomness when loss is zero.
    pub fn transfer_fails(&mut self) -> bool {
        self.plan.as_mut().is_some_and(FaultPlan::transfer_fails)
    }

    /// Attempts one data transfer within a shared per-contact `budget`.
    ///
    /// The budget is checked *before* the loss draw: an over-budget
    /// attempt consumes no randomness and must not be counted as a
    /// transmission by the caller — the radios never got the airtime, so
    /// nothing was sent and nothing could be lost. With an unlimited
    /// budget this is bit-identical to calling
    /// [`transfer_fails`](ContactDriver::transfer_fails) directly.
    pub fn budgeted_transfer(&mut self, budget: &mut TransferBudget) -> TransferOutcome {
        if !budget.try_consume() {
            TransferOutcome::OverBudget
        } else if self.transfer_fails() {
            TransferOutcome::Lost
        } else {
            TransferOutcome::Sent
        }
    }

    /// Whether `node` is down at instant `at`. Always `false` without a
    /// plan.
    #[must_use]
    pub fn node_down(&self, node: NodeId, at: SimTime) -> bool {
        self.plan.as_ref().is_some_and(|p| p.node_down(node, at))
    }

    /// The configured estimator observation lag (zero without a plan).
    #[must_use]
    pub fn estimator_lag(&self) -> SimDuration {
        self.plan
            .as_ref()
            .map_or(SimDuration::ZERO, FaultPlan::estimator_lag)
    }

    /// All rejoin instants within `span` (empty without a plan).
    #[must_use]
    pub fn rejoin_events(&self, span: SimTime) -> Vec<(SimTime, NodeId)> {
        self.plan
            .as_ref()
            .map_or_else(Vec::new, |p| p.rejoin_events(span))
    }

    /// The permanently departed nodes (empty without a plan).
    #[must_use]
    pub fn departed(&self) -> &[NodeId] {
        self.plan.as_ref().map_or(&[], FaultPlan::departed)
    }

    /// The underlying fault plan, if one is active.
    #[must_use]
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Mutable access to the fault plan (e.g. so schemes can draw their own
    /// transfer-loss decisions through it).
    pub fn plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.plan.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DowntimeConfig;
    use crate::synth::{generate_pairwise, PairwiseConfig};

    fn trace(seed: u64) -> ContactTrace {
        let config = PairwiseConfig::new(10, SimDuration::from_days(1.0));
        generate_pairwise(&config, &RngFactory::new(seed))
    }

    #[test]
    fn primes_contacts_in_trace_order() {
        let t = trace(1);
        let driver = ContactDriver::new(&t, None, &RngFactory::new(1));
        let mut engine: Engine<usize> = Engine::new();
        driver.prime(&mut engine, EventClass(60), |i| i);
        assert_eq!(engine.pending(), t.len());
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some(ev) = engine.next_event() {
            assert!(ev.time >= last);
            assert_eq!(ev.time, t.contacts()[ev.payload].start());
            last = ev.time;
            seen.push(ev.payload);
        }
        assert_eq!(seen, (0..t.len()).collect::<Vec<_>>());
    }

    #[test]
    fn driver_without_faults_is_transparent() {
        let t = trace(2);
        let mut driver = ContactDriver::new(&t, None, &RngFactory::new(2));
        for i in 0..t.len() {
            assert_eq!(
                driver.fate(i, t.contacts()[i].start()),
                ContactFate::Deliverable
            );
        }
        assert!(!driver.transfer_fails());
        assert!(driver.estimator_lag().is_zero());
        assert!(driver.rejoin_events(t.span()).is_empty());
        assert!(driver.departed().is_empty());
        assert!(driver.plan().is_none());
    }

    #[test]
    fn fate_layers_downtime_over_truncation() {
        let t = trace(3);
        let config = FaultConfig {
            contact_failure: 1.0,
            downtime: Some(DowntimeConfig {
                node_fraction: 1.0,
                mean_uptime: SimDuration::from_hours(2.0),
                mean_downtime: SimDuration::from_hours(2.0),
                exempt: None,
            }),
            ..FaultConfig::default()
        };
        let driver = ContactDriver::new(&t, Some(config), &RngFactory::new(3));
        let plan = driver.plan().expect("plan must exist");
        let mut down = 0;
        let mut blocked = 0;
        for (i, c) in t.contacts().iter().enumerate() {
            let (a, b) = c.pair();
            let fate = driver.fate(i, c.start());
            if plan.node_down(a, c.start()) || plan.node_down(b, c.start()) {
                assert_eq!(fate, ContactFate::Down);
                down += 1;
            } else {
                // contact_failure = 1.0 truncates every surviving contact.
                assert_eq!(fate, ContactFate::Blocked);
                blocked += 1;
            }
        }
        assert!(down > 0, "full churn produced no downtime suppression");
        assert!(blocked > 0, "no contact survived churn to be truncated");
    }

    #[test]
    fn fate_matches_plan_queries_for_reproducibility() {
        let t = trace(4);
        let config = FaultConfig {
            contact_failure: 0.4,
            ..FaultConfig::default()
        };
        let d1 = ContactDriver::new(&t, Some(config), &RngFactory::new(4));
        let d2 = ContactDriver::new(&t, Some(config), &RngFactory::new(4));
        for (i, c) in t.contacts().iter().enumerate() {
            assert_eq!(d1.fate(i, c.start()), d2.fate(i, c.start()));
        }
    }

    #[test]
    fn budgeted_transfer_checks_budget_before_loss_draw() {
        let t = trace(6);
        let config = FaultConfig {
            transmission_loss: 0.5,
            ..FaultConfig::default()
        };
        let mut d1 = ContactDriver::new(&t, Some(config), &RngFactory::new(6));
        let mut d2 = ContactDriver::new(&t, Some(config), &RngFactory::new(6));
        // d1: several attempts under a budget of 1 — only one real draw.
        let mut b = TransferBudget::capped(1);
        assert_ne!(d1.budgeted_transfer(&mut b), TransferOutcome::OverBudget);
        assert_eq!(d1.budgeted_transfer(&mut b), TransferOutcome::OverBudget);
        assert_eq!(d1.budgeted_transfer(&mut b), TransferOutcome::OverBudget);
        assert_eq!(b.used(), 1);
        // d2: one plain draw. The streams must stay aligned afterwards,
        // proving denied attempts consume no randomness.
        let _ = d2.transfer_fails();
        for _ in 0..64 {
            assert_eq!(d1.transfer_fails(), d2.transfer_fails());
        }
    }

    #[test]
    fn unlimited_budget_matches_plain_transfers() {
        let t = trace(7);
        let config = FaultConfig {
            transmission_loss: 0.3,
            ..FaultConfig::default()
        };
        let mut d1 = ContactDriver::new(&t, Some(config), &RngFactory::new(7));
        let mut d2 = ContactDriver::new(&t, Some(config), &RngFactory::new(7));
        let mut b = TransferBudget::unlimited();
        for _ in 0..64 {
            let outcome = d1.budgeted_transfer(&mut b);
            let failed = d2.transfer_fails();
            assert_eq!(outcome == TransferOutcome::Lost, failed);
        }
        assert_eq!(b.used(), 64);
    }

    #[test]
    fn last_contact_start_and_empty_trace() {
        let t = trace(5);
        let driver = ContactDriver::new(&t, None, &RngFactory::new(5));
        assert_eq!(
            driver.last_contact_start(),
            Some(t.contacts().last().unwrap().start())
        );
        let empty = crate::TraceBuilder::new(3)
            .span(SimTime::from_hours(1.0))
            .build()
            .expect("empty trace builds");
        let d = ContactDriver::new(&empty, None, &RngFactory::new(5));
        assert_eq!(d.last_contact_start(), None);
    }
}
