//! The shared contact driver: one fault-filtered contact feed for every
//! simulator.
//!
//! Before this module existed, each simulator in the workspace hand-rolled
//! its own `for contact in trace.contacts()` loop, and only the freshness
//! simulator consulted the [`FaultPlan`](crate::faults::FaultPlan). The
//! [`ContactDriver`] centralizes that logic: it feeds contacts from a
//! [`ContactSource`] into an [`Engine`](omn_sim::Engine) and classifies each
//! contact's *fate* — deliverable, suppressed by node downtime, or truncated
//! — so every simulator applies churn, departures, truncation, and
//! transmission loss with identical semantics.
//!
//! Two feeding modes exist:
//!
//! * **Pull** ([`begin`](ContactDriver::begin) +
//!   [`advance`](ContactDriver::advance)) — the driver schedules only the
//!   next upcoming contact; each contact handler calls `advance` to evict
//!   consumed contacts and pull/schedule the next one. At most two contacts
//!   are resident in the driver at any instant, so memory scales with the
//!   source's internal state (O(shards) for the sharded generator), not
//!   with the total contact count. Because the source yields contacts in
//!   nondecreasing start order and contact events share one
//!   [`EventClass`](omn_sim::EventClass), the event interleaving — and
//!   therefore every simulation result — is bit-identical to priming.
//! * **Prime** ([`prime`](ContactDriver::prime)) — the classic mode: drain
//!   the whole source up front and schedule one event per contact. Kept for
//!   the explicit pull≡prime equivalence tests and for callers that need
//!   random access to contacts.
//!
//! The driver lives in `omn-contacts` rather than `omn-sim` because it is
//! the contact-shaped half of the substrate: `omn-sim` owns the generic
//! kernel ([`Engine`](omn_sim::Engine), [`EventClass`](omn_sim::EventClass),
//! [`World`](omn_sim::World)) and knows nothing about [`Contact`]s or fault
//! plans, while this crate owns both.

use std::collections::VecDeque;

use omn_sim::{Engine, EventClass, RngFactory, SimDuration, SimTime, TransferBudget};

use crate::faults::{FaultConfig, FaultPlan, Rejoin};
use crate::source::{ContactSource, LastContact, TraceSource};
use crate::{Contact, ContactTrace, NodeId};

/// What happens to a single contact once faults are applied, in layering
/// order (checked by [`ContactDriver::fate`]):
///
/// 1. If either endpoint is down (churned out or departed), the contact is
///    [`Down`](ContactFate::Down): the radios never meet, so rate
///    estimators see nothing and no protocol exchange happens.
/// 2. Otherwise, if the contact is truncated, it is
///    [`Blocked`](ContactFate::Blocked): the radios sight each other (rate
///    estimators record the contact) but no data can be transferred.
/// 3. Otherwise it is [`Deliverable`](ContactFate::Deliverable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactFate {
    /// The contact proceeds normally; data may be exchanged.
    Deliverable,
    /// At least one endpoint is down; the contact never happens at all.
    Down,
    /// The contact is truncated: sighted by estimators, useless for data.
    Blocked,
}

/// The result of one budget-constrained transfer attempt; see
/// [`ContactDriver::budgeted_transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The transfer went through (budget consumed, loss draw passed).
    Sent,
    /// The transfer was attempted but lost in transit (budget consumed,
    /// loss draw failed). Counts as a transmission.
    Lost,
    /// The contact's capacity was already exhausted; nothing was sent, no
    /// randomness was consumed, and no transmission happened.
    OverBudget,
    /// The message did not fit the contact's remaining byte capacity
    /// (sized transfers only; see
    /// [`ContactDriver::budgeted_transfer_sized`]). Nothing was sent, no
    /// randomness was consumed, and no transmission happened — but unlike
    /// [`OverBudget`](TransferOutcome::OverBudget), the caller may queue
    /// the message for a later contact.
    ByteDenied,
}

/// An ordered, fault-filtered contact feed for an [`Engine`].
///
/// Construct one per run with [`ContactDriver::new`] (over a materialized
/// trace) or [`ContactDriver::from_source`] (over any stream), feed the
/// engine with [`begin`](ContactDriver::begin)/
/// [`advance`](ContactDriver::advance) (pull mode) or
/// [`prime`](ContactDriver::prime) (drain up front), then query
/// [`ContactDriver::fate`] as each contact event fires and
/// [`ContactDriver::transfer_fails`] per attempted data transfer.
///
/// A driver built with `faults: None` performs no fault bookkeeping and
/// consumes no randomness, so fault-free runs stay bit-identical to the
/// pre-driver simulators.
#[derive(Debug)]
pub struct ContactDriver<S> {
    source: S,
    plan: Option<FaultPlan>,
    /// Contacts pulled from the source and not yet evicted; entry `k` is the
    /// contact with stream index `base + k`.
    resident: VecDeque<Contact>,
    /// Stream index of `resident.front()`.
    base: usize,
    /// Total contacts pulled from the source so far (`base +
    /// resident.len()`).
    pulled: usize,
    /// Start time of the most recently pulled contact, for the sorted-order
    /// debug assertion.
    last_start: Option<SimTime>,
    /// High-water mark of driver-resident contacts plus the source's
    /// buffered state at pull time (see
    /// [`peak_resident`](ContactDriver::peak_resident)).
    peak_resident: usize,
}

impl<'a> ContactDriver<TraceSource<'a>> {
    /// Creates a driver over a materialized `trace`, building a
    /// [`FaultPlan`] from `faults` (drawing from the factory's dedicated
    /// fault streams) when one is configured.
    #[must_use]
    pub fn new(
        trace: &'a ContactTrace,
        faults: Option<FaultConfig>,
        factory: &RngFactory,
    ) -> ContactDriver<TraceSource<'a>> {
        ContactDriver::from_source(TraceSource::new(trace), faults, factory)
    }

    /// Creates a driver over `trace` with an already-built plan (or none).
    #[must_use]
    pub fn with_plan(
        trace: &'a ContactTrace,
        plan: Option<FaultPlan>,
    ) -> ContactDriver<TraceSource<'a>> {
        ContactDriver::from_source_with_plan(TraceSource::new(trace), plan)
    }

    /// The trace this driver feeds from.
    #[must_use]
    pub fn trace(&self) -> &'a ContactTrace {
        self.source.trace()
    }
}

impl<S: ContactSource> ContactDriver<S> {
    /// Creates a driver over any [`ContactSource`], building a
    /// [`FaultPlan`] from `faults` when one is configured. The plan needs
    /// only the source's node count and span, so it works over streams of
    /// unknown length.
    #[must_use]
    pub fn from_source(
        source: S,
        faults: Option<FaultConfig>,
        factory: &RngFactory,
    ) -> ContactDriver<S> {
        let plan = faults
            .map(|config| FaultPlan::build(config, source.node_count(), source.span(), factory));
        ContactDriver::from_source_with_plan(source, plan)
    }

    /// Creates a driver over a source with an already-built plan (or none).
    #[must_use]
    pub fn from_source_with_plan(source: S, plan: Option<FaultPlan>) -> ContactDriver<S> {
        ContactDriver {
            source,
            plan,
            resident: VecDeque::new(),
            base: 0,
            pulled: 0,
            last_start: None,
            peak_resident: 0,
        }
    }

    /// Number of nodes in the source's population.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.source.node_count()
    }

    /// Total simulated span of the source.
    #[must_use]
    pub fn span(&self) -> SimTime {
        self.source.span()
    }

    /// The contact with stream index `index`.
    ///
    /// In pull mode only the current contact (and the one scheduled after
    /// it) are resident; in primed mode every contact is.
    ///
    /// # Panics
    ///
    /// Panics if `index` has not been pulled yet or was already evicted by
    /// [`advance`](ContactDriver::advance).
    #[must_use]
    pub fn contact(&self, index: usize) -> Contact {
        assert!(
            index >= self.base && index < self.pulled,
            "contact {index} is not resident (resident range {}..{})",
            self.base,
            self.pulled
        );
        self.resident[index - self.base]
    }

    /// The start time of the final contact the source will yield, if known.
    /// A streaming source of unknown length conservatively reports the span
    /// (events up to the span may still influence an exchange). Simulators
    /// use this to bound workload processing.
    #[must_use]
    pub fn last_contact_start(&self) -> Option<SimTime> {
        match self.source.last_contact() {
            LastContact::Known(t) => t,
            LastContact::Unknown => Some(self.source.span()),
        }
    }

    /// Pulls one contact from the source, recording it as resident and
    /// debug-asserting the source's ordering contract.
    fn pull(&mut self) -> Option<Contact> {
        let c = self.source.next_contact()?;
        debug_assert!(
            self.last_start.is_none_or(|prev| c.start() >= prev),
            "ContactSource yielded out-of-order contact {} after start {:?}",
            c,
            self.last_start
        );
        self.last_start = Some(c.start());
        self.resident.push_back(c);
        self.pulled += 1;
        self.peak_resident = self
            .peak_resident
            .max(self.resident.len() + self.source.resident_hint());
        Some(c)
    }

    /// Drains the whole source and schedules one event per contact into
    /// `engine`, in stream order, all in delivery class `class`. `make`
    /// maps the contact's stream index to the simulator's event payload.
    ///
    /// This keeps every contact resident; use
    /// [`begin`](ContactDriver::begin)/[`advance`](ContactDriver::advance)
    /// to stream with O(1) resident contacts instead.
    pub fn prime<E>(
        &mut self,
        engine: &mut Engine<E>,
        class: EventClass,
        mut make: impl FnMut(usize) -> E,
    ) {
        while let Some(c) = self.pull() {
            engine.schedule_at_class(c.start(), class, make(self.pulled - 1));
        }
    }

    /// Starts pull mode: pulls the first contact (if any) and schedules it.
    /// Pair with [`advance`](ContactDriver::advance) from each contact
    /// handler.
    pub fn begin<E>(
        &mut self,
        engine: &mut Engine<E>,
        class: EventClass,
        make: impl FnOnce(usize) -> E,
    ) {
        debug_assert_eq!(self.pulled, 0, "begin() on an already-fed driver");
        if let Some(c) = self.pull() {
            engine.schedule_at_class(c.start(), class, make(self.pulled - 1));
        }
    }

    /// Advances the pull window from the handler of contact `current`:
    /// evicts contacts before `current`, then pulls and schedules the next
    /// contact (if the source has one). Call this at the top of the
    /// contact-event handler, before querying
    /// [`contact`](ContactDriver::contact) or
    /// [`fate`](ContactDriver::fate) for `current`.
    ///
    /// Exactly one contact event is in flight at a time, and the source's
    /// nondecreasing start order means the newly scheduled event never lies
    /// in the past — so the engine's (time, class, FIFO) order reproduces
    /// the primed interleaving exactly.
    pub fn advance<E>(
        &mut self,
        current: usize,
        engine: &mut Engine<E>,
        class: EventClass,
        make: impl FnOnce(usize) -> E,
    ) {
        while self.base < current {
            self.resident.pop_front();
            self.base += 1;
        }
        if let Some(c) = self.pull() {
            engine.schedule_at_class(c.start(), class, make(self.pulled - 1));
        }
    }

    /// High-water mark of contacts resident in memory, sampled at every
    /// pull: the driver's own window plus whatever the source kept buffered
    /// at that moment ([`ContactSource::resident_hint`]). In pull mode over
    /// an incremental source this stays O(source state) regardless of how
    /// many contacts the run processes; over a materialized
    /// [`TraceSource`] it reports the full trace (plus the bounded window),
    /// which is exactly the memory the streaming pipeline exists to avoid.
    #[must_use]
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Total contacts pulled from the source so far.
    #[must_use]
    pub fn contacts_pulled(&self) -> usize {
        self.pulled
    }

    /// Classifies the contact with stream index `index` at instant `at`
    /// (normally its start time). Without a plan every contact is
    /// [`ContactFate::Deliverable`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is not resident (see
    /// [`contact`](ContactDriver::contact)).
    #[must_use]
    pub fn fate(&mut self, index: usize, at: SimTime) -> ContactFate {
        let (a, b) = self.contact(index).pair();
        let Some(plan) = &mut self.plan else {
            return ContactFate::Deliverable;
        };
        if plan.node_down(a, at) || plan.node_down(b, at) {
            ContactFate::Down
        } else if plan.contact_blocked(index) {
            ContactFate::Blocked
        } else {
            ContactFate::Deliverable
        }
    }

    /// Draws whether the next attempted data transfer fails. Always `false`
    /// without a plan; consumes no randomness when loss is zero.
    pub fn transfer_fails(&mut self) -> bool {
        self.plan.as_mut().is_some_and(FaultPlan::transfer_fails)
    }

    /// Attempts one data transfer within a shared per-contact `budget`.
    ///
    /// The budget is checked *before* the loss draw: an over-budget
    /// attempt consumes no randomness and must not be counted as a
    /// transmission by the caller — the radios never got the airtime, so
    /// nothing was sent and nothing could be lost. With an unlimited
    /// budget this is bit-identical to calling
    /// [`transfer_fails`](ContactDriver::transfer_fails) directly.
    pub fn budgeted_transfer(&mut self, budget: &mut TransferBudget) -> TransferOutcome {
        self.budgeted_transfer_sized(budget, 0)
    }

    /// Attempts one sized data transfer within a shared per-contact
    /// `budget`, charging `bytes` against its byte capacity (if any).
    ///
    /// Both capacity axes are checked *before* the loss draw: a denied
    /// attempt consumes no randomness and must not be counted as a
    /// transmission. A zero-size transfer or a budget without a byte
    /// capacity degrades bit-identically to
    /// [`budgeted_transfer`](ContactDriver::budgeted_transfer).
    pub fn budgeted_transfer_sized(
        &mut self,
        budget: &mut TransferBudget,
        bytes: u64,
    ) -> TransferOutcome {
        match budget.try_consume_sized(bytes) {
            omn_sim::ByteConsume::SlotDenied => TransferOutcome::OverBudget,
            omn_sim::ByteConsume::ByteDenied => TransferOutcome::ByteDenied,
            omn_sim::ByteConsume::Granted => {
                if self.transfer_fails() {
                    TransferOutcome::Lost
                } else {
                    TransferOutcome::Sent
                }
            }
        }
    }

    /// Whether `node` is down at instant `at`. Always `false` without a
    /// plan.
    #[must_use]
    pub fn node_down(&self, node: NodeId, at: SimTime) -> bool {
        self.plan.as_ref().is_some_and(|p| p.node_down(node, at))
    }

    /// The configured estimator observation lag (zero without a plan).
    #[must_use]
    pub fn estimator_lag(&self) -> SimDuration {
        self.plan
            .as_ref()
            .map_or(SimDuration::ZERO, FaultPlan::estimator_lag)
    }

    /// All rejoins within the source span, sorted (empty without a plan).
    /// Precomputed at plan build time; queries are allocation-free.
    #[must_use]
    pub fn rejoin_events(&self) -> &[Rejoin] {
        self.plan.as_ref().map_or(&[], FaultPlan::rejoin_events)
    }

    /// Draws whether the next successful data transfer is corrupted into a
    /// stale-version replay. Always `false` without a plan; consumes no
    /// randomness when corruption is zero.
    pub fn transfer_corrupts(&mut self) -> bool {
        self.plan.as_mut().is_some_and(FaultPlan::transfer_corrupts)
    }

    /// The permanently departed nodes (empty without a plan).
    #[must_use]
    pub fn departed(&self) -> &[NodeId] {
        self.plan.as_ref().map_or(&[], FaultPlan::departed)
    }

    /// The underlying fault plan, if one is active.
    #[must_use]
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Mutable access to the fault plan (e.g. so schemes can draw their own
    /// transfer-loss decisions through it).
    pub fn plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.plan.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DowntimeConfig;
    use crate::synth::{generate_pairwise, PairwiseConfig};

    fn trace(seed: u64) -> ContactTrace {
        let config = PairwiseConfig::new(10, SimDuration::from_days(1.0));
        generate_pairwise(&config, &RngFactory::new(seed))
    }

    #[test]
    fn primes_contacts_in_trace_order() {
        let t = trace(1);
        let mut driver = ContactDriver::new(&t, None, &RngFactory::new(1));
        let mut engine: Engine<usize> = Engine::new();
        driver.prime(&mut engine, EventClass(60), |i| i);
        assert_eq!(engine.pending(), t.len());
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some(ev) = engine.next_event() {
            assert!(ev.time >= last);
            assert_eq!(ev.time, t.contacts()[ev.payload].start());
            last = ev.time;
            seen.push(ev.payload);
        }
        assert_eq!(seen, (0..t.len()).collect::<Vec<_>>());
    }

    #[test]
    fn pull_mode_fires_the_same_events_as_priming() {
        let t = trace(8);
        let mut driver = ContactDriver::new(&t, None, &RngFactory::new(8));
        let mut engine: Engine<usize> = Engine::new();
        driver.begin(&mut engine, EventClass(60), |i| i);
        assert_eq!(engine.pending(), 1.min(t.len()));
        let mut seen = Vec::new();
        while let Some(ev) = engine.next_event() {
            let ci = ev.payload;
            driver.advance(ci, &mut engine, EventClass(60), |i| i);
            assert_eq!(ev.time, driver.contact(ci).start());
            seen.push(ci);
        }
        assert_eq!(seen, (0..t.len()).collect::<Vec<_>>());
        assert_eq!(driver.contacts_pulled(), t.len());
        // Only the current and next contacts are ever resident in the
        // driver's own window.
        assert!(driver.peak_resident() - t.len() <= 2);
    }

    #[test]
    fn driver_without_faults_is_transparent() {
        let t = trace(2);
        let mut driver = ContactDriver::new(&t, None, &RngFactory::new(2));
        let mut engine: Engine<usize> = Engine::new();
        driver.prime(&mut engine, EventClass(60), |i| i);
        for i in 0..t.len() {
            assert_eq!(
                driver.fate(i, t.contacts()[i].start()),
                ContactFate::Deliverable
            );
        }
        assert!(!driver.transfer_fails());
        assert!(!driver.transfer_corrupts());
        assert!(driver.estimator_lag().is_zero());
        assert!(driver.rejoin_events().is_empty());
        assert!(driver.departed().is_empty());
        assert!(driver.plan().is_none());
    }

    #[test]
    fn fate_layers_downtime_over_truncation() {
        let t = trace(3);
        let config = FaultConfig {
            contact_failure: 1.0,
            downtime: Some(DowntimeConfig {
                node_fraction: 1.0,
                mean_uptime: SimDuration::from_hours(2.0),
                mean_downtime: SimDuration::from_hours(2.0),
                exempt: None,
            }),
            ..FaultConfig::default()
        };
        let mut driver = ContactDriver::new(&t, Some(config), &RngFactory::new(3));
        let mut engine: Engine<usize> = Engine::new();
        driver.prime(&mut engine, EventClass(60), |i| i);
        let reference = driver.plan().expect("plan must exist").clone();
        let mut down = 0;
        let mut blocked = 0;
        for (i, c) in t.contacts().iter().enumerate() {
            let (a, b) = c.pair();
            let fate = driver.fate(i, c.start());
            if reference.node_down(a, c.start()) || reference.node_down(b, c.start()) {
                assert_eq!(fate, ContactFate::Down);
                down += 1;
            } else {
                // contact_failure = 1.0 truncates every surviving contact.
                assert_eq!(fate, ContactFate::Blocked);
                blocked += 1;
            }
        }
        assert!(down > 0, "full churn produced no downtime suppression");
        assert!(blocked > 0, "no contact survived churn to be truncated");
    }

    #[test]
    fn fate_matches_plan_queries_for_reproducibility() {
        let t = trace(4);
        let config = FaultConfig {
            contact_failure: 0.4,
            ..FaultConfig::default()
        };
        let mut d1 = ContactDriver::new(&t, Some(config), &RngFactory::new(4));
        let mut d2 = ContactDriver::new(&t, Some(config), &RngFactory::new(4));
        let mut e1: Engine<usize> = Engine::new();
        let mut e2: Engine<usize> = Engine::new();
        d1.prime(&mut e1, EventClass(60), |i| i);
        d2.prime(&mut e2, EventClass(60), |i| i);
        for (i, c) in t.contacts().iter().enumerate() {
            assert_eq!(d1.fate(i, c.start()), d2.fate(i, c.start()));
        }
    }

    #[test]
    fn budgeted_transfer_checks_budget_before_loss_draw() {
        let t = trace(6);
        let config = FaultConfig {
            transmission_loss: 0.5,
            ..FaultConfig::default()
        };
        let mut d1 = ContactDriver::new(&t, Some(config), &RngFactory::new(6));
        let mut d2 = ContactDriver::new(&t, Some(config), &RngFactory::new(6));
        // d1: several attempts under a budget of 1 — only one real draw.
        let mut b = TransferBudget::capped(1);
        assert_ne!(d1.budgeted_transfer(&mut b), TransferOutcome::OverBudget);
        assert_eq!(d1.budgeted_transfer(&mut b), TransferOutcome::OverBudget);
        assert_eq!(d1.budgeted_transfer(&mut b), TransferOutcome::OverBudget);
        assert_eq!(b.used(), 1);
        // d2: one plain draw. The streams must stay aligned afterwards,
        // proving denied attempts consume no randomness.
        let _ = d2.transfer_fails();
        for _ in 0..64 {
            assert_eq!(d1.transfer_fails(), d2.transfer_fails());
        }
    }

    #[test]
    fn unlimited_budget_matches_plain_transfers() {
        let t = trace(7);
        let config = FaultConfig {
            transmission_loss: 0.3,
            ..FaultConfig::default()
        };
        let mut d1 = ContactDriver::new(&t, Some(config), &RngFactory::new(7));
        let mut d2 = ContactDriver::new(&t, Some(config), &RngFactory::new(7));
        let mut b = TransferBudget::unlimited();
        for _ in 0..64 {
            let outcome = d1.budgeted_transfer(&mut b);
            let failed = d2.transfer_fails();
            assert_eq!(outcome == TransferOutcome::Lost, failed);
        }
        assert_eq!(b.used(), 64);
    }

    #[test]
    fn byte_denied_transfer_consumes_no_randomness() {
        let t = trace(9);
        let config = FaultConfig {
            transmission_loss: 0.5,
            ..FaultConfig::default()
        };
        let mut d1 = ContactDriver::new(&t, Some(config), &RngFactory::new(9));
        let mut d2 = ContactDriver::new(&t, Some(config), &RngFactory::new(9));
        let mut b = TransferBudget::unlimited().with_byte_capacity(Some(100));
        // An oversized message is byte-denied without a loss draw.
        assert_eq!(
            d1.budgeted_transfer_sized(&mut b, 500),
            TransferOutcome::ByteDenied
        );
        assert_eq!(b.used(), 0);
        assert_eq!(b.bytes_used(), 0);
        // A fitting message draws; both streams stay aligned afterwards.
        let outcome = d1.budgeted_transfer_sized(&mut b, 80);
        let failed = d2.transfer_fails();
        assert_eq!(outcome == TransferOutcome::Lost, failed);
        assert_eq!(b.bytes_used(), 80);
        for _ in 0..64 {
            assert_eq!(d1.transfer_fails(), d2.transfer_fails());
        }
    }

    #[test]
    fn zero_size_sized_transfer_matches_unsized() {
        let t = trace(10);
        let config = FaultConfig {
            transmission_loss: 0.3,
            ..FaultConfig::default()
        };
        let mut d1 = ContactDriver::new(&t, Some(config), &RngFactory::new(10));
        let mut d2 = ContactDriver::new(&t, Some(config), &RngFactory::new(10));
        let mut b1 = TransferBudget::capped(4).with_byte_capacity(Some(0));
        let mut b2 = TransferBudget::capped(4);
        for _ in 0..8 {
            assert_eq!(
                d1.budgeted_transfer_sized(&mut b1, 0),
                d2.budgeted_transfer(&mut b2)
            );
        }
        assert_eq!(b1.used(), b2.used());
    }

    #[test]
    fn last_contact_start_and_empty_trace() {
        let t = trace(5);
        let driver = ContactDriver::new(&t, None, &RngFactory::new(5));
        assert_eq!(
            driver.last_contact_start(),
            Some(t.contacts().last().unwrap().start())
        );
        let empty = crate::TraceBuilder::new(3)
            .span(SimTime::from_hours(1.0))
            .build()
            .expect("empty trace builds");
        let d = ContactDriver::new(&empty, None, &RngFactory::new(5));
        assert_eq!(d.last_contact_start(), None);
    }

    /// A deliberately broken source that yields contacts in descending
    /// start order.
    struct Unsorted {
        left: Vec<Contact>,
    }

    impl ContactSource for Unsorted {
        fn node_count(&self) -> usize {
            3
        }
        fn span(&self) -> SimTime {
            SimTime::from_hours(1.0)
        }
        fn next_contact(&mut self) -> Option<Contact> {
            self.left.pop()
        }
        fn last_contact(&self) -> crate::source::LastContact {
            crate::source::LastContact::Unknown
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out-of-order contact")]
    fn unsorted_source_is_rejected_in_debug_builds() {
        let c = |s: f64| {
            Contact::new(
                NodeId(0),
                NodeId(1),
                SimTime::from_secs(s),
                SimTime::from_secs(s + 1.0),
            )
            .unwrap()
        };
        // pop() yields 30 then 10: out of order.
        let src = Unsorted {
            left: vec![c(10.0), c(30.0)],
        };
        let mut driver = ContactDriver::from_source(src, None, &RngFactory::new(1));
        let mut engine: Engine<usize> = Engine::new();
        driver.begin(&mut engine, EventClass(60), |i| i);
        while let Some(ev) = engine.next_event() {
            driver.advance(ev.payload, &mut engine, EventClass(60), |i| i);
        }
    }

    #[test]
    fn streamed_unknown_length_source_reports_span_as_last_contact() {
        let src = Unsorted { left: Vec::new() };
        let driver = ContactDriver::from_source(src, None, &RngFactory::new(1));
        assert_eq!(driver.last_contact_start(), Some(SimTime::from_hours(1.0)));
    }
}
