//! Plain-text trace format with round-trip read/write.
//!
//! The format is line-oriented, human-inspectable, and close to the contact
//! reports produced by common DTN tooling:
//!
//! ```text
//! # omn-contacts v1
//! nodes 25
//! span 86400.0
//! 0 3 12.5 48.0
//! 1 7 100.0 130.5
//! ```
//!
//! Each contact line is `a b start end` in seconds. Lines beginning with `#`
//! are comments.

use std::fmt;
use std::io::{BufRead, Write};

use omn_sim::SimTime;

use crate::contact::{Contact, ContactError, NodeId};
use crate::source::{ContactSource, LastContact};
use crate::trace::{ContactTrace, TraceBuilder};

/// What exactly was wrong with a malformed record.
///
/// Every reader in this module — and the real-dataset readers in the
/// `omn-traces` crate — reports malformed input through this typed kind
/// instead of a free-form string or a panic, so callers can branch on the
/// failure class (skip-and-count in lenient ingestion, abort in strict).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// Wrong number of fields on the line.
    FieldCount {
        /// Human-readable shape of the expected record.
        expected: &'static str,
        /// How many fields the line actually had.
        got: usize,
    },
    /// A required field or header is absent.
    Missing(&'static str),
    /// A field failed numeric conversion.
    Number {
        /// Which field.
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// A time value was rejected (negative, non-finite…).
    Time {
        /// Which field.
        field: &'static str,
        /// Why the time was rejected.
        reason: String,
    },
    /// A token that should be one of a fixed set of words was not.
    Token {
        /// Which field.
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// The record does not form a valid contact interval.
    Contact(ContactError),
    /// A node id is outside the declared population.
    NodeOutOfRange {
        /// The raw node id on the line.
        id: u64,
        /// The declared population size.
        limit: usize,
    },
    /// More distinct raw node ids than the declared population (id
    /// remapping ran out of dense ids).
    NodeLimit {
        /// The declared population size.
        limit: usize,
    },
    /// The record extends past the declared span.
    PastSpan,
    /// The record is out of time order.
    OutOfOrder,
    /// A contact line appeared before the `nodes`/`span` header.
    HeaderFirst,
    /// A `down` event without a matching `up` (connectivity reports).
    OrphanDown,
    /// A duplicate `up` for an already-open connection.
    DuplicateUp,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::FieldCount { expected, got } => {
                write!(f, "expected {expected}, got {got} fields")
            }
            ParseErrorKind::Missing(field) => write!(f, "missing {field}"),
            ParseErrorKind::Number { field, token } => {
                write!(f, "bad {field}: `{token}` is not a number")
            }
            ParseErrorKind::Time { field, reason } => write!(f, "bad {field}: {reason}"),
            ParseErrorKind::Token { field, token } => write!(f, "bad {field}: `{token}`"),
            ParseErrorKind::Contact(e) => write!(f, "bad contact: {e}"),
            ParseErrorKind::NodeOutOfRange { id, limit } => {
                write!(f, "node id {id} out of range (population {limit})")
            }
            ParseErrorKind::NodeLimit { limit } => {
                write!(f, "more than {limit} distinct node ids")
            }
            ParseErrorKind::PastSpan => write!(f, "contact extends past span"),
            ParseErrorKind::OutOfOrder => write!(f, "events out of time order"),
            ParseErrorKind::HeaderFirst => write!(
                f,
                "contact line before `nodes`/`span` header (streaming reads \
                 need the header first)"
            ),
            ParseErrorKind::OrphanDown => write!(f, "`down` without matching `up`"),
            ParseErrorKind::DuplicateUp => write!(f, "duplicate `up` for open connection"),
        }
    }
}

/// A malformed record: the 1-based line it occurred on plus the typed
/// failure kind.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong with it.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Creates a parse error for `line`.
    #[must_use]
    pub fn new(line: usize, kind: ParseErrorKind) -> ParseError {
        ParseError { line, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for ParseError {}

/// Error produced while reading a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with its 1-based line number and typed kind.
    Parse(ParseError),
    /// The trace content failed validation (bad node ids, span…).
    Invalid(String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::Parse(e) => write!(f, "{e}"),
            TraceIoError::Invalid(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse(e) => Some(e),
            TraceIoError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> TraceIoError {
        TraceIoError::Io(e)
    }
}

impl From<ParseError> for TraceIoError {
    fn from(e: ParseError) -> TraceIoError {
        TraceIoError::Parse(e)
    }
}

/// Writes a trace in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(trace: &ContactTrace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# omn-contacts v1")?;
    writeln!(w, "nodes {}", trace.node_count())?;
    writeln!(w, "span {}", trace.span().as_secs())?;
    for c in trace.contacts() {
        writeln!(
            w,
            "{} {} {} {}",
            c.a().0,
            c.b().0,
            c.start().as_secs(),
            c.end().as_secs()
        )?;
    }
    Ok(())
}

/// Reads a trace in the v1 text format.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] with a line number for malformed input,
/// [`TraceIoError::Invalid`] if the parsed trace violates trace invariants,
/// or [`TraceIoError::Io`] for reader failures.
pub fn read_trace<R: BufRead>(r: R) -> Result<ContactTrace, TraceIoError> {
    let mut nodes: Option<usize> = None;
    let mut span: Option<SimTime> = None;
    let mut contacts = Vec::new();

    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("non-empty line has a first token");
        match head {
            "nodes" => {
                let v = parts
                    .next()
                    .ok_or_else(|| parse_err(line_no, ParseErrorKind::Missing("node count")))?;
                nodes = Some(
                    v.parse::<usize>()
                        .map_err(|_| parse_err(line_no, number_kind("node count", v)))?,
                );
            }
            "span" => {
                let v = parts
                    .next()
                    .ok_or_else(|| parse_err(line_no, ParseErrorKind::Missing("span")))?;
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| parse_err(line_no, number_kind("span", v)))?;
                span = Some(
                    SimTime::try_from_secs(secs)
                        .map_err(|e| parse_err(line_no, time_kind("span", &e)))?,
                );
            }
            _ => {
                let fields: Vec<&str> = std::iter::once(head).chain(parts).collect();
                if fields.len() != 4 {
                    return Err(parse_err(
                        line_no,
                        ParseErrorKind::FieldCount {
                            expected: "`a b start end`",
                            got: fields.len(),
                        },
                    ));
                }
                let a: u32 = fields[0]
                    .parse()
                    .map_err(|_| parse_err(line_no, number_kind("node id", fields[0])))?;
                let b: u32 = fields[1]
                    .parse()
                    .map_err(|_| parse_err(line_no, number_kind("node id", fields[1])))?;
                let start: f64 = fields[2]
                    .parse()
                    .map_err(|_| parse_err(line_no, number_kind("start", fields[2])))?;
                let end: f64 = fields[3]
                    .parse()
                    .map_err(|_| parse_err(line_no, number_kind("end", fields[3])))?;
                let start = SimTime::try_from_secs(start)
                    .map_err(|e| parse_err(line_no, time_kind("start", &e)))?;
                let end = SimTime::try_from_secs(end)
                    .map_err(|e| parse_err(line_no, time_kind("end", &e)))?;
                let contact = Contact::new(NodeId(a), NodeId(b), start, end)
                    .map_err(|e| parse_err(line_no, ParseErrorKind::Contact(e)))?;
                contacts.push(contact);
            }
        }
    }

    let nodes = nodes.ok_or_else(|| TraceIoError::Invalid("missing `nodes` header".into()))?;
    let mut builder = TraceBuilder::new(nodes).contacts(contacts);
    if let Some(s) = span {
        builder = builder.span(s);
    }
    builder
        .build()
        .map_err(|e| TraceIoError::Invalid(e.to_string()))
}

fn parse_err(line: usize, kind: ParseErrorKind) -> TraceIoError {
    TraceIoError::Parse(ParseError::new(line, kind))
}

fn number_kind(field: &'static str, token: &str) -> ParseErrorKind {
    ParseErrorKind::Number {
        field,
        token: token.to_owned(),
    }
}

fn time_kind(field: &'static str, reason: &dyn fmt::Display) -> ParseErrorKind {
    ParseErrorKind::Time {
        field,
        reason: reason.to_string(),
    }
}

/// A [`ContactSource`] that streams a v1 text trace line by line instead of
/// loading it into a `Vec` first.
///
/// The reader consumes the `nodes`/`span` headers eagerly (they must appear
/// before the first contact line) and then parses one contact per
/// [`next_contact`](ContactSource::next_contact) call, so resident memory is
/// one line regardless of file size. Contact lines must already be sorted
/// by `(start, end, pair)` — the order [`write_trace`] emits — which the
/// driver debug-asserts downstream.
///
/// I/O or parse failures end the stream; inspect them afterwards with
/// [`StreamingTraceSource::error`]. (A pull-based stream has no other
/// channel to report a mid-stream failure.)
#[derive(Debug)]
pub struct StreamingTraceSource<R> {
    lines: std::io::Lines<R>,
    /// 0-based count of lines already consumed (so the next line is
    /// `line_no + 1`, 1-based).
    line_no: usize,
    nodes: usize,
    span: SimTime,
    done: bool,
    error: Option<TraceIoError>,
}

impl<R: BufRead> StreamingTraceSource<R> {
    /// Opens a v1 text trace for streaming, consuming the header.
    ///
    /// # Errors
    ///
    /// Returns an error if the `nodes` or `span` header is missing,
    /// malformed, or interleaved after contact lines.
    pub fn open(r: R) -> Result<StreamingTraceSource<R>, TraceIoError> {
        let mut lines = r.lines();
        let mut line_no = 0usize;
        let mut nodes: Option<usize> = None;
        let mut span: Option<SimTime> = None;
        while nodes.is_none() || span.is_none() {
            let Some(line) = lines.next() else {
                return Err(TraceIoError::Invalid(
                    "missing `nodes`/`span` header".into(),
                ));
            };
            line_no += 1;
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next().expect("non-empty line has a first token") {
                "nodes" => {
                    let v = parts
                        .next()
                        .ok_or_else(|| parse_err(line_no, ParseErrorKind::Missing("node count")))?;
                    nodes = Some(
                        v.parse::<usize>()
                            .map_err(|_| parse_err(line_no, number_kind("node count", v)))?,
                    );
                }
                "span" => {
                    let v = parts
                        .next()
                        .ok_or_else(|| parse_err(line_no, ParseErrorKind::Missing("span")))?;
                    let secs = v
                        .parse::<f64>()
                        .map_err(|_| parse_err(line_no, number_kind("span", v)))?;
                    span = Some(
                        SimTime::try_from_secs(secs)
                            .map_err(|e| parse_err(line_no, time_kind("span", &e)))?,
                    );
                }
                _ => {
                    return Err(parse_err(line_no, ParseErrorKind::HeaderFirst));
                }
            }
        }
        Ok(StreamingTraceSource {
            lines,
            line_no,
            nodes: nodes.expect("loop exits with nodes set"),
            span: span.expect("loop exits with span set"),
            done: false,
            error: None,
        })
    }

    /// The error that terminated the stream early, if any.
    #[must_use]
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    fn parse_contact(&mut self, line: &str) -> Result<Contact, TraceIoError> {
        let line_no = self.line_no;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(parse_err(
                line_no,
                ParseErrorKind::FieldCount {
                    expected: "`a b start end`",
                    got: fields.len(),
                },
            ));
        }
        let a: u32 = fields[0]
            .parse()
            .map_err(|_| parse_err(line_no, number_kind("node id", fields[0])))?;
        let b: u32 = fields[1]
            .parse()
            .map_err(|_| parse_err(line_no, number_kind("node id", fields[1])))?;
        for id in [a, b] {
            if id as usize >= self.nodes {
                return Err(parse_err(
                    line_no,
                    ParseErrorKind::NodeOutOfRange {
                        id: u64::from(id),
                        limit: self.nodes,
                    },
                ));
            }
        }
        let start: f64 = fields[2]
            .parse()
            .map_err(|_| parse_err(line_no, number_kind("start", fields[2])))?;
        let end: f64 = fields[3]
            .parse()
            .map_err(|_| parse_err(line_no, number_kind("end", fields[3])))?;
        let start = SimTime::try_from_secs(start)
            .map_err(|e| parse_err(line_no, time_kind("start", &e)))?;
        let end =
            SimTime::try_from_secs(end).map_err(|e| parse_err(line_no, time_kind("end", &e)))?;
        if end > self.span {
            return Err(parse_err(line_no, ParseErrorKind::PastSpan));
        }
        Contact::new(NodeId(a), NodeId(b), start, end)
            .map_err(|e| parse_err(line_no, ParseErrorKind::Contact(e)))
    }
}

impl<R: BufRead> ContactSource for StreamingTraceSource<R> {
    fn node_count(&self) -> usize {
        self.nodes
    }

    fn span(&self) -> SimTime {
        self.span
    }

    fn next_contact(&mut self) -> Option<Contact> {
        while !self.done {
            let Some(line) = self.lines.next() else {
                self.done = true;
                break;
            };
            self.line_no += 1;
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    self.error = Some(TraceIoError::Io(e));
                    self.done = true;
                    break;
                }
            };
            let line = line.trim().to_owned();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match self.parse_contact(&line) {
                Ok(c) => return Some(c),
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                }
            }
        }
        None
    }

    fn last_contact(&self) -> LastContact {
        LastContact::Unknown
    }
}

/// Reads a trace in the ONE simulator's connectivity-report format:
///
/// ```text
/// 120.5 CONN 3 17 up
/// 188.0 CONN 3 17 down
/// ```
///
/// Events must be in non-decreasing time order (as ONE emits them). Node
/// ids must be non-negative integers; the node count is inferred as
/// `max id + 1`. Connections still up at the end of input are closed at
/// the last event time.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] for malformed lines, a `down` without a
/// matching `up`, or a duplicate `up`; [`TraceIoError::Invalid`] if the
/// resulting trace violates trace invariants.
pub fn read_one_report<R: BufRead>(r: R) -> Result<ContactTrace, TraceIoError> {
    use std::collections::HashMap;

    let mut open: HashMap<(u32, u32), SimTime> = HashMap::new();
    let mut contacts = Vec::new();
    let mut max_node = 0u32;
    let mut last_time = SimTime::ZERO;

    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(parse_err(
                line_no,
                ParseErrorKind::FieldCount {
                    expected: "`<time> CONN <a> <b> up|down`",
                    got: fields.len(),
                },
            ));
        }
        if fields[1] != "CONN" {
            return Err(parse_err(
                line_no,
                ParseErrorKind::Token {
                    field: "record type (expected CONN)",
                    token: fields[1].to_owned(),
                },
            ));
        }
        let time_secs: f64 = fields[0]
            .parse()
            .map_err(|_| parse_err(line_no, number_kind("time", fields[0])))?;
        let time = SimTime::try_from_secs(time_secs)
            .map_err(|e| parse_err(line_no, time_kind("time", &e)))?;
        if time < last_time {
            return Err(parse_err(line_no, ParseErrorKind::OutOfOrder));
        }
        last_time = time;
        let a: u32 = fields[2]
            .parse()
            .map_err(|_| parse_err(line_no, number_kind("node id", fields[2])))?;
        let b: u32 = fields[3]
            .parse()
            .map_err(|_| parse_err(line_no, number_kind("node id", fields[3])))?;
        if a == b {
            return Err(parse_err(
                line_no,
                ParseErrorKind::Contact(ContactError::SelfContact),
            ));
        }
        max_node = max_node.max(a).max(b);
        let key = if a < b { (a, b) } else { (b, a) };
        match fields[4] {
            "up" => {
                if open.insert(key, time).is_some() {
                    return Err(parse_err(line_no, ParseErrorKind::DuplicateUp));
                }
            }
            "down" => {
                let start = open
                    .remove(&key)
                    .ok_or_else(|| parse_err(line_no, ParseErrorKind::OrphanDown))?;
                if time > start {
                    contacts.push(
                        Contact::new(NodeId(key.0), NodeId(key.1), start, time)
                            .expect("validated interval"),
                    );
                }
            }
            other => {
                return Err(parse_err(
                    line_no,
                    ParseErrorKind::Token {
                        field: "event (expected up|down)",
                        token: other.to_owned(),
                    },
                ));
            }
        }
    }

    // Close dangling connections at the last event time.
    for ((a, b), start) in open {
        if last_time > start {
            contacts.push(
                Contact::new(NodeId(a), NodeId(b), start, last_time).expect("validated interval"),
            );
        }
    }

    TraceBuilder::new(max_node as usize + 1)
        .contacts(contacts)
        .build()
        .map_err(|e| TraceIoError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ContactTrace {
        TraceBuilder::new(4)
            .span(SimTime::from_secs(100.0))
            .contact(
                Contact::new(
                    NodeId(0),
                    NodeId(1),
                    SimTime::from_secs(1.5),
                    SimTime::from_secs(3.25),
                )
                .unwrap(),
            )
            .contact(
                Contact::new(
                    NodeId(2),
                    NodeId(3),
                    SimTime::from_secs(10.0),
                    SimTime::from_secs(20.0),
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn reads_comments_and_blank_lines() {
        let text = "# a comment\n\nnodes 2\nspan 50\n# another\n0 1 1 2\n";
        let trace = read_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.node_count(), 2);
        assert_eq!(trace.span(), SimTime::from_secs(50.0));
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn missing_nodes_header_is_invalid() {
        let err = read_trace("0 1 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Invalid(_)), "{err}");
    }

    #[test]
    fn reports_line_numbers() {
        let text = "nodes 2\n0 1 oops 2\n";
        match read_trace(text.as_bytes()).unwrap_err() {
            TraceIoError::Parse(e) => {
                assert_eq!(e.line, 2);
                assert!(matches!(
                    e.kind,
                    ParseErrorKind::Number { field: "start", .. }
                ));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_wrong_field_count() {
        let text = "nodes 2\n0 1 5\n";
        match read_trace(text.as_bytes()).unwrap_err() {
            TraceIoError::Parse(e) => {
                assert!(matches!(e.kind, ParseErrorKind::FieldCount { got: 3, .. }));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_self_contact_line() {
        let text = "nodes 2\n1 1 0 5\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse(e) => {
                assert_eq!(e.kind, ParseErrorKind::Contact(ContactError::SelfContact));
                assert!(e.to_string().contains("same node"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_out_of_range_node() {
        let text = "nodes 2\n0 9 0 5\n";
        assert!(matches!(
            read_trace(text.as_bytes()).unwrap_err(),
            TraceIoError::Invalid(_)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = parse_err(7, ParseErrorKind::PastSpan);
        let rendered = e.to_string();
        assert!(rendered.contains("line 7"), "{rendered}");
        assert!(rendered.contains("past span"), "{rendered}");
    }

    #[test]
    fn one_report_basic() {
        let text = "\
10 CONN 0 3 up
20 CONN 1 2 up
25 CONN 0 3 down
40 CONN 1 2 down
";
        let trace = read_one_report(text.as_bytes()).unwrap();
        assert_eq!(trace.node_count(), 4);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.contacts()[0].pair(), (NodeId(0), NodeId(3)));
        assert_eq!(trace.contacts()[0].duration().as_secs(), 15.0);
        assert_eq!(trace.span(), SimTime::from_secs(40.0));
    }

    #[test]
    fn one_report_closes_dangling_connections() {
        let text = "10 CONN 0 1 up\n50 CONN 2 3 up\n60 CONN 2 3 down\n";
        let trace = read_one_report(text.as_bytes()).unwrap();
        // 0-1 closed at the last event time (60).
        assert_eq!(trace.len(), 2);
        let c01 = trace
            .contacts()
            .iter()
            .find(|c| c.pair() == (NodeId(0), NodeId(1)))
            .unwrap();
        assert_eq!(c01.end(), SimTime::from_secs(60.0));
    }

    #[test]
    fn one_report_rejects_orphan_down() {
        let err = read_one_report("10 CONN 0 1 down\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("without matching"));
    }

    #[test]
    fn one_report_rejects_duplicate_up() {
        let text = "10 CONN 0 1 up\n20 CONN 1 0 up\n";
        let err = read_one_report(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn one_report_rejects_time_regression() {
        let text = "20 CONN 0 1 up\n10 CONN 0 1 down\n";
        let err = read_one_report(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("time order"));
    }

    #[test]
    fn one_report_rejects_malformed_lines() {
        assert!(read_one_report("banana\n".as_bytes()).is_err());
        assert!(read_one_report("10 LINK 0 1 up\n".as_bytes()).is_err());
        assert!(read_one_report("10 CONN 0 1 sideways\n".as_bytes()).is_err());
        assert!(read_one_report("10 CONN 1 1 up\n".as_bytes()).is_err());
    }

    #[test]
    fn one_report_accepts_comments_and_blanks() {
        let text = "# Scenario X\n\n5 CONN 0 1 up\n9 CONN 0 1 down\n";
        let trace = read_one_report(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn streaming_source_yields_the_same_contacts_as_read_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let mut src = StreamingTraceSource::open(buf.as_slice()).unwrap();
        assert_eq!(src.node_count(), trace.node_count());
        assert_eq!(src.span(), trace.span());
        let streamed: Vec<Contact> = std::iter::from_fn(|| src.next_contact()).collect();
        assert_eq!(streamed, trace.contacts());
        assert!(src.error().is_none());
        assert_eq!(src.next_contact(), None, "stays exhausted");
    }

    #[test]
    fn streaming_source_skips_comments_and_blanks() {
        let text = "# header\nnodes 2\nspan 50\n# mid\n\n0 1 1 2\n\n0 1 5 6\n";
        let mut src = StreamingTraceSource::open(text.as_bytes()).unwrap();
        let streamed: Vec<Contact> = std::iter::from_fn(|| src.next_contact()).collect();
        assert_eq!(streamed.len(), 2);
        assert!(src.error().is_none());
    }

    #[test]
    fn streaming_source_requires_header_first() {
        let err = StreamingTraceSource::open("0 1 1 2\nnodes 2\nspan 50\n".as_bytes()).unwrap_err();
        assert!(
            matches!(
                &err,
                TraceIoError::Parse(ParseError {
                    line: 1,
                    kind: ParseErrorKind::HeaderFirst,
                })
            ),
            "{err}"
        );
        let err = StreamingTraceSource::open("nodes 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Invalid(_)), "{err}");
    }

    #[test]
    fn streaming_source_records_parse_errors_and_stops() {
        let text = "nodes 2\nspan 50\n0 1 1 2\n0 1 oops 9\n0 1 10 11\n";
        let mut src = StreamingTraceSource::open(text.as_bytes()).unwrap();
        assert!(src.next_contact().is_some());
        // The malformed line ends the stream; the valid line after it is
        // never reached.
        assert_eq!(src.next_contact(), None);
        assert_eq!(src.next_contact(), None);
        match src.error() {
            Some(TraceIoError::Parse(e)) => assert_eq!(e.line, 4),
            other => panic!("expected recorded parse error, got {other:?}"),
        }
    }

    #[test]
    fn streaming_source_rejects_out_of_range_and_past_span() {
        let text = "nodes 2\nspan 50\n0 9 1 2\n";
        let mut src = StreamingTraceSource::open(text.as_bytes()).unwrap();
        assert_eq!(src.next_contact(), None);
        match src.error() {
            Some(TraceIoError::Parse(e)) => {
                assert_eq!(e.kind, ParseErrorKind::NodeOutOfRange { id: 9, limit: 2 })
            }
            other => panic!("expected out-of-range error, got {other:?}"),
        }

        let text = "nodes 2\nspan 50\n0 1 40 60\n";
        let mut src = StreamingTraceSource::open(text.as_bytes()).unwrap();
        assert_eq!(src.next_contact(), None);
        match src.error() {
            Some(TraceIoError::Parse(e)) => assert_eq!(e.kind, ParseErrorKind::PastSpan),
            other => panic!("expected past-span error, got {other:?}"),
        }
    }

    #[test]
    fn streaming_source_drives_a_contact_driver() {
        use crate::ContactDriver;
        use omn_sim::{Engine, EventClass, RngFactory};

        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let src = StreamingTraceSource::open(buf.as_slice()).unwrap();
        let mut driver = ContactDriver::from_source(src, None, &RngFactory::new(1));
        let mut engine: Engine<usize> = Engine::new();
        driver.begin(&mut engine, EventClass(60), |i| i);
        let mut starts = Vec::new();
        while let Some(ev) = engine.next_event() {
            driver.advance(ev.payload, &mut engine, EventClass(60), |i| i);
            starts.push(driver.contact(ev.payload).start());
        }
        let expected: Vec<SimTime> = trace.contacts().iter().map(Contact::start).collect();
        assert_eq!(starts, expected);
    }
}
