//! Mobility and contact-trace substrate for opportunistic mobile networks.
//!
//! Opportunistic (delay/disruption-tolerant) mobile networks are driven by
//! *contacts*: intervals during which two devices are within radio range and
//! can exchange data. Everything above this crate — routing, cooperative
//! caching, cache-freshness maintenance — consumes a [`ContactTrace`].
//!
//! The crate provides:
//!
//! * [`Contact`] / [`ContactTrace`] — validated contact intervals and trace
//!   containers with timeline iteration, windowing and time scaling.
//! * [`io`] — a plain-text trace format with round-trip read/write.
//! * [`TraceStats`] — aggregate trace characteristics (inter-contact times,
//!   contact durations, degrees) used to produce trace-summary tables.
//! * [`ContactGraph`] — the pairwise contact-rate graph with expected-delay
//!   shortest paths and the centrality metrics used for Network Central
//!   Location (NCL) selection.
//! * [`estimate`] — online pairwise contact-rate estimators (cumulative MLE,
//!   EWMA, sliding window) that protocol nodes maintain from observed
//!   contacts.
//! * [`ContactSource`] — an ordered contact stream pulled lazily: a cursor
//!   over a materialized trace ([`TraceSource`]), a line-by-line file
//!   reader ([`io::StreamingTraceSource`]), or a sharded large-N generator
//!   ([`synth::sharded::ShardedCommunitySource`]) whose resident memory is
//!   O(shards) instead of O(contacts).
//! * [`ContactDriver`] — the shared contact feed for the event kernel: it
//!   pulls contacts from a [`ContactSource`] (scheduling each into the
//!   [`Engine`](omn_sim::Engine) as the run unfolds, or priming everything
//!   up front) and classifies each contact's fate (deliverable, down,
//!   blocked) under the active fault plan, so every simulator applies
//!   faults with identical semantics.
//! * [`faults`] — deterministic fault injection ([`faults::FaultPlan`]):
//!   transmission loss, contact truncation, node churn with rejoin,
//!   permanent departures, and lagged estimator observations, all seeded
//!   from dedicated [`RngFactory`](omn_sim::RngFactory) streams.
//! * [`synth`] — synthetic mobility generators (heterogeneous pairwise
//!   Poisson, community-structured, grid-cell random walk, diurnal
//!   modulation) with presets calibrated to the published statistics of the
//!   MIT Reality and Haggle/Infocom'06 traces that the reproduced paper
//!   evaluates on.
//!
//! # Example
//!
//! ```
//! use omn_contacts::synth::{PairwiseConfig, generate_pairwise};
//! use omn_contacts::TraceStats;
//! use omn_sim::RngFactory;
//!
//! let config = PairwiseConfig::new(20, omn_sim::SimDuration::from_days(2.0));
//! let trace = generate_pairwise(&config, &RngFactory::new(1));
//! let stats = TraceStats::compute(&trace);
//! assert_eq!(stats.node_count, 20);
//! assert!(stats.total_contacts > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod contact;
mod driver;
pub mod estimate;
pub mod faults;
mod graph;
pub mod io;
pub mod link;
pub mod source;
mod stats;
pub mod synth;
pub mod temporal;
mod trace;

pub use contact::{Contact, ContactError, NodeId};
pub use driver::{ContactDriver, ContactFate, TransferOutcome};
pub use graph::{Centrality, ContactGraph};
pub use link::{LinkEvent, LinkEventKind, LinkEvents};
pub use source::{ContactSource, LastContact, TraceSource};
pub use stats::TraceStats;
pub use trace::{ContactTrace, TimelineEvent, TimelineKind, TraceBuilder, TraceError};
