//! Trace presets calibrated to the published statistics of the real traces
//! the reproduced paper evaluates on.
//!
//! The real *MIT Reality* (Eagle & Pentland) and *Haggle/Infocom'06*
//! (Chaintreau et al.) traces are not redistributable, so these presets
//! generate synthetic traces matched to their published aggregate
//! characteristics:
//!
//! | trace | nodes | span (scaled) | texture |
//! |---|---|---|---|
//! | MIT Reality | 97 | 9 months → 30 days | campus: strong communities, sparse (~5 contacts/node/day), long diurnal troughs |
//! | Infocom'06 | 78 | ~3.9 days | conference: dense (>100 contacts/node/day), weak communities, strong diurnal |
//!
//! The Reality span is compressed so experiment campaigns stay tractable;
//! rates are set so the *per-day* contact intensity matches the original
//! rather than the total count.

use omn_sim::{RngFactory, SimDuration};

use crate::trace::ContactTrace;

use super::community::{generate_community, CommunityConfig};
use super::diurnal::{apply_diurnal, DiurnalProfile};

/// A named trace preset, convenient for iterating experiments over traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePreset {
    /// Campus-style trace modeled on MIT Reality.
    RealityLike,
    /// Conference-style trace modeled on Haggle/Infocom'06.
    InfocomLike,
}

impl TracePreset {
    /// All presets, in reporting order.
    pub const ALL: [TracePreset; 2] = [TracePreset::RealityLike, TracePreset::InfocomLike];

    /// Short display name used in experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TracePreset::RealityLike => "reality-like",
            TracePreset::InfocomLike => "infocom-like",
        }
    }

    /// Generates the preset trace.
    #[must_use]
    pub fn generate(self, factory: &RngFactory) -> ContactTrace {
        match self {
            TracePreset::RealityLike => reality_like(factory),
            TracePreset::InfocomLike => infocom_like(factory),
        }
    }

    /// Generates a reduced-size variant (fewer nodes, shorter span) with the
    /// same texture, for fast tests and micro-benchmarks.
    #[must_use]
    pub fn generate_small(self, factory: &RngFactory) -> ContactTrace {
        match self {
            TracePreset::RealityLike => reality_like_with(24, 7.0, factory),
            TracePreset::InfocomLike => infocom_like_with(20, 2.0, factory),
        }
    }
}

impl std::fmt::Display for TracePreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A campus-style trace modeled on MIT Reality: 97 nodes over 30 days,
/// strong community structure (5 groups), ~5 contacts per node per day,
/// 5-minute mean contact duration, standard diurnal profile.
#[must_use]
pub fn reality_like(factory: &RngFactory) -> ContactTrace {
    reality_like_with(97, 30.0, factory)
}

/// [`reality_like`] with custom node count and span in days.
///
/// # Panics
///
/// Panics if `nodes == 0` or `days <= 0`.
#[must_use]
pub fn reality_like_with(nodes: usize, days: f64, factory: &RngFactory) -> ContactTrace {
    assert!(days > 0.0, "reality_like_with: days must be positive");
    let communities = (nodes / 20).max(2);
    let config = CommunityConfig::new(nodes, communities, SimDuration::from_days(days))
        // Intra-community pairs meet about every 3.5 days; inter-community
        // pairs an order of magnitude less. Combined with the diurnal factor
        // this lands at ~5 contacts/node/day for the full-size preset,
        // matching Reality's published intensity.
        .intra_mean_rate(3.3e-6)
        .inter_mean_rate(2.8e-7)
        .rate_shape(0.7)
        .mean_contact_duration(SimDuration::from_secs(300.0));
    let base = generate_community(&config, factory);
    apply_diurnal(&base, DiurnalProfile::standard_day(), factory)
}

/// A conference-style trace modeled on Haggle/Infocom'06: 78 nodes over
/// ~3.9 days, dense contacts, weak community structure (parallel session
/// tracks), 2.5-minute mean contacts, strong diurnal profile.
#[must_use]
pub fn infocom_like(factory: &RngFactory) -> ContactTrace {
    infocom_like_with(78, 3.9, factory)
}

/// [`infocom_like`] with custom node count and span in days.
///
/// # Panics
///
/// Panics if `nodes == 0` or `days <= 0`.
#[must_use]
pub fn infocom_like_with(nodes: usize, days: f64, factory: &RngFactory) -> ContactTrace {
    assert!(days > 0.0, "infocom_like_with: days must be positive");
    let communities = (nodes / 20).max(2);
    let config = CommunityConfig::new(nodes, communities, SimDuration::from_days(days))
        // Conference density: same-track attendees meet every ~4.5 hours;
        // cross-track every ~14 hours.
        .intra_mean_rate(6.0e-5)
        .inter_mean_rate(2.0e-5)
        .rate_shape(1.2)
        .mean_contact_duration(SimDuration::from_secs(150.0));
    let base = generate_community(&config, factory);
    // Conference days run long but the venue empties at night.
    let profile = DiurnalProfile::new(SimDuration::from_hours(24.0), 0.58, 0.05);
    apply_diurnal(&base, profile, factory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn reality_like_matches_calibration_band() {
        let trace = reality_like(&RngFactory::new(1));
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.node_count, 97);
        assert!((stats.span.as_days() - 30.0).abs() < 1e-9);
        assert!(
            (2.0..=9.0).contains(&stats.contacts_per_node_per_day),
            "contacts/node/day = {}",
            stats.contacts_per_node_per_day
        );
    }

    #[test]
    fn infocom_like_matches_calibration_band() {
        let trace = infocom_like(&RngFactory::new(1));
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.node_count, 78);
        assert!(
            stats.contacts_per_node_per_day > 40.0,
            "conference should be dense, got {}",
            stats.contacts_per_node_per_day
        );
        // Denser than the campus trace by an order of magnitude.
        let campus = TraceStats::compute(&reality_like(&RngFactory::new(1)));
        assert!(stats.contacts_per_node_per_day > 5.0 * campus.contacts_per_node_per_day);
    }

    #[test]
    fn small_variants_are_small() {
        let f = RngFactory::new(2);
        for preset in TracePreset::ALL {
            let small = preset.generate_small(&f);
            assert!(small.node_count() <= 24);
            assert!(!small.is_empty(), "{preset} small variant is empty");
        }
    }

    #[test]
    fn preset_names() {
        assert_eq!(TracePreset::RealityLike.name(), "reality-like");
        assert_eq!(TracePreset::InfocomLike.to_string(), "infocom-like");
    }

    #[test]
    fn presets_are_deterministic() {
        let f = RngFactory::new(77);
        assert_eq!(
            reality_like_with(20, 5.0, &f),
            reality_like_with(20, 5.0, &f)
        );
    }
}
