//! Working-day mobility: contacts from daily human routines.
//!
//! A simplified working-day movement model (after Ekman et al.): every
//! node cycles daily through *home → office → (sometimes) an evening
//! spot → home*. Offices are shared by groups of colleagues and evening
//! spots by random subsets, so contacts arise from co-location:
//! colleagues meet every workday for hours, strangers only occasionally at
//! evening spots, and nights are silent. This produces the diurnal and
//! community structure of campus traces *mechanistically*, rather than by
//! thinning a rate process.

use omn_sim::{RngFactory, SimDuration, SimTime};
use rand::Rng;

use crate::contact::{Contact, NodeId};
use crate::trace::{ContactTrace, TraceBuilder};

/// Configuration for the working-day model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkingDayConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of offices; node `i` works at office `i % offices`.
    pub offices: usize,
    /// Number of evening spots shared by everyone.
    pub spots: usize,
    /// Number of simulated days.
    pub days: usize,
    /// Probability a node goes out in the evening on a given day.
    pub evening_probability: f64,
}

impl WorkingDayConfig {
    /// Defaults: 4 offices, 3 evening spots, 50% evenings out.
    ///
    /// # Panics
    ///
    /// Panics if `nodes`, `offices`, `spots`, or `days` is zero, or
    /// `offices > nodes`.
    #[must_use]
    pub fn new(nodes: usize, days: usize) -> WorkingDayConfig {
        assert!(nodes > 0, "WorkingDayConfig: no nodes");
        assert!(days > 0, "WorkingDayConfig: no days");
        WorkingDayConfig {
            nodes,
            offices: 4.min(nodes),
            spots: 3,
            days,
            evening_probability: 0.5,
        }
    }

    /// Sets the office count.
    ///
    /// # Panics
    ///
    /// Panics if `offices` is zero or exceeds the node count.
    #[must_use]
    pub fn offices(mut self, offices: usize) -> WorkingDayConfig {
        assert!(
            offices > 0 && offices <= self.nodes,
            "offices must be in 1..=nodes"
        );
        self.offices = offices;
        self
    }

    /// Sets the evening-spot count.
    ///
    /// # Panics
    ///
    /// Panics if `spots` is zero.
    #[must_use]
    pub fn spots(mut self, spots: usize) -> WorkingDayConfig {
        assert!(spots > 0, "need at least one spot");
        self.spots = spots;
        self
    }

    /// Sets the evening-outing probability.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    #[must_use]
    pub fn evening_probability(mut self, p: f64) -> WorkingDayConfig {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.evening_probability = p;
        self
    }

    /// The office of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    #[must_use]
    pub fn office_of(&self, node: NodeId) -> usize {
        assert!(node.index() < self.nodes, "node out of range");
        node.index() % self.offices
    }
}

/// A visit of one node to one shared location.
#[derive(Debug, Clone, Copy)]
struct Visit {
    node: u32,
    location: usize,
    start: f64,
    end: f64,
}

/// Generates a trace from the working-day model.
///
/// Deterministic given the factory: node `i`'s daily schedule draws from
/// stream `("wdm-node", i)`.
#[must_use]
pub fn generate_working_day(config: &WorkingDayConfig, factory: &RngFactory) -> ContactTrace {
    const DAY: f64 = 86_400.0;
    // Location ids: offices are 0..offices, spots follow.
    let spot_base = config.offices;

    let mut visits: Vec<Visit> = Vec::new();
    for node in 0..config.nodes {
        let mut rng = factory.stream_indexed("wdm-node", node as u64);
        let office = config.office_of(NodeId(node as u32));
        for day in 0..config.days {
            let base = day as f64 * DAY;
            // Arrive at the office between 08:00 and 10:00, leave between
            // 16:00 and 18:30.
            let arrive = base + rng.gen_range(8.0..10.0) * 3600.0;
            let leave = base + rng.gen_range(16.0..18.5) * 3600.0;
            visits.push(Visit {
                node: node as u32,
                location: office,
                start: arrive,
                end: leave,
            });
            // Evening outing: a shared spot for 1-3 hours after work.
            if rng.gen_bool(config.evening_probability) {
                let spot = spot_base + rng.gen_range(0..config.spots);
                let out = leave + rng.gen_range(0.25..1.0) * 3600.0;
                let back = out + rng.gen_range(1.0..3.0) * 3600.0;
                visits.push(Visit {
                    node: node as u32,
                    location: spot,
                    start: out,
                    end: back.min(base + DAY),
                });
            }
        }
    }

    // Co-location contacts: group visits per location, intersect pairwise.
    visits.sort_by(|a, b| {
        a.location
            .cmp(&b.location)
            .then(a.start.total_cmp(&b.start))
    });

    let mut contacts: Vec<Contact> = Vec::new();
    let mut i = 0;
    while i < visits.len() {
        let loc = visits[i].location;
        let mut j = i;
        while j < visits.len() && visits[j].location == loc {
            j += 1;
        }
        let group = &visits[i..j];
        for (gi, va) in group.iter().enumerate() {
            for vb in &group[gi + 1..] {
                if vb.start >= va.end {
                    break; // sorted by start: no later visit overlaps va
                }
                if va.node == vb.node {
                    continue;
                }
                let start = va.start.max(vb.start);
                let end = va.end.min(vb.end);
                if end > start {
                    contacts.push(
                        Contact::new(
                            NodeId(va.node),
                            NodeId(vb.node),
                            SimTime::from_secs(start),
                            SimTime::from_secs(end),
                        )
                        .expect("overlap is a valid interval"),
                    );
                }
            }
        }
        i = j;
    }

    TraceBuilder::new(config.nodes)
        .span(SimTime::ZERO + SimDuration::from_days(config.days as f64))
        .contacts(contacts)
        .build()
        .expect("generator produces valid traces")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn colleagues_meet_daily_strangers_rarely() {
        let cfg = WorkingDayConfig::new(24, 5)
            .offices(4)
            .evening_probability(0.3);
        let trace = generate_working_day(&cfg, &RngFactory::new(1));
        // Two colleagues (same office): ~5 long contacts.
        let colleagues = trace.pair_contact_count(NodeId(0), NodeId(4));
        assert!(colleagues >= 4, "colleagues met only {colleagues} times");
        // Cross-office pairs meet far less (evening spots only).
        let mut cross = 0usize;
        let mut cross_pairs = 0usize;
        for a in 0..24u32 {
            for b in (a + 1)..24u32 {
                if cfg.office_of(NodeId(a)) != cfg.office_of(NodeId(b)) {
                    cross += trace.pair_contact_count(NodeId(a), NodeId(b));
                    cross_pairs += 1;
                }
            }
        }
        let cross_per_pair = cross as f64 / cross_pairs as f64;
        assert!(
            cross_per_pair < colleagues as f64 / 2.0,
            "cross-office {cross_per_pair:.2} vs colleagues {colleagues}"
        );
    }

    #[test]
    fn nights_are_silent() {
        let cfg = WorkingDayConfig::new(20, 3);
        let trace = generate_working_day(&cfg, &RngFactory::new(2));
        for c in trace.contacts() {
            let hour_of_day = (c.start().as_secs() / 3600.0) % 24.0;
            assert!(
                (8.0..24.0).contains(&hour_of_day),
                "contact started at {hour_of_day:.1}h"
            );
        }
    }

    #[test]
    fn contact_durations_are_office_scale() {
        let cfg = WorkingDayConfig::new(16, 4).evening_probability(0.0);
        let trace = generate_working_day(&cfg, &RngFactory::new(3));
        let stats = TraceStats::compute(&trace);
        // With evenings off, every contact is an office co-location:
        // multi-hour durations.
        let dur = stats.contact_duration.unwrap();
        assert!(dur.mean > 3.0 * 3600.0, "mean duration {}s", dur.mean);
    }

    #[test]
    fn deterministic() {
        let cfg = WorkingDayConfig::new(15, 3);
        let f = RngFactory::new(9);
        assert_eq!(
            generate_working_day(&cfg, &f),
            generate_working_day(&cfg, &f)
        );
    }

    #[test]
    fn zero_evening_probability_isolates_offices() {
        let cfg = WorkingDayConfig::new(12, 4)
            .offices(3)
            .evening_probability(0.0);
        let trace = generate_working_day(&cfg, &RngFactory::new(5));
        for c in trace.contacts() {
            assert_eq!(
                cfg.office_of(c.a()),
                cfg.office_of(c.b()),
                "cross-office contact without evenings: {c}"
            );
        }
    }
}
