//! Sharded large-N community generation with O(shards) resident memory.
//!
//! The materializing generators ([`generate_pairwise`](super::generate_pairwise),
//! [`generate_community`](super::generate_community)) iterate every node
//! pair and hold every contact in a `Vec` — O(n²) work and O(contacts)
//! memory, which caps them at a few hundred nodes. This module scales the
//! community model to 10⁴–10⁵ nodes by generating each community's contact
//! stream *independently* and k-way-merging the streams by start time on
//! the fly:
//!
//! * each shard (a contiguous block of nodes, same assignment as
//!   [`CommunityConfig::community_of`](super::community::CommunityConfig::community_of))
//!   runs one aggregate Poisson process with rate `intra_rate × pairs(shard)`,
//!   picking a uniform intra-shard pair per arrival — statistically
//!   identical to per-pair Poisson processes, but with O(1) state;
//! * one bridge process with rate `bridge_rate × nodes` produces
//!   cross-shard contacts (a uniform node paired with a uniform node of a
//!   different shard);
//! * a binary heap keyed by `(start, end, pair)` — the
//!   [`TraceBuilder`](crate::TraceBuilder) sort key — merges the streams,
//!   so the streamed order equals the order a materialized-and-sorted
//!   trace would have.
//!
//! Each shard draws from its own indexed
//! [`RngFactory`](omn_sim::RngFactory) stream, so shard `s` produces the
//! same contacts no matter how many other shards exist or how far the
//! merge has advanced.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use omn_sim::{RngFactory, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Exp};

use crate::contact::{Contact, NodeId};
use crate::source::{ContactSource, LastContact};
use crate::trace::{ContactTrace, TraceBuilder};

/// Configuration for the sharded community generator.
///
/// Unlike [`CommunityConfig`](super::community::CommunityConfig) (which
/// draws a persistent Gamma rate per pair and therefore needs O(n²) work up
/// front), rates here are uniform within a class: every intra-shard pair
/// meets at `intra_rate`, and cross-shard contacts arrive at `bridge_rate`
/// per node. That trade keeps per-shard generator state O(1), which is what
/// makes 10⁴+-node streams possible.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedCommunityConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of shards (communities); nodes are split into contiguous
    /// blocks of near-equal size.
    pub shards: usize,
    /// Trace span.
    pub span: SimDuration,
    /// Contact rate of each intra-shard pair (contacts per second).
    pub intra_rate: f64,
    /// Rate of cross-shard contacts per node (contacts per second). With a
    /// single shard there are no cross-shard pairs and this is ignored.
    pub bridge_rate: f64,
    /// Mean contact duration (exponentially distributed, clipped to the
    /// span).
    pub mean_contact_duration: SimDuration,
}

impl ShardedCommunityConfig {
    /// Defaults: intra-shard pairs meet every 2 hours on average, each node
    /// sees a cross-shard contact about once a day, 5-minute contacts.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `shards == 0`, `shards > nodes`, or `span`
    /// is zero.
    #[must_use]
    pub fn new(nodes: usize, shards: usize, span: SimDuration) -> ShardedCommunityConfig {
        assert!(nodes > 0, "ShardedCommunityConfig: need at least one node");
        assert!(
            shards > 0 && shards <= nodes,
            "ShardedCommunityConfig: need 1..=nodes shards"
        );
        assert!(!span.is_zero(), "ShardedCommunityConfig: zero span");
        ShardedCommunityConfig {
            nodes,
            shards,
            span,
            intra_rate: 1.0 / (2.0 * 3600.0),
            bridge_rate: 1.0 / (24.0 * 3600.0),
            mean_contact_duration: SimDuration::from_secs(300.0),
        }
    }

    /// Sets the intra-shard pair rate.
    #[must_use]
    pub fn intra_rate(mut self, rate: f64) -> ShardedCommunityConfig {
        assert!(rate >= 0.0 && rate.is_finite());
        self.intra_rate = rate;
        self
    }

    /// Sets the per-node cross-shard contact rate.
    #[must_use]
    pub fn bridge_rate(mut self, rate: f64) -> ShardedCommunityConfig {
        assert!(rate >= 0.0 && rate.is_finite());
        self.bridge_rate = rate;
        self
    }

    /// Sets the mean contact duration.
    #[must_use]
    pub fn mean_contact_duration(mut self, d: SimDuration) -> ShardedCommunityConfig {
        assert!(d.as_secs() > 0.0);
        self.mean_contact_duration = d;
        self
    }

    /// The shard of a node — same contiguous-block assignment as
    /// [`CommunityConfig::community_of`](super::community::CommunityConfig::community_of).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> usize {
        assert!(node.index() < self.nodes, "node out of range");
        node.index() * self.shards / self.nodes
    }

    /// The contiguous node-index range `[start, end)` of shard `s`.
    #[must_use]
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        assert!(s < self.shards, "shard out of range");
        let start = (s * self.nodes).div_ceil(self.shards);
        let end = ((s + 1) * self.nodes).div_ceil(self.shards);
        (start, end)
    }
}

/// Decodes a linear unordered-pair index `k ∈ [0, m(m-1)/2)` over `m`
/// nodes into `(i, j)` with `i < j`.
fn decode_pair(mut k: usize, m: usize) -> (usize, usize) {
    for i in 0..m {
        let row = m - 1 - i;
        if k < row {
            return (i, i + 1 + k);
        }
        k -= row;
    }
    unreachable!("pair index {k} out of range for {m} nodes")
}

/// What population one generator stream draws its pairs from.
#[derive(Debug)]
enum StreamKind {
    /// Intra-shard: uniform pair within `[first, first + len)`.
    Intra { first: usize, len: usize },
    /// Cross-shard bridge: uniform node, paired with a uniform node of a
    /// different shard.
    Bridge { nodes: usize },
}

/// One aggregate Poisson contact stream with O(1) state.
#[derive(Debug)]
struct ShardStream {
    rng: StdRng,
    /// Time of the most recent arrival (seconds).
    t: f64,
    gap: Exp,
    dur: Exp,
    span_secs: f64,
    kind: StreamKind,
}

impl ShardStream {
    fn next(&mut self, config: &ShardedCommunityConfig) -> Option<Contact> {
        loop {
            self.t += self.gap.sample(&mut self.rng);
            if self.t >= self.span_secs {
                return None;
            }
            let (a, b) = match self.kind {
                StreamKind::Intra { first, len } => {
                    let pairs = len * (len - 1) / 2;
                    let (i, j) = decode_pair(self.rng.gen_range(0..pairs), len);
                    (first + i, first + j)
                }
                StreamKind::Bridge { nodes } => {
                    let a = self.rng.gen_range(0..nodes);
                    let (lo, hi) = config.shard_range(config.shard_of(NodeId(a as u32)));
                    // Uniform over nodes outside a's shard, skipping the
                    // shard's contiguous block.
                    let other = self.rng.gen_range(0..nodes - (hi - lo));
                    let b = if other < lo { other } else { other + (hi - lo) };
                    (a, b)
                }
            };
            let end = (self.t + self.dur.sample(&mut self.rng)).min(self.span_secs);
            if end <= self.t {
                continue;
            }
            return Some(
                Contact::new(
                    NodeId(a as u32),
                    NodeId(b as u32),
                    SimTime::from_secs(self.t),
                    SimTime::from_secs(end),
                )
                .expect("generated interval is valid"),
            );
        }
    }
}

/// Heap entry: the next pending contact of one stream, min-ordered by the
/// `(start, end, pair)` trace sort key. Start/end are non-negative finite
/// floats, so their IEEE bit patterns order identically to the values.
#[derive(Debug, PartialEq, Eq)]
struct Pending {
    key: (u64, u64, u32, u32),
    stream: usize,
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then(self.stream.cmp(&other.stream))
    }
}

/// A streaming [`ContactSource`] over the sharded community model.
///
/// Resident state is one pending contact per live stream (≤ shards + 1),
/// independent of how many contacts the stream will ever produce.
#[derive(Debug)]
pub struct ShardedCommunitySource {
    config: ShardedCommunityConfig,
    streams: Vec<ShardStream>,
    /// The next pending contact of stream `i`, if it is not exhausted.
    pending: Vec<Option<Contact>>,
    heap: BinaryHeap<Reverse<Pending>>,
}

impl ShardedCommunitySource {
    /// Builds the per-shard streams and pulls each stream's first contact.
    ///
    /// Shard `s` draws from the factory stream `("sharded-community", s)`;
    /// the bridge process draws from `"sharded-bridge"`. Deterministic
    /// given the factory.
    #[must_use]
    pub fn new(config: &ShardedCommunityConfig, factory: &RngFactory) -> ShardedCommunitySource {
        let span_secs = config.span.as_secs();
        let mean_dur = config.mean_contact_duration.as_secs().max(1e-6);
        let dur = Exp::new(1.0 / mean_dur).expect("positive duration rate");

        let mut streams = Vec::new();
        for s in 0..config.shards {
            let (lo, hi) = config.shard_range(s);
            let len = hi - lo;
            let pairs = len * (len - 1) / 2;
            let total_rate = config.intra_rate * pairs as f64;
            if total_rate <= 0.0 {
                continue;
            }
            streams.push(ShardStream {
                rng: factory.stream_indexed("sharded-community", s as u64),
                t: 0.0,
                gap: Exp::new(total_rate).expect("positive rate"),
                dur,
                span_secs,
                kind: StreamKind::Intra { first: lo, len },
            });
        }
        let bridge_rate = config.bridge_rate * config.nodes as f64;
        if config.shards > 1 && bridge_rate > 0.0 {
            streams.push(ShardStream {
                rng: factory.stream("sharded-bridge"),
                t: 0.0,
                gap: Exp::new(bridge_rate).expect("positive rate"),
                dur,
                span_secs,
                kind: StreamKind::Bridge {
                    nodes: config.nodes,
                },
            });
        }

        let mut source = ShardedCommunitySource {
            config: config.clone(),
            pending: (0..streams.len()).map(|_| None).collect(),
            streams,
            heap: BinaryHeap::new(),
        };
        for i in 0..source.streams.len() {
            source.refill(i);
        }
        source
    }

    /// The configuration this source streams from.
    #[must_use]
    pub fn config(&self) -> &ShardedCommunityConfig {
        &self.config
    }

    /// Pulls stream `i`'s next contact into the merge heap.
    fn refill(&mut self, i: usize) {
        if let Some(c) = self.streams[i].next(&self.config) {
            self.pending[i] = Some(c);
            self.heap.push(Reverse(Pending {
                key: (
                    c.start().as_secs().to_bits(),
                    c.end().as_secs().to_bits(),
                    c.a().0,
                    c.b().0,
                ),
                stream: i,
            }));
        } else {
            self.pending[i] = None;
        }
    }
}

impl ContactSource for ShardedCommunitySource {
    fn node_count(&self) -> usize {
        self.config.nodes
    }

    fn span(&self) -> SimTime {
        SimTime::ZERO + self.config.span
    }

    fn next_contact(&mut self) -> Option<Contact> {
        let Reverse(Pending { stream, .. }) = self.heap.pop()?;
        let c = self.pending[stream]
            .take()
            .expect("heap entry has a pending contact");
        self.refill(stream);
        Some(c)
    }

    fn last_contact(&self) -> LastContact {
        LastContact::Unknown
    }

    fn resident_hint(&self) -> usize {
        self.heap.len()
    }
}

/// Materializes the full sharded-community trace by generating every
/// stream to completion and letting [`TraceBuilder`] sort — the monolithic
/// counterpart of [`ShardedCommunitySource`], used to verify that the
/// streaming k-way merge yields the identical contact sequence.
///
/// # Panics
///
/// Panics on internally inconsistent generator output (never expected).
#[must_use]
pub fn generate_sharded(config: &ShardedCommunityConfig, factory: &RngFactory) -> ContactTrace {
    let mut source = ShardedCommunitySource::new(config, factory);
    let mut contacts = Vec::new();
    // Drain stream by stream (not via the merge heap) so sorting is done
    // solely by TraceBuilder.
    for i in 0..source.streams.len() {
        if let Some(c) = source.pending[i].take() {
            contacts.push(c);
        }
        while let Some(c) = source.streams[i].next(&source.config) {
            contacts.push(c);
        }
    }
    TraceBuilder::new(config.nodes)
        .span(SimTime::ZERO + config.span)
        .contacts(contacts)
        .build()
        .expect("generator produces valid traces")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ShardedCommunityConfig {
        ShardedCommunityConfig::new(30, 3, SimDuration::from_hours(12.0))
    }

    #[test]
    fn streamed_merge_matches_materialized_trace() {
        let cfg = small_config();
        let factory = RngFactory::new(21);
        let mut src = ShardedCommunitySource::new(&cfg, &factory);
        let streamed: Vec<Contact> = std::iter::from_fn(|| src.next_contact()).collect();
        let trace = generate_sharded(&cfg, &factory);
        assert!(!streamed.is_empty());
        assert_eq!(streamed, trace.contacts());
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = small_config();
        let drain = |seed: u64| {
            let mut s = ShardedCommunitySource::new(&cfg, &RngFactory::new(seed));
            std::iter::from_fn(move || s.next_contact()).collect::<Vec<_>>()
        };
        assert_eq!(drain(3), drain(3));
        assert_ne!(drain(3), drain(4));
    }

    #[test]
    fn contacts_arrive_sorted_and_in_bounds() {
        let cfg = small_config();
        let mut src = ShardedCommunitySource::new(&cfg, &RngFactory::new(5));
        let mut prev: Option<Contact> = None;
        let mut count = 0usize;
        while let Some(c) = src.next_contact() {
            if let Some(p) = prev {
                assert!(
                    (p.start(), p.end(), p.pair()) <= (c.start(), c.end(), c.pair()),
                    "out of order: {p} then {c}"
                );
            }
            assert!(c.a().index() < cfg.nodes && c.b().index() < cfg.nodes);
            assert!(c.end() <= SimTime::ZERO + cfg.span);
            prev = Some(c);
            count += 1;
        }
        assert!(count > 0);
    }

    #[test]
    fn intra_shard_contacts_dominate() {
        let cfg = ShardedCommunityConfig::new(60, 6, SimDuration::from_days(1.0));
        let trace = generate_sharded(&cfg, &RngFactory::new(8));
        let intra = trace
            .contacts()
            .iter()
            .filter(|c| cfg.shard_of(c.a()) == cfg.shard_of(c.b()))
            .count();
        let inter = trace.len() - intra;
        assert!(intra > inter, "intra {intra} vs inter {inter}");
        assert!(inter > 0, "bridge process produced nothing");
    }

    #[test]
    fn resident_state_is_bounded_by_shards() {
        let cfg = ShardedCommunityConfig::new(1000, 20, SimDuration::from_hours(2.0));
        let mut src = ShardedCommunitySource::new(&cfg, &RngFactory::new(2));
        let mut peak = 0usize;
        let mut total = 0usize;
        while src.next_contact().is_some() {
            peak = peak.max(src.resident_hint());
            total += 1;
        }
        assert!(total > 1000, "expected a busy trace, got {total}");
        assert!(
            peak <= cfg.shards + 1,
            "resident {peak} exceeds shards+1 = {}",
            cfg.shards + 1
        );
    }

    #[test]
    fn single_shard_has_no_bridge_contacts() {
        let cfg = ShardedCommunityConfig::new(12, 1, SimDuration::from_hours(6.0));
        let trace = generate_sharded(&cfg, &RngFactory::new(9));
        assert!(!trace.is_empty());
        // All pairs are intra-shard by construction (shard_of is constant).
        assert!(trace
            .contacts()
            .iter()
            .all(|c| cfg.shard_of(c.a()) == 0 && cfg.shard_of(c.b()) == 0));
    }

    #[test]
    fn shard_ranges_partition_the_population() {
        let cfg = ShardedCommunityConfig::new(10, 3, SimDuration::from_hours(1.0));
        let mut covered = 0usize;
        for s in 0..cfg.shards {
            let (lo, hi) = cfg.shard_range(s);
            assert_eq!(lo, covered);
            covered = hi;
            for i in lo..hi {
                assert_eq!(cfg.shard_of(NodeId(i as u32)), s);
            }
        }
        assert_eq!(covered, cfg.nodes);
    }

    #[test]
    fn decode_pair_enumerates_all_pairs() {
        let m = 7;
        let mut seen = std::collections::HashSet::new();
        for k in 0..m * (m - 1) / 2 {
            let (i, j) = decode_pair(k, m);
            assert!(i < j && j < m);
            assert!(seen.insert((i, j)));
        }
        assert_eq!(seen.len(), m * (m - 1) / 2);
    }
}
