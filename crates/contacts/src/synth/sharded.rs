//! Sharded large-N community generation with O(shards) resident memory.
//!
//! The materializing generators ([`generate_pairwise`](super::generate_pairwise),
//! [`generate_community`](super::generate_community)) iterate every node
//! pair and hold every contact in a `Vec` — O(n²) work and O(contacts)
//! memory, which caps them at a few hundred nodes. This module scales the
//! community model to 10⁴–10⁵ nodes by generating each community's contact
//! stream *independently* and k-way-merging the streams by start time on
//! the fly:
//!
//! * each shard (a contiguous block of nodes, same assignment as
//!   [`CommunityConfig::community_of`](super::community::CommunityConfig::community_of))
//!   runs one aggregate Poisson process with rate `intra_rate × pairs(shard)`,
//!   picking a uniform intra-shard pair per arrival — statistically
//!   identical to per-pair Poisson processes, but with O(1) state;
//! * one bridge process with rate `bridge_rate × nodes` produces
//!   cross-shard contacts (a uniform node paired with a uniform node of a
//!   different shard);
//! * a binary heap keyed by `(start, end, pair)` — the
//!   [`TraceBuilder`](crate::TraceBuilder) sort key — merges the streams,
//!   so the streamed order equals the order a materialized-and-sorted
//!   trace would have.
//!
//! Each shard draws from its own indexed
//! [`RngFactory`](omn_sim::RngFactory) stream, so shard `s` produces the
//! same contacts no matter how many other shards exist or how far the
//! merge has advanced.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use omn_sim::{RngFactory, ShardWorker, ShardedRunner, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Exp};

use crate::contact::{Contact, NodeId};
use crate::source::{ContactSource, LastContact};
use crate::trace::{ContactTrace, TraceBuilder};

/// Configuration for the sharded community generator.
///
/// Unlike [`CommunityConfig`](super::community::CommunityConfig) (which
/// draws a persistent Gamma rate per pair and therefore needs O(n²) work up
/// front), rates here are uniform within a class: every intra-shard pair
/// meets at `intra_rate`, and cross-shard contacts arrive at `bridge_rate`
/// per node. That trade keeps per-shard generator state O(1), which is what
/// makes 10⁴+-node streams possible.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedCommunityConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of shards (communities); nodes are split into contiguous
    /// blocks of near-equal size.
    pub shards: usize,
    /// Trace span.
    pub span: SimDuration,
    /// Contact rate of each intra-shard pair (contacts per second).
    pub intra_rate: f64,
    /// Rate of cross-shard contacts per node (contacts per second). With a
    /// single shard there are no cross-shard pairs and this is ignored.
    pub bridge_rate: f64,
    /// Mean contact duration (exponentially distributed, clipped to the
    /// span).
    pub mean_contact_duration: SimDuration,
}

impl ShardedCommunityConfig {
    /// Defaults: intra-shard pairs meet every 2 hours on average, each node
    /// sees a cross-shard contact about once a day, 5-minute contacts.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `shards == 0`, `shards > nodes`, or `span`
    /// is zero.
    #[must_use]
    pub fn new(nodes: usize, shards: usize, span: SimDuration) -> ShardedCommunityConfig {
        assert!(nodes > 0, "ShardedCommunityConfig: need at least one node");
        assert!(
            shards > 0 && shards <= nodes,
            "ShardedCommunityConfig: need 1..=nodes shards"
        );
        assert!(!span.is_zero(), "ShardedCommunityConfig: zero span");
        ShardedCommunityConfig {
            nodes,
            shards,
            span,
            intra_rate: 1.0 / (2.0 * 3600.0),
            bridge_rate: 1.0 / (24.0 * 3600.0),
            mean_contact_duration: SimDuration::from_secs(300.0),
        }
    }

    /// Sets the intra-shard pair rate.
    #[must_use]
    pub fn intra_rate(mut self, rate: f64) -> ShardedCommunityConfig {
        assert!(rate >= 0.0 && rate.is_finite());
        self.intra_rate = rate;
        self
    }

    /// Sets the per-node cross-shard contact rate.
    #[must_use]
    pub fn bridge_rate(mut self, rate: f64) -> ShardedCommunityConfig {
        assert!(rate >= 0.0 && rate.is_finite());
        self.bridge_rate = rate;
        self
    }

    /// Sets the mean contact duration.
    #[must_use]
    pub fn mean_contact_duration(mut self, d: SimDuration) -> ShardedCommunityConfig {
        assert!(d.as_secs() > 0.0);
        self.mean_contact_duration = d;
        self
    }

    /// The shard of a node — same contiguous-block assignment as
    /// [`CommunityConfig::community_of`](super::community::CommunityConfig::community_of).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> usize {
        assert!(node.index() < self.nodes, "node out of range");
        node.index() * self.shards / self.nodes
    }

    /// The contiguous node-index range `[start, end)` of shard `s`.
    #[must_use]
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        assert!(s < self.shards, "shard out of range");
        let start = (s * self.nodes).div_ceil(self.shards);
        let end = ((s + 1) * self.nodes).div_ceil(self.shards);
        (start, end)
    }
}

/// Decodes a linear unordered-pair index `k ∈ [0, m(m-1)/2)` over `m`
/// nodes into `(i, j)` with `i < j`.
fn decode_pair(mut k: usize, m: usize) -> (usize, usize) {
    for i in 0..m {
        let row = m - 1 - i;
        if k < row {
            return (i, i + 1 + k);
        }
        k -= row;
    }
    unreachable!("pair index {k} out of range for {m} nodes")
}

/// What population one generator stream draws its pairs from.
#[derive(Debug)]
enum StreamKind {
    /// Intra-shard: uniform pair within `[first, first + len)`.
    Intra { first: usize, len: usize },
    /// Cross-shard bridge: uniform node, paired with a uniform node of a
    /// different shard.
    Bridge { nodes: usize },
}

/// One aggregate Poisson contact stream with O(1) state.
#[derive(Debug)]
struct ShardStream {
    rng: StdRng,
    /// Time of the most recent arrival (seconds).
    t: f64,
    gap: Exp,
    dur: Exp,
    span_secs: f64,
    kind: StreamKind,
    /// A generated contact held back because it starts at or after the
    /// current window boundary ([`ShardStream::next_in_window`]). `next`
    /// consumes it first, so windowed and unwindowed pulls see the exact
    /// same contact sequence.
    peeked: Option<Contact>,
}

impl ShardStream {
    fn next(&mut self, config: &ShardedCommunityConfig) -> Option<Contact> {
        if let Some(c) = self.peeked.take() {
            return Some(c);
        }
        self.generate(config)
    }

    /// The next contact iff it starts before `to_secs`; otherwise the
    /// contact is held back for the window that owns it. Per-stream starts
    /// are nondecreasing, so `None` means this window is complete.
    fn next_in_window(&mut self, config: &ShardedCommunityConfig, to_secs: f64) -> Option<Contact> {
        let c = self.next(config)?;
        if c.start().as_secs() < to_secs {
            Some(c)
        } else {
            self.peeked = Some(c);
            None
        }
    }

    fn generate(&mut self, config: &ShardedCommunityConfig) -> Option<Contact> {
        loop {
            self.t += self.gap.sample(&mut self.rng);
            if self.t >= self.span_secs {
                return None;
            }
            let (a, b) = match self.kind {
                StreamKind::Intra { first, len } => {
                    let pairs = len * (len - 1) / 2;
                    let (i, j) = decode_pair(self.rng.gen_range(0..pairs), len);
                    (first + i, first + j)
                }
                StreamKind::Bridge { nodes } => {
                    let a = self.rng.gen_range(0..nodes);
                    let (lo, hi) = config.shard_range(config.shard_of(NodeId(a as u32)));
                    // Uniform over nodes outside a's shard, skipping the
                    // shard's contiguous block.
                    let other = self.rng.gen_range(0..nodes - (hi - lo));
                    let b = if other < lo { other } else { other + (hi - lo) };
                    (a, b)
                }
            };
            let end = (self.t + self.dur.sample(&mut self.rng)).min(self.span_secs);
            if end <= self.t {
                continue;
            }
            return Some(
                Contact::new(
                    NodeId(a as u32),
                    NodeId(b as u32),
                    SimTime::from_secs(self.t),
                    SimTime::from_secs(end),
                )
                .expect("generated interval is valid"),
            );
        }
    }
}

/// Builds the per-shard aggregate streams plus the bridge stream.
///
/// Both merge front-ends ([`ShardedCommunitySource`] and
/// [`ParallelShardedSource`]) break `(start, end, pair)` key ties by stream
/// *index*, and zero-rate streams are skipped here, so the index assignment
/// must come from this one place for the two merges to order identically.
fn build_streams(config: &ShardedCommunityConfig, factory: &RngFactory) -> Vec<ShardStream> {
    let span_secs = config.span.as_secs();
    let mean_dur = config.mean_contact_duration.as_secs().max(1e-6);
    let dur = Exp::new(1.0 / mean_dur).expect("positive duration rate");

    let mut streams = Vec::new();
    for s in 0..config.shards {
        let (lo, hi) = config.shard_range(s);
        let len = hi - lo;
        let pairs = len * (len - 1) / 2;
        let total_rate = config.intra_rate * pairs as f64;
        if total_rate <= 0.0 {
            continue;
        }
        streams.push(ShardStream {
            rng: factory.stream_indexed("sharded-community", s as u64),
            t: 0.0,
            gap: Exp::new(total_rate).expect("positive rate"),
            dur,
            span_secs,
            kind: StreamKind::Intra { first: lo, len },
            peeked: None,
        });
    }
    let bridge_rate = config.bridge_rate * config.nodes as f64;
    if config.shards > 1 && bridge_rate > 0.0 {
        streams.push(ShardStream {
            rng: factory.stream("sharded-bridge"),
            t: 0.0,
            gap: Exp::new(bridge_rate).expect("positive rate"),
            dur,
            span_secs,
            kind: StreamKind::Bridge {
                nodes: config.nodes,
            },
            peeked: None,
        });
    }
    streams
}

/// Heap entry: the next pending contact of one stream, min-ordered by the
/// `(start, end, pair)` trace sort key. Start/end are non-negative finite
/// floats, so their IEEE bit patterns order identically to the values.
#[derive(Debug, PartialEq, Eq)]
struct Pending {
    key: (u64, u64, u32, u32),
    stream: usize,
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then(self.stream.cmp(&other.stream))
    }
}

/// A streaming [`ContactSource`] over the sharded community model.
///
/// Resident state is one pending contact per live stream (≤ shards + 1),
/// independent of how many contacts the stream will ever produce.
#[derive(Debug)]
pub struct ShardedCommunitySource {
    config: ShardedCommunityConfig,
    streams: Vec<ShardStream>,
    /// The next pending contact of stream `i`, if it is not exhausted.
    pending: Vec<Option<Contact>>,
    heap: BinaryHeap<Reverse<Pending>>,
}

impl ShardedCommunitySource {
    /// Builds the per-shard streams and pulls each stream's first contact.
    ///
    /// Shard `s` draws from the factory stream `("sharded-community", s)`;
    /// the bridge process draws from `"sharded-bridge"`. Deterministic
    /// given the factory.
    #[must_use]
    pub fn new(config: &ShardedCommunityConfig, factory: &RngFactory) -> ShardedCommunitySource {
        let streams = build_streams(config, factory);
        let mut source = ShardedCommunitySource {
            config: config.clone(),
            pending: (0..streams.len()).map(|_| None).collect(),
            streams,
            heap: BinaryHeap::new(),
        };
        for i in 0..source.streams.len() {
            source.refill(i);
        }
        source
    }

    /// The configuration this source streams from.
    #[must_use]
    pub fn config(&self) -> &ShardedCommunityConfig {
        &self.config
    }

    /// Pulls stream `i`'s next contact into the merge heap.
    fn refill(&mut self, i: usize) {
        if let Some(c) = self.streams[i].next(&self.config) {
            self.pending[i] = Some(c);
            self.heap.push(merge_key(&c, i));
        } else {
            self.pending[i] = None;
        }
    }
}

impl ContactSource for ShardedCommunitySource {
    fn node_count(&self) -> usize {
        self.config.nodes
    }

    fn span(&self) -> SimTime {
        SimTime::ZERO + self.config.span
    }

    fn next_contact(&mut self) -> Option<Contact> {
        let Reverse(Pending { stream, .. }) = self.heap.pop()?;
        let c = self.pending[stream]
            .take()
            .expect("heap entry has a pending contact");
        self.refill(stream);
        Some(c)
    }

    fn last_contact(&self) -> LastContact {
        LastContact::Unknown
    }

    fn resident_hint(&self) -> usize {
        self.heap.len()
    }
}

/// The merge-heap entry for stream `i`'s contact `c`.
fn merge_key(c: &Contact, stream: usize) -> Reverse<Pending> {
    Reverse(Pending {
        key: (
            c.start().as_secs().to_bits(),
            c.end().as_secs().to_bits(),
            c.a().0,
            c.b().0,
        ),
        stream,
    })
}

/// One sharded-community stream packaged as a [`ShardWorker`]: a window
/// fill drains the stream up to the window boundary.
#[derive(Debug)]
struct ContactShard {
    stream: ShardStream,
    config: ShardedCommunityConfig,
}

impl ShardWorker for ContactShard {
    type Item = Contact;

    fn fill(&mut self, _from: SimTime, to: SimTime, out: &mut Vec<Contact>) {
        while let Some(c) = self.stream.next_in_window(&self.config, to.as_secs()) {
            out.push(c);
        }
    }
}

/// A [`ContactSource`] over the sharded community model that generates the
/// per-shard streams window by window on a [`ShardedRunner`] — optionally
/// across a pool of OS threads — and k-way merges each window at the
/// barrier.
///
/// The merge replicates [`ShardedCommunitySource`]'s algorithm exactly:
/// each stream's window batch sits in a FIFO queue and only the queue
/// *heads* compete in the heap, so even same-key contacts emerge in each
/// stream's generation order. Windows partition contacts by start time and
/// the merge key leads with the start, so no window-`w+1` contact can ever
/// precede a window-`w` contact. The output is therefore bit-identical to
/// the serial source for any thread count and any window size.
#[derive(Debug)]
pub struct ParallelShardedSource {
    config: ShardedCommunityConfig,
    runner: ShardedRunner<ContactShard>,
    /// The current window's not-yet-merged contacts, one FIFO per stream.
    queues: Vec<VecDeque<Contact>>,
    heap: BinaryHeap<Reverse<Pending>>,
}

impl ParallelShardedSource {
    /// Builds the source with the default synchronization window of
    /// 1/64th of the span. `threads <= 1` generates windows inline on the
    /// calling thread (still bit-identical); larger values use that many
    /// OS threads with one window of read-ahead.
    #[must_use]
    pub fn new(
        config: &ShardedCommunityConfig,
        factory: &RngFactory,
        threads: usize,
    ) -> ParallelShardedSource {
        ParallelShardedSource::with_window(config, factory, threads, config.span / 64.0)
    }

    /// Like [`ParallelShardedSource::new`] with an explicit window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not strictly positive.
    #[must_use]
    pub fn with_window(
        config: &ShardedCommunityConfig,
        factory: &RngFactory,
        threads: usize,
        window: SimDuration,
    ) -> ParallelShardedSource {
        let streams = build_streams(config, factory);
        let queues = (0..streams.len()).map(|_| VecDeque::new()).collect();
        let workers = streams
            .into_iter()
            .map(|stream| ContactShard {
                stream,
                config: config.clone(),
            })
            .collect();
        let runner = ShardedRunner::new(workers, SimTime::ZERO + config.span, window, threads);
        ParallelShardedSource {
            config: config.clone(),
            runner,
            queues,
            heap: BinaryHeap::new(),
        }
    }

    /// The configuration this source streams from.
    #[must_use]
    pub fn config(&self) -> &ShardedCommunityConfig {
        &self.config
    }

    /// Advances to the next window with at least one contact, seeding the
    /// merge heap with each stream's queue head. Returns `false` once the
    /// span is exhausted.
    fn load_next_window(&mut self) -> bool {
        loop {
            let Some(w) = self.runner.next_window() else {
                return false;
            };
            let mut any = false;
            for (i, batch) in w.batches.into_iter().enumerate() {
                debug_assert!(self.queues[i].is_empty(), "window merged before refill");
                self.queues[i] = batch.into();
                if let Some(c) = self.queues[i].front() {
                    self.heap.push(merge_key(c, i));
                    any = true;
                }
            }
            if any {
                return true;
            }
        }
    }
}

impl ContactSource for ParallelShardedSource {
    fn node_count(&self) -> usize {
        self.config.nodes
    }

    fn span(&self) -> SimTime {
        SimTime::ZERO + self.config.span
    }

    fn next_contact(&mut self) -> Option<Contact> {
        if self.heap.is_empty() && !self.load_next_window() {
            return None;
        }
        let Reverse(Pending { stream, .. }) = self.heap.pop()?;
        let c = self.queues[stream]
            .pop_front()
            .expect("heap entry has a queued contact");
        if let Some(next) = self.queues[stream].front() {
            self.heap.push(merge_key(next, stream));
        }
        Some(c)
    }

    fn last_contact(&self) -> LastContact {
        LastContact::Unknown
    }

    fn resident_hint(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Materializes the full sharded-community trace by generating every
/// stream to completion and letting [`TraceBuilder`] sort — the monolithic
/// counterpart of [`ShardedCommunitySource`], used to verify that the
/// streaming k-way merge yields the identical contact sequence.
///
/// # Panics
///
/// Panics on internally inconsistent generator output (never expected).
#[must_use]
pub fn generate_sharded(config: &ShardedCommunityConfig, factory: &RngFactory) -> ContactTrace {
    let mut source = ShardedCommunitySource::new(config, factory);
    let mut contacts = Vec::new();
    // Drain stream by stream (not via the merge heap) so sorting is done
    // solely by TraceBuilder.
    for i in 0..source.streams.len() {
        if let Some(c) = source.pending[i].take() {
            contacts.push(c);
        }
        while let Some(c) = source.streams[i].next(&source.config) {
            contacts.push(c);
        }
    }
    TraceBuilder::new(config.nodes)
        .span(SimTime::ZERO + config.span)
        .contacts(contacts)
        .build()
        .expect("generator produces valid traces")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ShardedCommunityConfig {
        ShardedCommunityConfig::new(30, 3, SimDuration::from_hours(12.0))
    }

    #[test]
    fn streamed_merge_matches_materialized_trace() {
        let cfg = small_config();
        let factory = RngFactory::new(21);
        let mut src = ShardedCommunitySource::new(&cfg, &factory);
        let streamed: Vec<Contact> = std::iter::from_fn(|| src.next_contact()).collect();
        let trace = generate_sharded(&cfg, &factory);
        assert!(!streamed.is_empty());
        assert_eq!(streamed, trace.contacts());
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = small_config();
        let drain = |seed: u64| {
            let mut s = ShardedCommunitySource::new(&cfg, &RngFactory::new(seed));
            std::iter::from_fn(move || s.next_contact()).collect::<Vec<_>>()
        };
        assert_eq!(drain(3), drain(3));
        assert_ne!(drain(3), drain(4));
    }

    #[test]
    fn contacts_arrive_sorted_and_in_bounds() {
        let cfg = small_config();
        let mut src = ShardedCommunitySource::new(&cfg, &RngFactory::new(5));
        let mut prev: Option<Contact> = None;
        let mut count = 0usize;
        while let Some(c) = src.next_contact() {
            if let Some(p) = prev {
                assert!(
                    (p.start(), p.end(), p.pair()) <= (c.start(), c.end(), c.pair()),
                    "out of order: {p} then {c}"
                );
            }
            assert!(c.a().index() < cfg.nodes && c.b().index() < cfg.nodes);
            assert!(c.end() <= SimTime::ZERO + cfg.span);
            prev = Some(c);
            count += 1;
        }
        assert!(count > 0);
    }

    #[test]
    fn intra_shard_contacts_dominate() {
        let cfg = ShardedCommunityConfig::new(60, 6, SimDuration::from_days(1.0));
        let trace = generate_sharded(&cfg, &RngFactory::new(8));
        let intra = trace
            .contacts()
            .iter()
            .filter(|c| cfg.shard_of(c.a()) == cfg.shard_of(c.b()))
            .count();
        let inter = trace.len() - intra;
        assert!(intra > inter, "intra {intra} vs inter {inter}");
        assert!(inter > 0, "bridge process produced nothing");
    }

    #[test]
    fn resident_state_is_bounded_by_shards() {
        let cfg = ShardedCommunityConfig::new(1000, 20, SimDuration::from_hours(2.0));
        let mut src = ShardedCommunitySource::new(&cfg, &RngFactory::new(2));
        let mut peak = 0usize;
        let mut total = 0usize;
        while src.next_contact().is_some() {
            peak = peak.max(src.resident_hint());
            total += 1;
        }
        assert!(total > 1000, "expected a busy trace, got {total}");
        assert!(
            peak <= cfg.shards + 1,
            "resident {peak} exceeds shards+1 = {}",
            cfg.shards + 1
        );
    }

    #[test]
    fn single_shard_has_no_bridge_contacts() {
        let cfg = ShardedCommunityConfig::new(12, 1, SimDuration::from_hours(6.0));
        let trace = generate_sharded(&cfg, &RngFactory::new(9));
        assert!(!trace.is_empty());
        // All pairs are intra-shard by construction (shard_of is constant).
        assert!(trace
            .contacts()
            .iter()
            .all(|c| cfg.shard_of(c.a()) == 0 && cfg.shard_of(c.b()) == 0));
    }

    #[test]
    fn shard_ranges_partition_the_population() {
        let cfg = ShardedCommunityConfig::new(10, 3, SimDuration::from_hours(1.0));
        let mut covered = 0usize;
        for s in 0..cfg.shards {
            let (lo, hi) = cfg.shard_range(s);
            assert_eq!(lo, covered);
            covered = hi;
            for i in lo..hi {
                assert_eq!(cfg.shard_of(NodeId(i as u32)), s);
            }
        }
        assert_eq!(covered, cfg.nodes);
    }

    #[test]
    fn parallel_source_is_bit_identical_to_serial() {
        let cfg = ShardedCommunityConfig::new(60, 5, SimDuration::from_hours(18.0));
        let factory = RngFactory::new(77);
        let mut serial = ShardedCommunitySource::new(&cfg, &factory);
        let expected: Vec<Contact> = std::iter::from_fn(|| serial.next_contact()).collect();
        assert!(!expected.is_empty());
        for threads in [1, 2, 4] {
            let mut par = ParallelShardedSource::new(&cfg, &factory, threads);
            let got: Vec<Contact> = std::iter::from_fn(|| par.next_contact()).collect();
            assert_eq!(expected, got, "threads={threads} diverged from serial");
        }
    }

    #[test]
    fn parallel_source_is_window_size_independent() {
        let cfg = ShardedCommunityConfig::new(40, 4, SimDuration::from_hours(10.0));
        let factory = RngFactory::new(13);
        let drain = |threads: usize, window_mins: f64| -> Vec<Contact> {
            let mut src = ParallelShardedSource::with_window(
                &cfg,
                &factory,
                threads,
                SimDuration::from_mins(window_mins),
            );
            std::iter::from_fn(move || src.next_contact()).collect()
        };
        let base = drain(1, 600.0); // one window covers the whole span
        assert!(!base.is_empty());
        assert_eq!(base, drain(1, 7.0));
        assert_eq!(base, drain(2, 31.0));
        assert_eq!(base, drain(4, 113.0));
    }

    #[test]
    fn parallel_source_single_shard_and_zero_rate_edge_cases() {
        // Single shard: no bridge stream.
        let cfg = ShardedCommunityConfig::new(12, 1, SimDuration::from_hours(6.0));
        let factory = RngFactory::new(9);
        let mut serial = ShardedCommunitySource::new(&cfg, &factory);
        let expected: Vec<Contact> = std::iter::from_fn(|| serial.next_contact()).collect();
        let mut par = ParallelShardedSource::new(&cfg, &factory, 2);
        let got: Vec<Contact> = std::iter::from_fn(|| par.next_contact()).collect();
        assert_eq!(expected, got);

        // All rates zero: no streams at all, the source is just empty.
        let dead = ShardedCommunityConfig::new(8, 2, SimDuration::from_hours(1.0))
            .intra_rate(0.0)
            .bridge_rate(0.0);
        let mut empty = ParallelShardedSource::new(&dead, &factory, 3);
        assert!(empty.next_contact().is_none());
        assert_eq!(empty.resident_hint(), 0);
    }

    #[test]
    fn parallel_source_resident_state_is_one_window() {
        let cfg = ShardedCommunityConfig::new(200, 4, SimDuration::from_hours(4.0));
        let factory = RngFactory::new(2);
        let window = SimDuration::from_mins(15.0);
        let mut src = ParallelShardedSource::with_window(&cfg, &factory, 2, window);
        // Expected contacts per window ≈ total_rate × window; the buffered
        // peak should be the same order, far below the whole trace.
        let mut peak = 0usize;
        let mut total = 0usize;
        while src.next_contact().is_some() {
            peak = peak.max(src.resident_hint());
            total += 1;
        }
        assert!(total > 500, "expected a busy trace, got {total}");
        let windows = (cfg.span.as_secs() / window.as_secs()).ceil() as usize;
        assert!(
            peak < 4 * total.div_ceil(windows).max(1),
            "resident peak {peak} is not window-bounded (total {total}, {windows} windows)"
        );
    }

    #[test]
    fn decode_pair_enumerates_all_pairs() {
        let m = 7;
        let mut seen = std::collections::HashSet::new();
        for k in 0..m * (m - 1) / 2 {
            let (i, j) = decode_pair(k, m);
            assert!(i < j && j < m);
            assert!(seen.insert((i, j)));
        }
        assert_eq!(seen.len(), m * (m - 1) / 2);
    }
}
