//! Grid-cell mobility: contacts from co-location under a biased random walk.
//!
//! Unlike the pairwise generators, which postulate contact rates directly,
//! this model derives contacts from *movement*: nodes walk over a grid of
//! cells (rooms, buildings) and a contact exists exactly while two nodes
//! occupy the same cell. A home-cell bias produces the recurring-meeting
//! structure of human mobility.

use std::collections::HashMap;

use omn_sim::{RngFactory, SimDuration, SimTime};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::{Distribution, Exp};

use crate::contact::{Contact, NodeId};
use crate::trace::{ContactTrace, TraceBuilder};

/// Configuration for the grid-cell mobility model.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMobilityConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Grid width in cells.
    pub grid_width: usize,
    /// Grid height in cells.
    pub grid_height: usize,
    /// Trace span.
    pub span: SimDuration,
    /// Mean dwell time in a cell before moving (exponential).
    pub mean_dwell: SimDuration,
    /// Probability that a move steps toward the node's home cell instead of
    /// a uniformly random neighbor. 0 = pure random walk, values near 1 pin
    /// nodes to their homes.
    pub home_bias: f64,
}

impl CellMobilityConfig {
    /// Defaults: 8×8 grid, 15-minute mean dwell, home bias 0.6.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, the grid is empty, or `span` is zero.
    #[must_use]
    pub fn new(nodes: usize, span: SimDuration) -> CellMobilityConfig {
        assert!(nodes > 0, "CellMobilityConfig: need at least one node");
        assert!(!span.is_zero(), "CellMobilityConfig: zero span");
        CellMobilityConfig {
            nodes,
            grid_width: 8,
            grid_height: 8,
            span,
            mean_dwell: SimDuration::from_mins(15.0),
            home_bias: 0.6,
        }
    }

    /// Sets the grid dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn grid(mut self, width: usize, height: usize) -> CellMobilityConfig {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        self.grid_width = width;
        self.grid_height = height;
        self
    }

    /// Sets the mean dwell time.
    #[must_use]
    pub fn mean_dwell(mut self, d: SimDuration) -> CellMobilityConfig {
        assert!(!d.is_zero(), "mean dwell must be positive");
        self.mean_dwell = d;
        self
    }

    /// Sets the home bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0, 1]`.
    #[must_use]
    pub fn home_bias(mut self, bias: f64) -> CellMobilityConfig {
        assert!((0.0..=1.0).contains(&bias), "home_bias must be in [0, 1]");
        self.home_bias = bias;
        self
    }

    fn cell_count(&self) -> usize {
        self.grid_width * self.grid_height
    }

    fn neighbors_of(&self, cell: usize) -> Vec<usize> {
        let w = self.grid_width;
        let (x, y) = (cell % w, cell / w);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(cell - 1);
        }
        if x + 1 < w {
            out.push(cell + 1);
        }
        if y > 0 {
            out.push(cell - w);
        }
        if y + 1 < self.grid_height {
            out.push(cell + w);
        }
        out
    }

    /// One grid step from `cell` toward `target` (Manhattan descent); stays
    /// put if already there.
    fn step_toward(&self, cell: usize, target: usize) -> usize {
        let w = self.grid_width;
        let (x, y) = (cell % w, cell / w);
        let (tx, ty) = (target % w, target / w);
        if x != tx {
            if tx > x {
                cell + 1
            } else {
                cell - 1
            }
        } else if y != ty {
            if ty > y {
                cell + w
            } else {
                cell - w
            }
        } else {
            cell
        }
    }
}

/// Generates a trace from the grid-cell mobility model.
///
/// Implementation: per-node move events are merged into one global timeline;
/// cell occupancy sets are maintained, and a contact interval opens when two
/// nodes co-locate and closes when either leaves (or at the end of the
/// trace).
#[must_use]
pub fn generate_cell_mobility(config: &CellMobilityConfig, factory: &RngFactory) -> ContactTrace {
    let n = config.nodes;
    let span_secs = config.span.as_secs();
    let dwell = Exp::new(1.0 / config.mean_dwell.as_secs()).expect("positive dwell");

    // Home cells and initial positions.
    let mut setup_rng = factory.stream("cell-setup");
    let homes: Vec<usize> = (0..n)
        .map(|_| setup_rng.gen_range(0..config.cell_count()))
        .collect();
    let mut position: Vec<usize> = homes.clone();

    // Pre-generate each node's move timeline: (time, node).
    let mut moves: Vec<(f64, usize)> = Vec::new();
    for node in 0..n {
        let mut rng = factory.stream_indexed("cell-node", node as u64);
        let mut t = dwell.sample(&mut rng);
        while t < span_secs {
            moves.push((t, node));
            t += dwell.sample(&mut rng);
        }
    }
    moves.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    // Occupancy and open contacts.
    let mut occupants: Vec<Vec<usize>> = vec![Vec::new(); config.cell_count()];
    for (node, &cell) in position.iter().enumerate() {
        occupants[cell].push(node);
    }
    let mut open: HashMap<(usize, usize), f64> = HashMap::new();
    for cell_nodes in &occupants {
        for (i, &a) in cell_nodes.iter().enumerate() {
            for &b in &cell_nodes[i + 1..] {
                let key = if a < b { (a, b) } else { (b, a) };
                open.insert(key, 0.0);
            }
        }
    }

    let mut contacts: Vec<Contact> = Vec::new();
    let close = |open: &mut HashMap<(usize, usize), f64>,
                 a: usize,
                 b: usize,
                 now: f64,
                 contacts: &mut Vec<Contact>| {
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(start) = open.remove(&key) {
            if now > start {
                contacts.push(
                    Contact::new(
                        NodeId(key.0 as u32),
                        NodeId(key.1 as u32),
                        SimTime::from_secs(start),
                        SimTime::from_secs(now),
                    )
                    .expect("valid interval"),
                );
            }
        }
    };

    let mut move_rng = factory.stream("cell-moves");
    for &(now, node) in &moves {
        let from = position[node];
        let to = if move_rng.gen_bool(config.home_bias) {
            config.step_toward(from, homes[node])
        } else {
            *config
                .neighbors_of(from)
                .choose(&mut move_rng)
                .unwrap_or(&from)
        };
        if to == from {
            continue;
        }
        // Close contacts with co-occupants of the old cell.
        occupants[from].retain(|&x| x != node);
        for &other in &occupants[from] {
            close(&mut open, node, other, now, &mut contacts);
        }
        // Open contacts with occupants of the new cell.
        for &other in &occupants[to] {
            let key = if node < other {
                (node, other)
            } else {
                (other, node)
            };
            open.entry(key).or_insert(now);
        }
        occupants[to].push(node);
        position[node] = to;
    }

    // Close everything at the end of the trace.
    let keys: Vec<(usize, usize)> = open.keys().copied().collect();
    for (a, b) in keys {
        close(&mut open, a, b, span_secs, &mut contacts);
    }

    TraceBuilder::new(n)
        .span(SimTime::ZERO + config.span)
        .contacts(contacts)
        .build()
        .expect("generator produces valid traces")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_contacts() {
        let cfg = CellMobilityConfig::new(20, SimDuration::from_days(1.0)).grid(4, 4);
        let trace = generate_cell_mobility(&cfg, &RngFactory::new(1));
        assert!(!trace.is_empty(), "expected contacts on a dense small grid");
        assert_eq!(trace.node_count(), 20);
    }

    #[test]
    fn deterministic() {
        let cfg = CellMobilityConfig::new(10, SimDuration::from_hours(12.0));
        let f = RngFactory::new(8);
        assert_eq!(
            generate_cell_mobility(&cfg, &f),
            generate_cell_mobility(&cfg, &f)
        );
    }

    #[test]
    fn same_pair_contacts_are_disjoint() {
        let cfg = CellMobilityConfig::new(15, SimDuration::from_days(1.0)).grid(3, 3);
        let trace = generate_cell_mobility(&cfg, &RngFactory::new(4));
        let mut per_pair: HashMap<_, Vec<_>> = HashMap::new();
        for c in trace.contacts() {
            per_pair.entry(c.pair()).or_default().push(*c);
        }
        for cs in per_pair.values() {
            for w in cs.windows(2) {
                assert!(w[0].end() <= w[1].start(), "{} overlaps {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn higher_home_bias_concentrates_contacts() {
        // With bias 1.0 everyone sits at home: nodes sharing a home are in
        // permanent contact and others never meet. Contact count across
        // runs should be far below the random-walk case on a small grid.
        let span = SimDuration::from_hours(24.0);
        let roam = generate_cell_mobility(
            &CellMobilityConfig::new(12, span).grid(3, 3).home_bias(0.0),
            &RngFactory::new(5),
        );
        let pinned = generate_cell_mobility(
            &CellMobilityConfig::new(12, span).grid(3, 3).home_bias(1.0),
            &RngFactory::new(5),
        );
        assert!(
            pinned.len() < roam.len(),
            "pinned {} vs roaming {}",
            pinned.len(),
            roam.len()
        );
    }

    #[test]
    fn step_toward_descends_manhattan_distance() {
        let cfg = CellMobilityConfig::new(1, SimDuration::from_secs(1.0)).grid(4, 4);
        // From cell 0 (0,0) toward cell 15 (3,3): first step is +x.
        assert_eq!(cfg.step_toward(0, 15), 1);
        // Same column: step in y.
        assert_eq!(cfg.step_toward(1, 13), 5);
        // Already there: stay.
        assert_eq!(cfg.step_toward(7, 7), 7);
    }

    #[test]
    fn neighbors_respect_grid_bounds() {
        let cfg = CellMobilityConfig::new(1, SimDuration::from_secs(1.0)).grid(3, 3);
        assert_eq!(cfg.neighbors_of(0).len(), 2); // corner
        assert_eq!(cfg.neighbors_of(1).len(), 3); // edge
        assert_eq!(cfg.neighbors_of(4).len(), 4); // center
    }
}
