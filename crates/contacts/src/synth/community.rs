//! Community-structured contact generation.
//!
//! Real campus and conference traces show strong community structure: nodes
//! in the same social group (research lab, conference session) meet an order
//! of magnitude more often than nodes in different groups. This generator
//! assigns nodes to contiguous communities and draws intra- and
//! inter-community rates from separate Gamma distributions.

use omn_sim::{RngFactory, SimDuration, SimTime};
use rand_distr::{Distribution, Gamma};

use crate::contact::NodeId;
use crate::trace::{ContactTrace, TraceBuilder};

use super::poisson_pair_contacts;

/// Configuration for the community generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of communities; nodes are split into contiguous blocks of
    /// near-equal size.
    pub communities: usize,
    /// Trace span.
    pub span: SimDuration,
    /// Mean contact rate for same-community pairs.
    pub intra_mean_rate: f64,
    /// Mean contact rate for cross-community pairs.
    pub inter_mean_rate: f64,
    /// Gamma shape of both rate distributions.
    pub rate_shape: f64,
    /// Mean contact duration.
    pub mean_contact_duration: SimDuration,
}

impl CommunityConfig {
    /// Defaults: intra-community contacts every 2 hours on average,
    /// inter-community every 24 hours, shape 1.0, 5-minute contacts.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `communities == 0`, `communities > nodes`,
    /// or `span` is zero.
    #[must_use]
    pub fn new(nodes: usize, communities: usize, span: SimDuration) -> CommunityConfig {
        assert!(nodes > 0, "CommunityConfig: need at least one node");
        assert!(
            communities > 0 && communities <= nodes,
            "CommunityConfig: need 1..=nodes communities"
        );
        assert!(!span.is_zero(), "CommunityConfig: zero span");
        CommunityConfig {
            nodes,
            communities,
            span,
            intra_mean_rate: 1.0 / (2.0 * 3600.0),
            inter_mean_rate: 1.0 / (24.0 * 3600.0),
            rate_shape: 1.0,
            mean_contact_duration: SimDuration::from_secs(300.0),
        }
    }

    /// Sets the intra-community mean rate.
    #[must_use]
    pub fn intra_mean_rate(mut self, rate: f64) -> CommunityConfig {
        assert!(rate > 0.0 && rate.is_finite());
        self.intra_mean_rate = rate;
        self
    }

    /// Sets the inter-community mean rate.
    #[must_use]
    pub fn inter_mean_rate(mut self, rate: f64) -> CommunityConfig {
        assert!(rate > 0.0 && rate.is_finite());
        self.inter_mean_rate = rate;
        self
    }

    /// Sets the Gamma shape.
    #[must_use]
    pub fn rate_shape(mut self, shape: f64) -> CommunityConfig {
        assert!(shape > 0.0 && shape.is_finite());
        self.rate_shape = shape;
        self
    }

    /// Sets the mean contact duration.
    #[must_use]
    pub fn mean_contact_duration(mut self, d: SimDuration) -> CommunityConfig {
        self.mean_contact_duration = d;
        self
    }

    /// The community index of a node under this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn community_of(&self, node: NodeId) -> usize {
        assert!(node.index() < self.nodes, "node out of range");
        node.index() * self.communities / self.nodes
    }
}

/// Generates a community-structured trace.
#[must_use]
pub fn generate_community(config: &CommunityConfig, factory: &RngFactory) -> ContactTrace {
    let n = config.nodes;
    let mut rate_rng = factory.stream("community-rates");
    let intra = Gamma::new(
        config.rate_shape,
        config.intra_mean_rate / config.rate_shape,
    )
    .expect("validated");
    let inter = Gamma::new(
        config.rate_shape,
        config.inter_mean_rate / config.rate_shape,
    )
    .expect("validated");

    let mut contacts = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let a = NodeId(i as u32);
            let b = NodeId(j as u32);
            let same = config.community_of(a) == config.community_of(b);
            let rate = if same {
                intra.sample(&mut rate_rng)
            } else {
                inter.sample(&mut rate_rng)
            };
            let mut pair_rng = factory.stream_indexed("community-pair", (i * n + j) as u64);
            contacts.extend(poisson_pair_contacts(
                a,
                b,
                rate,
                config.span,
                config.mean_contact_duration,
                &mut pair_rng,
            ));
        }
    }
    TraceBuilder::new(n)
        .span(SimTime::ZERO + config.span)
        .contacts(contacts)
        .build()
        .expect("generator produces valid traces")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_assignment_is_balanced() {
        let cfg = CommunityConfig::new(10, 3, SimDuration::from_days(1.0));
        let sizes: Vec<usize> = (0..3)
            .map(|c| {
                (0..10)
                    .filter(|&i| cfg.community_of(NodeId(i)) == c)
                    .count()
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn intra_community_contacts_dominate() {
        let cfg = CommunityConfig::new(20, 4, SimDuration::from_days(5.0));
        let trace = generate_community(&cfg, &RngFactory::new(11));
        let mut intra = 0usize;
        let mut inter = 0usize;
        for c in trace.contacts() {
            if cfg.community_of(c.a()) == cfg.community_of(c.b()) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Intra pairs are ~1/4 of all pairs but have 12x the rate; intra
        // contacts should clearly dominate per-pair.
        let intra_pairs = 4.0 * (5.0 * 4.0 / 2.0);
        let inter_pairs = (20.0 * 19.0 / 2.0) - intra_pairs;
        let intra_per_pair = intra as f64 / intra_pairs;
        let inter_per_pair = inter as f64 / inter_pairs;
        assert!(
            intra_per_pair > 5.0 * inter_per_pair,
            "intra/pair {intra_per_pair:.2}, inter/pair {inter_per_pair:.2}"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = CommunityConfig::new(12, 3, SimDuration::from_days(1.0));
        let f = RngFactory::new(2);
        assert_eq!(generate_community(&cfg, &f), generate_community(&cfg, &f));
    }

    #[test]
    #[should_panic(expected = "communities")]
    fn rejects_more_communities_than_nodes() {
        let _ = CommunityConfig::new(3, 5, SimDuration::from_days(1.0));
    }
}
